//! Offline stand-in; the workspace declares but does not use `bytes`.
