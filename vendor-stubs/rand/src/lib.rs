//! Offline stand-in for `rand` 0.8 providing the subset this workspace
//! uses: `SmallRng` (xoshiro256++ with the same `seed_from_u64` expansion
//! as rand 0.8.5), `Rng::gen`/`gen_range`, `RngCore`, `SeedableRng`.

pub mod rngs {
    /// xoshiro256++, matching rand 0.8.5's 64-bit `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn from_u64(mut state: u64) -> SmallRng {
            // SplitMix64 expansion, as in rand 0.8.5.
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }

        #[inline]
        pub(crate) fn next64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl crate::RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            self.next64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.next64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next64().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let bytes = self.next64().to_le_bytes();
                rem.copy_from_slice(&bytes[..rem.len()]);
            }
        }
    }

    impl crate::SeedableRng for SmallRng {
        type Seed = [u8; 32];
        fn from_seed(seed: [u8; 32]) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            if s.iter().all(|&w| w == 0) {
                return SmallRng::from_u64(0);
            }
            SmallRng { s }
        }
        fn seed_from_u64(state: u64) -> SmallRng {
            SmallRng::from_u64(state)
        }
    }
}

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

pub trait SeedableRng: Sized {
    type Seed;
    fn from_seed(seed: Self::Seed) -> Self;
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable by `Rng::gen` (rand's `Standard` distribution).
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1), as rand's Standard does.
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Integer types usable with `gen_range` (Lemire widening-multiply
/// rejection, as rand 0.8's `UniformInt::sample_single`).
pub trait UniformSampled: Copy {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_uniform_u64ish {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                let lo64 = lo as u64;
                let hi64 = hi as u64;
                let range = if inclusive {
                    hi64.wrapping_sub(lo64).wrapping_add(1)
                } else {
                    assert!(lo64 < hi64, "gen_range: empty range");
                    hi64 - lo64
                };
                if range == 0 {
                    // Inclusive full-width range.
                    return rng.next_u64() as $t;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.next_u64();
                    let m = (v as u128) * (range as u128);
                    let hi_part = (m >> 64) as u64;
                    let lo_part = m as u64;
                    if lo_part <= zone {
                        return lo64.wrapping_add(hi_part) as $t;
                    }
                }
            }
        }
    )*};
}

impl_uniform_u64ish!(u64, usize, u32, u16, u8, i64, i32);

impl UniformSampled for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64, _inclusive: bool) -> f64 {
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// Ranges accepted by `gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSampled> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: UniformSampled> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
    pub use crate::rngs::SmallRng;
}
