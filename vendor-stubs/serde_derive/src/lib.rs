//! No-op derive macros standing in for `serde_derive` in the offline
//! build. The `serde` stub's traits are blanket-implemented, so the
//! derives only need to exist and emit nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
