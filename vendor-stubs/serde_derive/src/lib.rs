//! Derive macros standing in for `serde_derive` in the offline build.
//!
//! Unlike real serde there is no visitor machinery to target: the `serde`
//! stub's traits lower to / rebuild from a `serde::value::Value` tree, so
//! the derives only need the *shape* of the item — field names, tuple
//! arities, variant kinds — never the field types. That makes a hand
//!-rolled token scan sufficient: we skip attributes and visibility, read
//! the item name and (lifetime-only) generics, walk fields at top-level
//! comma boundaries (tracking `<`/`>` depth so `Vec<(A, B)>` doesn't
//! split), and emit the impl as a code string parsed back into a
//! `TokenStream`. No `syn`/`quote` required.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    /// Raw generic parameter text between `<` and `>` (lifetimes only in
    /// this workspace), empty when the item is not generic.
    generics: String,
    body: Body,
}

type Tokens = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

fn skip_attrs_and_vis(toks: &mut Tokens) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                // The bracketed attribute body.
                toks.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(toks: &mut Tokens, what: &str) -> String {
    match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected {what}, found {other:?}"),
    }
}

/// Skip one type (or collect one generics list), stopping at a top-level
/// `,` (consumed) or the end of the stream. Tracks `<`/`>` nesting; `()`,
/// `[]`, `{}` arrive as single groups and need no tracking.
fn skip_type(toks: &mut Tokens) {
    let mut angle_depth = 0usize;
    while let Some(tt) = toks.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                toks.next();
                return;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                toks.next();
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
                toks.next();
            }
            _ => {
                toks.next();
            }
        }
    }
}

fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let mut toks = group.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        if toks.peek().is_none() {
            return names;
        }
        names.push(expect_ident(&mut toks, "field name"));
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field, found {other:?}"),
        }
        skip_type(&mut toks);
    }
}

fn parse_tuple_arity(group: TokenStream) -> usize {
    let mut toks = group.into_iter().peekable();
    let mut arity = 0;
    loop {
        skip_attrs_and_vis(&mut toks);
        if toks.peek().is_none() {
            return arity;
        }
        arity += 1;
        skip_type(&mut toks);
    }
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut toks = group.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        if toks.peek().is_none() {
            return variants;
        }
        let name = expect_ident(&mut toks, "variant name");
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let stream = g.stream();
                toks.next();
                Fields::Named(parse_named_fields(stream))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let stream = g.stream();
                toks.next();
                Fields::Tuple(parse_tuple_arity(stream))
            }
            _ => Fields::Unit,
        };
        if let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == ',' {
                toks.next();
            }
        }
        variants.push(Variant { name, fields });
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    let kind = loop {
        skip_attrs_and_vis(&mut toks);
        match toks.next() {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break "struct",
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break "enum",
            Some(_) => continue,
            None => panic!("serde derive: no struct or enum found"),
        }
    };
    let name = expect_ident(&mut toks, "item name");
    let mut generics = String::new();
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            toks.next();
            let mut depth = 1usize;
            let mut collected = TokenStream::new();
            for tt in toks.by_ref() {
                if let TokenTree::Punct(p) = &tt {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                collected.extend([tt]);
            }
            generics = collected.to_string();
        }
    }
    let body = match kind {
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: expected enum body, found {other:?}"),
        },
        _ => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Fields::Tuple(parse_tuple_arity(g.stream())))
            }
            _ => Body::Struct(Fields::Unit),
        },
    };
    Item { name: name.to_string(), generics, body }
}

fn impl_header(item: &Item, trait_path: &str, extra_lifetime: Option<&str>) -> String {
    let mut params = String::new();
    if let Some(lt) = extra_lifetime {
        params.push_str(lt);
    }
    if !item.generics.is_empty() {
        if !params.is_empty() {
            params.push_str(", ");
        }
        params.push_str(&item.generics);
    }
    let ty_args =
        if item.generics.is_empty() { String::new() } else { format!("<{}>", item.generics) };
    let impl_params = if params.is_empty() { String::new() } else { format!("<{params}>") };
    format!("impl{impl_params} {trait_path} for {}{ty_args}", item.name)
}

fn serialize_named(fields: &[String], access: &dyn Fn(&str) -> String) -> String {
    let mut entries = String::new();
    for f in fields {
        entries.push_str(&format!(
            "(String::from({f:?}), serde::Serialize::to_value({})),",
            access(f)
        ));
    }
    format!("serde::value::Value::Map(vec![{entries}])")
}

fn serialize_body(item: &Item) -> String {
    let name = &item.name;
    match &item.body {
        Body::Struct(Fields::Named(fields)) => {
            serialize_named(fields, &|f| format!("&self.{f}"))
        }
        Body::Struct(Fields::Tuple(1)) => "serde::Serialize::to_value(&self.0)".to_string(),
        Body::Struct(Fields::Tuple(arity)) => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::value::Value::Seq(vec![{}])", elems.join(","))
        }
        Body::Struct(Fields::Unit) => "serde::value::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => serde::value::Value::Str(String::from({vn:?})),"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => serde::value::Value::Map(vec![(String::from({vn:?}), serde::Serialize::to_value(__f0))]),"
                    )),
                    Fields::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => serde::value::Value::Map(vec![(String::from({vn:?}), serde::value::Value::Seq(vec![{}]))]),",
                            binds.join(","),
                            elems.join(",")
                        ));
                    }
                    Fields::Named(fields) => {
                        let inner = serialize_named(fields, &|f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => serde::value::Value::Map(vec![(String::from({vn:?}), {inner})]),",
                            fields.join(",")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    }
}

fn deserialize_named(ty: &str, path: &str, fields: &[String], source: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        inits.push_str(&format!("{f}: serde::de::field({source}, {f:?}, {ty:?})?,"));
    }
    format!("Ok({path} {{ {inits} }})")
}

fn deserialize_tuple(ty: &str, path: &str, arity: usize, source: &str) -> String {
    let elems: Vec<String> = (0..arity)
        .map(|i| format!("serde::Deserialize::from_value(&{source}[{i}])?"))
        .collect();
    format!(
        "if {source}.len() != {arity} {{ \
             return Err(serde::de::Error::custom(format!(\
                 \"expected {arity} elements for {ty}, found {{}}\", {source}.len()))); \
         }} \
         Ok({path}({}))",
        elems.join(",")
    )
}

fn deserialize_body(item: &Item) -> String {
    let name = &item.name;
    match &item.body {
        Body::Struct(Fields::Named(fields)) => format!(
            "let __entries = __v.as_map().ok_or_else(|| serde::de::Error::expected(\"map\", {name:?}, __v))?; {}",
            deserialize_named(name, name, fields, "__entries")
        ),
        Body::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(serde::Deserialize::from_value(__v)?))")
        }
        Body::Struct(Fields::Tuple(arity)) => format!(
            "let __items = __v.as_seq().ok_or_else(|| serde::de::Error::expected(\"sequence\", {name:?}, __v))?; {}",
            deserialize_tuple(name, name, *arity, "__items")
        ),
        Body::Struct(Fields::Unit) => format!("Ok({name})"),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                let path = format!("{name}::{vn}");
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!("{vn:?} => Ok({path}),")),
                    Fields::Tuple(1) => data_arms.push_str(&format!(
                        "{vn:?} => Ok({path}(serde::Deserialize::from_value(__inner)?)),"
                    )),
                    Fields::Tuple(arity) => data_arms.push_str(&format!(
                        "{vn:?} => {{ let __items = __inner.as_seq().ok_or_else(|| serde::de::Error::expected(\"sequence\", {name:?}, __inner))?; {} }}",
                        deserialize_tuple(name, &path, *arity, "__items")
                    )),
                    Fields::Named(fields) => data_arms.push_str(&format!(
                        "{vn:?} => {{ let __fields = __inner.as_map().ok_or_else(|| serde::de::Error::expected(\"map\", {name:?}, __inner))?; {} }}",
                        deserialize_named(name, &path, fields, "__fields")
                    )),
                }
            }
            let unknown = format!(
                "__other => Err(serde::de::Error::custom(format!(\"unknown variant `{{__other}}` for {name}\"))),"
            );
            format!(
                "match __v {{ \
                     serde::value::Value::Str(__s) => match __s.as_str() {{ {unit_arms} {unknown} }}, \
                     serde::value::Value::Map(__entries) if __entries.len() == 1 => {{ \
                         let (__key, __inner) = &__entries[0]; \
                         match __key.as_str() {{ {data_arms} {unknown} }} \
                     }} \
                     __other => Err(serde::de::Error::expected(\"string or single-entry map\", {name:?}, __other)), \
                 }}"
            )
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = format!(
        "{} {{ fn to_value(&self) -> serde::value::Value {{ {} }} }}",
        impl_header(&item, "serde::Serialize", None),
        serialize_body(&item)
    );
    code.parse().expect("serde derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    if !item.generics.is_empty() {
        // Borrowed data cannot be rebuilt from an owned value tree; no
        // generic type in the workspace derives Deserialize.
        panic!("serde derive: Deserialize on generic types is not supported by the offline stub");
    }
    let name = &item.name;
    let code = format!(
        "{} {{ fn from_value(__v: &serde::value::Value) -> Result<{name}, serde::de::Error> {{ {} }} }}",
        impl_header(&item, "serde::Deserialize<'de>", Some("'de")),
        deserialize_body(&item)
    );
    code.parse().expect("serde derive: generated Deserialize impl must parse")
}
