//! Offline stand-in for `serde`: marker traits with blanket impls plus the
//! no-op derive re-exports. Serialization itself happens in the
//! `serde_json` stub (which emits a placeholder document).

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

pub trait Serializer {}
pub trait Deserializer<'de> {}

pub mod ser {
    pub use crate::{Serialize, Serializer};
}

pub mod de {
    pub use crate::{Deserialize, Deserializer};
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T> DeserializeOwned for T where T: for<'de> crate::Deserialize<'de> {}
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
