//! Offline stand-in for `serde`: a self-describing value tree instead of
//! the visitor machinery. `Serialize` lowers a type into [`value::Value`],
//! `Deserialize` rebuilds it from one; the `serde_json` stub renders and
//! parses the tree. The derive macros in `serde_derive` generate real
//! impls, so JSON output contains actual field data (the seed's blanket
//! marker traits produced `{}` placeholders).

pub mod value {
    /// A self-describing serialized value — the intermediate form every
    /// `Serialize`/`Deserialize` impl speaks. Maps preserve insertion
    /// order (field order / variant key), matching serde_json's default.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// A boolean.
        Bool(bool),
        /// A signed integer.
        Int(i64),
        /// An unsigned integer that does not fit the signed range, or any
        /// non-negative integer produced by the parser.
        UInt(u64),
        /// A floating-point number.
        Float(f64),
        /// A string.
        Str(String),
        /// An ordered sequence.
        Seq(Vec<Value>),
        /// An ordered key/value map.
        Map(Vec<(String, Value)>),
    }

    impl Value {
        /// The map entries, if this is a map.
        pub fn as_map(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Map(entries) => Some(entries),
                _ => None,
            }
        }

        /// The sequence elements, if this is a sequence.
        pub fn as_seq(&self) -> Option<&[Value]> {
            match self {
                Value::Seq(items) => Some(items),
                _ => None,
            }
        }

        /// The string contents, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// A short description of the value's kind, for error messages.
        pub fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::Int(_) | Value::UInt(_) => "integer",
                Value::Float(_) => "float",
                Value::Str(_) => "string",
                Value::Seq(_) => "sequence",
                Value::Map(_) => "map",
            }
        }
    }
}

use value::Value;

/// Lower `self` into a [`Value`] tree.
pub trait Serialize {
    /// Convert to the self-describing intermediate form.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree. The lifetime parameter exists
/// for signature compatibility with real serde; nothing borrows from the
/// input here.
pub trait Deserialize<'de>: Sized {
    /// Convert from the self-describing intermediate form.
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

pub trait Serializer {}
pub trait Deserializer<'de> {}

pub mod ser {
    pub use crate::{Serialize, Serializer};
}

pub mod de {
    pub use crate::{Deserialize, Deserializer};
    use crate::value::Value;
    use std::fmt;

    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T> DeserializeOwned for T where T: for<'de> crate::Deserialize<'de> {}

    /// Deserialization failure: what was expected and what was found.
    #[derive(Debug)]
    pub struct Error {
        msg: String,
    }

    impl Error {
        /// A free-form error.
        pub fn custom(msg: impl Into<String>) -> Error {
            Error { msg: msg.into() }
        }

        /// "expected X while deserializing Y, found Z".
        pub fn expected(what: &str, ty: &str, found: &Value) -> Error {
            Error { msg: format!("expected {what} for {ty}, found {}", found.kind()) }
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    impl std::error::Error for Error {}

    /// Look up `name` in a struct map and deserialize it — the helper the
    /// derive-generated code calls per field.
    pub fn field<T: for<'de> crate::Deserialize<'de>>(
        entries: &[(String, Value)],
        name: &str,
        ty: &str,
    ) -> Result<T, Error> {
        match entries.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v),
            None => Err(Error::custom(format!("missing field `{name}` for {ty}"))),
        }
    }
}

macro_rules! impl_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if *self >= 0 {
                    // Non-negative integers always fit u64 here (every
                    // integer field in the workspace is at most 64 bits).
                    Value::UInt(*self as u64)
                } else {
                    Value::Int(*self as i64)
                }
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn from_value(v: &Value) -> Result<$ty, de::Error> {
                match v {
                    Value::Int(i) => <$ty>::try_from(*i)
                        .map_err(|_| de::Error::custom(format!("{i} out of range for {}", stringify!($ty)))),
                    Value::UInt(u) => <$ty>::try_from(*u)
                        .map_err(|_| de::Error::custom(format!("{u} out of range for {}", stringify!($ty)))),
                    other => Err(de::Error::expected("integer", stringify!($ty), other)),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn from_value(v: &Value) -> Result<$ty, de::Error> {
                match v {
                    Value::Float(f) => Ok(*f as $ty),
                    Value::Int(i) => Ok(*i as $ty),
                    Value::UInt(u) => Ok(*u as $ty),
                    other => Err(de::Error::expected("number", stringify!($ty), other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<bool, de::Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(de::Error::expected("bool", "bool", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<String, de::Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(de::Error::expected("string", "String", other)),
        }
    }
}

impl<'de> Deserialize<'de> for std::sync::Arc<str> {
    fn from_value(v: &Value) -> Result<std::sync::Arc<str>, de::Error> {
        match v {
            Value::Str(s) => Ok(std::sync::Arc::from(s.as_str())),
            other => Err(de::Error::expected("string", "Arc<str>", other)),
        }
    }
}

// References, smart pointers: serialize through, like real serde.
impl<T: ?Sized + Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: ?Sized + Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: ?Sized + Serialize> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: ?Sized + Serialize> Serialize for std::rc::Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, de::Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(de::Error::expected("sequence", "Vec", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], de::Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| de::Error::custom(format!("expected array of {N} elements, found {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(v: &Value) -> Result<($($name,)+), de::Error> {
                let items = v.as_seq().ok_or_else(|| de::Error::expected("sequence", "tuple", v))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(de::Error::custom(
                        format!("expected tuple of {expected} elements, found {}", items.len()),
                    ));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// IP addresses serialize as their display form, matching real serde's
// human-readable representation.
impl Serialize for std::net::Ipv4Addr {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for std::net::Ipv4Addr {
    fn from_value(v: &Value) -> Result<std::net::Ipv4Addr, de::Error> {
        let s = v.as_str().ok_or_else(|| de::Error::expected("string", "Ipv4Addr", v))?;
        s.parse().map_err(|_| de::Error::custom(format!("invalid IPv4 address `{s}`")))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(v: &Value) -> Result<Value, de::Error> {
        Ok(v.clone())
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
