//! Offline stand-in for `serde_json`. Without real derive support the
//! value cannot be traversed, so serialization emits a placeholder
//! document; callers that only need the call to succeed keep working.

use std::fmt;

pub struct Error {
    msg: String,
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({})", self.msg)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T>(_value: &T) -> Result<String>
where
    T: ?Sized + serde::Serialize,
{
    Ok(String::from("{}"))
}

pub fn to_string_pretty<T>(value: &T) -> Result<String>
where
    T: ?Sized + serde::Serialize,
{
    to_string(value)
}

pub fn from_str<'a, T>(_s: &'a str) -> Result<T>
where
    T: serde::Deserialize<'a>,
{
    Err(Error { msg: String::from("serde_json stub cannot deserialize") })
}
