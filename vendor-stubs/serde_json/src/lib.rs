//! Offline stand-in for `serde_json`, operating on the `serde` stub's
//! `Value` tree: a real JSON writer (compact and pretty) and a
//! recursive-descent parser, so serialized documents contain actual data
//! and round-trip back through `Deserialize`.

use serde::value::Value;
use std::fmt;

pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({})", self.msg)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Error {
        Error::new(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON.
pub fn to_string<T>(value: &T) -> Result<String>
where
    T: ?Sized + serde::Serialize,
{
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to two-space-indented JSON.
pub fn to_string_pretty<T>(value: &T) -> Result<String>
where
    T: ?Sized + serde::Serialize,
{
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Lower a value into the intermediate tree (mirrors `serde_json::to_value`).
pub fn to_value<T>(value: &T) -> Result<Value>
where
    T: ?Sized + serde::Serialize,
{
    Ok(value.to_value())
}

/// Rebuild a `T` from the intermediate tree.
pub fn from_value<T>(value: &Value) -> Result<T>
where
    T: serde::de::DeserializeOwned,
{
    T::from_value(value).map_err(Error::from)
}

/// Parse JSON text and rebuild a `T`.
pub fn from_str<'a, T>(s: &'a str) -> Result<T>
where
    T: serde::Deserialize<'a>,
{
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at offset {}", parser.pos)));
    }
    T::from_value(&value).map_err(Error::from)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's Display prints the shortest decimal that
                // round-trips, but renders integral floats without a
                // fractional part; keep them recognizable as floats.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no NaN/Infinity; serde_json emits null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            if !items.is_empty() {
                write_break(out, indent, level);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, level + 1);
                write_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            if !entries.is_empty() {
                write_break(out, indent, level);
            }
            out.push('}');
        }
    }
}

fn write_break(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at offset {}", b as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected character at offset {}", self.pos))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at offset {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}
