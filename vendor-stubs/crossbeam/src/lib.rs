//! Offline stand-in for `crossbeam` providing the scoped-thread API this
//! workspace uses, backed by `std::thread::scope`. Panics in spawned
//! threads surface as `Err` from `scope`, matching crossbeam semantics.

use std::any::Any;

pub mod thread {
    use super::*;

    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Mirror of `crossbeam::thread::Scope`; wraps the std scope so spawned
    /// closures can themselves spawn.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let nested = Scope { inner: self.inner };
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&nested)) }
        }
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub use thread::scope;
