//! Offline stand-in for `proptest`: a miniature property-testing framework
//! covering the strategy surface this workspace uses (ranges, tuples,
//! `any`, collections, simple regex strings, `prop_map`, `prop_oneof!`).
//! No shrinking — failures report the generated inputs via the panic from
//! the underlying assertion. Case seeds are deterministic per test name.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Deterministic generator (SplitMix64) feeding every strategy.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; modulo bias is acceptable for test generation.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    fn prop_filter<F>(self, _reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { base: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { generate: Rc::new(move |rng| self.generate(rng)) }
    }
}

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

pub struct Filter<S, F> {
    base: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.base.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 candidates in a row");
    }
}

pub struct BoxedStrategy<T> {
    generate: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { generate: Rc::clone(&self.generate) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives — the engine behind `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

// ---- numeric range strategies ----------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as u64;
                let hi = *self.end() as u64;
                let span = hi.wrapping_sub(lo).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.unit_f64()
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

// ---- tuple strategies -------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// ---- any::<T>() -------------------------------------------------------

pub trait ArbValue: Sized {
    fn arb(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl ArbValue for $t {
            fn arb(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbValue for bool {
    fn arb(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbValue for f64 {
    fn arb(rng: &mut TestRng) -> f64 {
        rng.unit_f64() * 2e6 - 1e6
    }
}

impl ArbValue for char {
    fn arb(rng: &mut TestRng) -> char {
        (0x20 + rng.below(0x5f) as u8) as char
    }
}

impl<T: ArbValue, const N: usize> ArbValue for [T; N] {
    fn arb(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arb(rng))
    }
}

pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: ArbValue> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arb(rng)
    }
}

pub fn any<T: ArbValue>() -> AnyStrategy<T> {
    AnyStrategy { _marker: std::marker::PhantomData }
}

// ---- collections ------------------------------------------------------

pub mod collection {
    use super::*;

    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize, // exclusive
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    fn pick_len(size: SizeRange, rng: &mut TestRng) -> usize {
        assert!(size.hi > size.lo, "empty collection size range");
        size.lo + rng.below((size.hi - size.lo) as u64) as usize
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = pick_len(self.size, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> std::collections::BTreeSet<S::Value> {
            let target = pick_len(self.size, rng);
            let mut out = std::collections::BTreeSet::new();
            // Bounded attempts: duplicates may keep the set below target.
            for _ in 0..target * 20 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }
}

// ---- regex-ish string strategies --------------------------------------

pub mod string {
    use super::*;

    #[derive(Debug)]
    pub struct Error(pub String);

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// One pattern atom plus its repetition bounds.
    #[derive(Debug, Clone)]
    pub(crate) struct Atom {
        pub choices: Vec<char>,
        pub min: usize,
        pub max: usize, // inclusive
    }

    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        pub(crate) atoms: Vec<Atom>,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
                for _ in 0..n {
                    let idx = rng.below(atom.choices.len() as u64) as usize;
                    out.push(atom.choices[idx]);
                }
            }
            out
        }
    }

    const PRINTABLE: std::ops::RangeInclusive<u8> = 0x20..=0x7e;

    /// Parse the simplified regex subset used by the test suite: literal
    /// chars, `[...]` classes with ranges, `\PC` (any printable), and
    /// `{m,n}` / `{n}` quantifiers.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let choices: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .ok_or_else(|| Error(format!("unclosed class in {pattern:?}")))?
                        + i;
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                            for c in lo..=hi {
                                set.push(char::from_u32(c).unwrap());
                            }
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    set
                }
                '\\' => {
                    // Only `\PC` (non-control, i.e. printable) is supported.
                    if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                        i += 3;
                        PRINTABLE.map(|b| b as char).collect()
                    } else {
                        let c = *chars
                            .get(i + 1)
                            .ok_or_else(|| Error(format!("dangling escape in {pattern:?}")))?;
                        i += 2;
                        vec![c]
                    }
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Optional quantifier.
            let (min, max) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .ok_or_else(|| Error(format!("unclosed quantifier in {pattern:?}")))?
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let bounds = match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().map_err(|e| Error(format!("{e}")))?,
                        hi.parse().map_err(|e| Error(format!("{e}")))?,
                    ),
                    None => {
                        let n: usize = body.parse().map_err(|e| Error(format!("{e}")))?;
                        (n, n)
                    }
                };
                i = close + 1;
                bounds
            } else {
                (1, 1)
            };
            atoms.push(Atom { choices, min, max });
        }
        Ok(RegexGeneratorStrategy { atoms })
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::string_regex(self)
            .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e}"))
            .generate(rng)
    }
}

// ---- runner -----------------------------------------------------------

thread_local! {
    static CURRENT_CASE: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Cases per property; override with `PROPTEST_CASES`.
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

pub fn seed_for(test_name: &str, case: u64) -> u64 {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

pub fn note_case(desc: String) {
    CURRENT_CASE.with(|c| *c.borrow_mut() = desc);
}

#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::case_count();
                for case in 0..cases {
                    let mut rng = $crate::TestRng::new($crate::seed_for(stringify!($name), case));
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
    pub use crate::BoxedStrategy;
}
