//! Offline stand-in for `parking_lot` backed by `std::sync`. Lock
//! poisoning is ignored (parking_lot has no poisoning), so a panicked
//! holder does not wedge later callers.

use std::fmt;
use std::sync::{MutexGuard as StdMutexGuard, PoisonError};

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: guard }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: e.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Mutex<T> {
        Mutex::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(PoisonError::into_inner) }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(PoisonError::into_inner) }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}
