//! Offline stand-in for `criterion` that genuinely measures wall-clock
//! time: each bench runs a short warm-up, then collects timed samples and
//! reports the median per-iteration time (plus throughput when set).
//! Numbers are printed in criterion-like form so speedups can be compared,
//! but no statistics beyond the median are computed.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 20,
            throughput: None,
        }
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn run_bench<F>(id: &str, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up / calibration pass: find an iteration count that gives a
    // measurable sample without taking forever.
    let mut iters = 1u64;
    let mut per_iter;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter = b.elapsed.as_secs_f64() / iters as f64;
        if b.elapsed >= Duration::from_millis(10) || iters >= 1 << 20 {
            break;
        }
        iters = (iters * 4).min(1 << 20);
    }

    let mut times: Vec<f64> = Vec::with_capacity(samples);
    times.push(per_iter);
    for _ in 1..samples {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = times[times.len() / 2];
    let lo = times[0];
    let hi = times[times.len() - 1];

    let mut line = format!(
        "{id:<50} time: [{} {} {}]",
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi)
    );
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n as f64, "elem/s"),
            Throughput::Bytes(n) | Throughput::BytesDecimal(n) => (n as f64, "B/s"),
        };
        if median > 0.0 {
            line.push_str(&format!("  thrpt: {}", fmt_rate(count / median, unit)));
        }
    }
    println!("{line}");
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

fn fmt_rate(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.3} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.3} {unit}")
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
