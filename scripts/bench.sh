#!/usr/bin/env bash
# Offline benchmark driver: runs the substrate criterion microbenchmarks
# and the end-to-end simulation benchmark, then gates on throughput
# regressions against the committed BENCH_simulate.json baseline.
#
#   scripts/bench.sh                 # full run, fail on >20% regression
#   THRESHOLD_PCT=10 scripts/bench.sh
#   SKIP_MICRO=1 scripts/bench.sh    # e2e + regression gate only
#   SKIP_FAULTS=1 scripts/bench.sh   # skip the faultlab overhead sample
#   SKIP_CGN=1 scripts/bench.sh      # skip the CGN tier overhead sample
#   BENCH_RUNS=3 scripts/bench.sh    # fewer e2e repetitions
#   RECORD_SCALING=1 scripts/bench.sh # append thread- and homes-scaling
#                                     # series to BENCH_simulate.json
#
# The faultlab sample runs the same study under the collector-flap
# scenario and reports the throughput delta of the reliable upload
# pipeline (store-and-forward queue + retries). It is informational:
# faulted runs do strictly more work, so only the fault-free measurement
# gates.
#
# The gate compares a fresh quick-study measurement (fixed seed, single
# thread, best of BENCH_RUNS repetitions — scheduler noise only ever adds
# time) against the most recent committed entry's records_per_sec. The
# fresh measurement is NOT appended to the file; use the `e2e` binary
# directly when recording a new baseline.

set -euo pipefail
cd "$(dirname "$0")/.."

THRESHOLD_PCT=${THRESHOLD_PCT:-20}
BENCH_RUNS=${BENCH_RUNS:-5}

if [ -z "${SKIP_MICRO:-}" ]; then
    echo "== substrate microbenchmarks =="
    cargo bench --offline -p bench --bench substrate
    echo "== uploader / reliable-delivery microbenchmarks =="
    cargo bench --offline -p bench --bench uploader
fi

echo "== end-to-end simulation benchmark (best of $BENCH_RUNS) =="
cargo build --release --offline -p bench --bin e2e
fresh=0
for _ in $(seq "$BENCH_RUNS"); do
    run_json=$(./target/release/e2e --dry-run)
    run=$(printf '%s\n' "$run_json" | sed -n 's/.*"records_per_sec": \([0-9.]*\).*/\1/p')
    echo "  run: $run records/sec"
    fresh=$(awk -v a="$fresh" -v b="$run" 'BEGIN { print (b > a) ? b : a }')
done
# Gate against the last committed *comparable* entry: the fresh run is a
# fault-free, CGN-free, single-thread, 20-day, 126-home, unbounded-memory
# quick study, so skip faulted entries (reliable-upload pipeline under
# injected failures), CGN entries (second translation hop plus the NAT
# probe experiments do strictly more work), thread- and homes-scaling
# series, spilled entries (bounded memory does strictly more I/O),
# stream entries (per-window draining and incremental reporting do
# strictly more work than one batch snapshot), and any entry measured
# over a different horizon.
baseline=$(awk '
    /\{/      { rps = ""; faulted = 0; cgned = 0; scaled = 0; spilled = 0; streamed = 0; threads = ""; days = "" }
    /"records_per_sec":/ { s = $0; gsub(/[^0-9.]/, "", s); rps = s }
    /"threads":/         { s = $0; gsub(/[^0-9]/, "", s); threads = s }
    /"days":/            { s = $0; gsub(/[^0-9]/, "", s); days = s }
    /"faults":/          { faulted = 1 }
    /"cgn":/             { cgned = 1 }
    /"homes":/           { scaled = 1 }
    /"spill":/           { spilled = 1 }
    /"stream":/          { streamed = 1 }
    /\}/      { if (rps != "" && !faulted && !cgned && !scaled && !spilled && !streamed && threads == "1" && days == "20") last = rps }
    END       { print last }
' BENCH_simulate.json)

if [ -z "$fresh" ] || [ -z "$baseline" ]; then
    echo "failed to extract records_per_sec (fresh='$fresh' baseline='$baseline')" >&2
    exit 1
fi

if [ -z "${SKIP_FAULTS:-}" ]; then
    echo "== faultlab overhead sample (collector-flap vs fault-free) =="
    fault_json=$(./target/release/e2e --dry-run --faults collector-flap)
    fault=$(printf '%s\n' "$fault_json" | sed -n 's/.*"records_per_sec": \([0-9.]*\).*/\1/p')
    echo "  fault-free: $fresh records/sec"
    echo "  faulted:    $fault records/sec"
    awk -v clean="$fresh" -v faulted="$fault" 'BEGIN {
        printf "  overhead: %.1f%% (informational)\n", (1 - faulted / clean) * 100;
    }'
fi

if [ -z "${SKIP_CGN:-}" ]; then
    echo "== CGN tier overhead sample (isp-mix vs cgn-free) =="
    cgn_json=$(./target/release/e2e --dry-run --cgn isp-mix)
    cgn=$(printf '%s\n' "$cgn_json" | sed -n 's/.*"records_per_sec": \([0-9.]*\).*/\1/p')
    echo "  cgn-free: $fresh records/sec"
    echo "  cgn-on:   $cgn records/sec"
    awk -v clean="$fresh" -v cgned="$cgn" 'BEGIN {
        printf "  overhead: %.1f%% (informational)\n", (1 - cgned / clean) * 100;
    }'
fi

if [ -n "${RECORD_SCALING:-}" ]; then
    echo "== thread-scaling series (appended to BENCH_simulate.json) =="
    # The CI container pins this workspace to a single core, so the
    # 2/4/8-thread rows serialize onto that core and measure sharding
    # overhead rather than speedup. On multi-core hosts the same series
    # shows the parallel scaling of the sharded collector.
    for t in 1 2 4 8; do
        ./target/release/e2e --threads "$t" --label "threads-$t"
    done
    echo "== homes-scaling series (appended to BENCH_simulate.json) =="
    # Generative deployments past the paper's 126 homes; 7 virtual days
    # keeps the 10k-home row affordable while still dominated by the
    # columnar ingest path.
    for h in 126 1000 10000; do
        ./target/release/e2e --days 7 --homes "$h" --label "homes-$h"
    done
    echo "== out-of-core spill series (appended to BENCH_simulate.json) =="
    # Spill-off vs spill-on pair at the standard quick study, then a
    # 50k-home run under a 512 MiB budget (its columnar heap is ~1 GiB,
    # so roughly half goes out-of-core) — the bounded-memory
    # configuration the 100k–1M scaling work targets. Spilled entries
    # carry a "spill" key, so the baseline gate above never compares
    # against them.
    ./target/release/e2e --label "spill-off"
    ./target/release/e2e --label "spill-on" --spill-budget 4MiB
    ./target/release/e2e --days 7 --homes 50000 --label "homes-50000-spilled" \
        --spill-budget 512MiB
    echo "== CGN overhead pair (appended to BENCH_simulate.json) =="
    # cgn-off vs cgn-on at the standard quick study: the delta prices the
    # second translation hop plus the NAT probe / hole-punch experiments.
    # CGN entries carry a "cgn" key, so the baseline gate above never
    # compares against them.
    ./target/release/e2e --label "cgn-off"
    ./target/release/e2e --label "cgn-on" --cgn isp-mix
    echo "== streaming steady-state entry (appended to BENCH_simulate.json) =="
    # Continuous-operation mode at a one-day cadence: the entry carries
    # the mean per-window incremental update+finalize cost
    # (window_update_secs) next to analyze_secs, which for stream entries
    # times one full report recompute on the final datasets — the
    # steady-state saving of the incremental path, in one row. Stream
    # entries carry a "stream" key, so the baseline gate above never
    # compares against them.
    ./target/release/e2e --label "stream-1d" --stream 1d
fi

echo "baseline: $baseline records/sec (last committed entry)"
echo "fresh:    $fresh records/sec"
awk -v fresh="$fresh" -v base="$baseline" -v pct="$THRESHOLD_PCT" 'BEGIN {
    floor = base * (1 - pct / 100);
    if (fresh < floor) {
        printf "REGRESSION: %.0f records/sec is more than %d%% below baseline %.0f\n",
               fresh, pct, base;
        exit 1;
    }
    printf "OK: within %d%% of baseline (floor %.0f records/sec)\n", pct, floor;
}'
