#!/usr/bin/env bash
# Offline verification gate: build, test, and static-analysis in one
# command — what CI would run on every push.
#
#   scripts/check.sh              # build + tests + simlint
#   SKIP_TESTS=1 scripts/check.sh # simlint only (fast pre-commit loop)
#
# simlint enforces the workspace's static invariants (deterministic
# iteration and ordered float accumulation in dataset/analysis crates, no
# wall-clock or ambient RNG in simulation code, no panics or swallowed
# errors on the ingest path, no allocation in manifest-listed hot
# functions or anything the call graph reaches from them, layering per
# simlint-layers.txt, threads/atomics only in whitelisted files). The same
# scan runs as a test target (tests/simlint_clean.rs), so `cargo test`
# alone also fails on a new finding; running it here too gives the
# human-readable diagnostics first and a nonzero exit without scanning the
# test harness output. The JSON report lands in target/simlint-report.json
# for tooling, and the audit listing accounts for every suppression.

set -euo pipefail
cd "$(dirname "$0")/.."

if [ -z "${SKIP_TESTS:-}" ]; then
    echo "== build (release) =="
    cargo build --release --offline --workspace
    echo "== tests =="
    cargo test -q --offline --workspace
    echo "== metrics smoke =="
    # A short instrumented run must produce a valid run manifest with the
    # headline series present and no wall-clock section (wall spans are
    # text-summary-only; metrics.json stays deterministic).
    smoke_dir=$(mktemp -d)
    trap 'rm -rf "$smoke_dir"' EXIT
    ./target/release/bismark-study run --seed 7 --days 5 \
        --report "$smoke_dir/report.txt" --metrics "$smoke_dir/metrics.json"
    python3 - "$smoke_dir/metrics.json" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    m = json.load(f)
for section in ("meta", "counters", "gauges", "histograms"):
    assert section in m, f"missing section: {section}"
assert m["meta"]["schema"] == "bismark-metrics/1", m["meta"]
for key in ("packets_forwarded_total", "heartbeats_emitted_total",
            "dhcp_leases_total", "nat_evictions_total",
            "collector_accepted_total", "uploader_retries_total"):
    assert key in m["counters"], f"missing counter: {key}"
assert "wall" not in m, "wall-clock spans must not reach metrics.json"
for name, h in m["histograms"].items():
    assert len(h["buckets"]) == len(h["bounds"]) + 1, f"bucket shape: {name}"
    assert sum(h["buckets"]) == h["count"], f"bucket sum: {name}"
print("metrics.json OK: %d counters, %d gauges, %d histograms"
      % (len(m["counters"]), len(m["gauges"]), len(m["histograms"])))
PYEOF
    echo "== scale smoke (generative 5000-home deployment) =="
    # A scaled quick study must run to completion and its manifest must
    # describe exactly the requested deployment, with dataset gauges that
    # are plausible for that many homes (every home reports device
    # censuses, packet stats, and at least one MAC sighting).
    ./target/release/bismark-study run --seed 7 --days 2 --homes 5000 \
        --report "$smoke_dir/scale_report.txt" --metrics "$smoke_dir/scale_metrics.json"
    python3 - "$smoke_dir/scale_metrics.json" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    m = json.load(f)
assert m["meta"]["homes"] == "5000", m["meta"]
g = m["gauges"]
assert g["study_homes"] == 5000, g.get("study_homes")
# Consent-free data sets cover (nearly) every home...
for key in ("dataset_device_census_records", "dataset_wifi_scan_records"):
    assert g.get(key, 0) >= 5000, (key, g.get(key))
# ...while the Traffic tables are consent-gated (a fraction of US homes),
# so they must be populated but can be well under one record per home.
for key in ("dataset_packet_stat_records", "dataset_flow_records",
            "dataset_mac_sighting_records"):
    assert g.get(key, 0) > 0, (key, g.get(key))
assert g["dataset_heartbeat_records"] > g["dataset_uptime_records"], g
print("scale smoke OK: 5000 homes, %d packet-stat records"
      % g["dataset_packet_stat_records"])
PYEOF
    echo "== bounded-memory smoke (20000 homes under a 4MiB spill budget) =="
    # The same 20k-home study unbounded and under a small out-of-core
    # budget: the spilled run must actually seal segments, keep peak RSS
    # bounded (budget + a fixed slack for the non-columnar simulation
    # state, which the budget deliberately does not govern), and produce a
    # byte-identical report. 4 MiB is two orders of magnitude under this
    # study's columnar heap (all seven high-volume tables), so every
    # shard seals many segments.
    ./target/release/bismark-study run --seed 7 --days 2 --homes 20000 \
        --report "$smoke_dir/unbounded_report.txt"
    ./target/release/bismark-study run --seed 7 --days 2 --homes 20000 \
        --spill-budget 4MiB --spill-dir "$smoke_dir/spill" \
        --report "$smoke_dir/spill_report.txt" \
        --metrics "$smoke_dir/spill_metrics.json" --metrics-text \
        2> "$smoke_dir/spill_stderr.txt" \
        || { cat "$smoke_dir/spill_stderr.txt" >&2; exit 1; }
    cmp "$smoke_dir/unbounded_report.txt" "$smoke_dir/spill_report.txt" \
        && echo "spilled report is byte-identical to the unbounded run"
    python3 - "$smoke_dir/spill_metrics.json" "$smoke_dir/spill_stderr.txt" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    m = json.load(f)
c = m["counters"]
assert c.get("spill_segments_written_total", 0) > 0, c
assert c.get("spill_bytes_written_total", 0) > 0, c
assert c.get("spill_errors_total", 1) == 0, c
assert m["gauges"].get("spill_merge_fanin", 0) > 0, m["gauges"]
with open(sys.argv[2]) as f:
    stderr = f.read()
peak = None
for line in stderr.splitlines():
    parts = line.split()
    if parts[:1] == ["peak_rss_bytes"] and len(parts) == 2 and parts[1].isdigit():
        peak = int(parts[1])
if peak is None:
    assert "peak_rss_bytes  unavailable" in stderr, "peak_rss_bytes line missing"
    print("bounded-memory smoke OK (RSS check skipped: no VmHWM on this host)")
else:
    budget = 4 * 2**20
    slack = 896 * 2**20  # deployment + runlogs + row tables + merge buffers
    assert peak < budget + slack, \
        f"peak RSS {peak} exceeds budget {budget} + slack {slack}"
    print("bounded-memory smoke OK: %d segments, %.0f MiB spilled, peak RSS %.0f MiB"
          % (c["spill_segments_written_total"],
             c["spill_bytes_written_total"] / 2**20, peak / 2**20))
PYEOF
    echo "== CGN smoke (isp-mix scenario + no-CGN baseline identity) =="
    # An armed CGN run must publish the cgn counter/gauge families, leave
    # ground-truth plan gauges in the manifest, and grow the report's NAT
    # characterization section; the same study without --cgn must be
    # byte-identical (report and export) to a plain run — the subsystem
    # fully disengages.
    ./target/release/bismark-study run --seed 7 --days 5 --cgn isp-mix \
        --report "$smoke_dir/cgn_report.txt" --metrics "$smoke_dir/cgn_metrics.json"
    python3 - "$smoke_dir/cgn_metrics.json" "$smoke_dir/cgn_report.txt" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    m = json.load(f)
assert m["meta"]["cgn"] == "isp-mix", m["meta"]
c, g = m["counters"], m["gauges"]
for key in ("cgn_probes_total", "cgn_punch_trials_total",
            "cgn_hop_mappings_total"):
    assert c.get(key, 0) > 0, (key, c.get(key))
for key in ("cgn_fronted_homes", "cgn_boxes", "cgn_blocks",
            "cgn_block_leases"):
    assert g.get(key, 0) > 0, (key, g.get(key))
assert g.get("dataset_nat_probe_records", 0) > 0, g
assert g.get("dataset_punch_trial_records", 0) > 0, g
with open(sys.argv[2]) as f:
    report = f.read()
for section in ("NAT characterization", "CGN detection by country",
                "Hole-punch success by NAT-type pair"):
    assert section in report, f"report missing section: {section}"
print("cgn smoke OK: %d probes, %d punch trials, %d fronted homes"
      % (c["cgn_probes_total"], c["cgn_punch_trials_total"],
         g["cgn_fronted_homes"]))
PYEOF
    # No --cgn → byte-identical to a plain run of the same binary.
    ./target/release/bismark-study run --seed 7 --days 5 \
        --report "$smoke_dir/nocgn_report.txt" --export "$smoke_dir/nocgn_export.json"
    ./target/release/bismark-study run --seed 7 --days 5 \
        --report "$smoke_dir/plain_report.txt" --export "$smoke_dir/plain_export.json"
    cmp "$smoke_dir/nocgn_report.txt" "$smoke_dir/plain_report.txt" \
        && cmp "$smoke_dir/nocgn_export.json" "$smoke_dir/plain_export.json" \
        && echo "no-CGN run is byte-identical to the plain run"
    echo "== streaming smoke (windowed continuous run vs batch identity) =="
    # The same study in continuous-operation mode at a 36-hour window
    # cadence: the final rolling report and public export must converge to
    # the batch run (plain_report/plain_export above) byte for byte, each
    # sealed window must leave a gauges-only manifest at the derived
    # metrics.wNNNN.json path with monotonically growing dataset gauges,
    # and the end-of-run manifest must carry the cadence in its meta.
    ./target/release/bismark-study run --seed 7 --days 5 --stream --window 36h \
        --report "$smoke_dir/stream_report.txt" \
        --export "$smoke_dir/stream_export.json" \
        --metrics "$smoke_dir/stream_metrics.json"
    cmp "$smoke_dir/stream_report.txt" "$smoke_dir/plain_report.txt" \
        && cmp "$smoke_dir/stream_export.json" "$smoke_dir/plain_export.json" \
        && echo "streamed run is byte-identical to the batch run"
    python3 - "$smoke_dir" <<'PYEOF'
import glob, json, os, sys
d = sys.argv[1]
windows = sorted(glob.glob(os.path.join(d, "stream_metrics.w*.json")))
assert len(windows) == 4, f"expected 4 window manifests (5 days / 36h), got {windows}"
prev = None
for i, path in enumerate(windows):
    with open(path) as f:
        m = json.load(f)
    meta = m["meta"]
    assert meta["mode"] == "stream-window", (path, meta)
    assert meta["window_index"] == str(i + 1), (path, meta)
    assert "window_end_day" in meta, (path, meta)
    assert not m["counters"], "window manifests are gauges-only"
    assert not m["histograms"], "window manifests are gauges-only"
    g = m["gauges"]
    assert g.get("dataset_heartbeat_records", 0) > 0, (path, g)
    if prev is not None:
        for key, value in prev.items():
            assert g.get(key, 0) >= value, f"gauge {key} shrank at {path}"
    prev = g
with open(os.path.join(d, "stream_metrics.json")) as f:
    final = json.load(f)
assert final["meta"]["stream"] == "2160m", final["meta"]
assert final["gauges"]["dataset_heartbeat_records"] == prev["dataset_heartbeat_records"], \
    "final manifest must agree with the last window"
print("streaming smoke OK: %d windows, %d heartbeat records"
      % (len(windows), prev["dataset_heartbeat_records"]))
PYEOF
fi

echo "== simlint =="
cargo run -q --offline -p simlint -- --workspace
mkdir -p target
cargo run -q --offline -p simlint -- --workspace --json > target/simlint-report.json
echo "simlint report artifact: target/simlint-report.json"
echo "== simlint audit =="
# Every accepted deviation (inline suppression, shared-state whitelist
# entry, baseline line) listed with its justification; the summary line
# is the count a reviewer should expect to stay flat or shrink.
cargo run -q --offline -p simlint -- --audit | tail -n 1
echo "check.sh: all gates passed"
