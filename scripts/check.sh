#!/usr/bin/env bash
# Offline verification gate: build, test, and static-analysis in one
# command — what CI would run on every push.
#
#   scripts/check.sh              # build + tests + simlint
#   SKIP_TESTS=1 scripts/check.sh # simlint only (fast pre-commit loop)
#
# simlint enforces the workspace's static invariants (deterministic
# iteration in dataset crates, no wall-clock or ambient RNG in simulation
# code, no panics on the ingest path, no allocation in manifest-listed hot
# functions). The same scan runs as a test target (tests/simlint_clean.rs),
# so `cargo test` alone also fails on a new finding; running it here too
# gives the human-readable diagnostics first and a nonzero exit without
# scanning the test harness output.

set -euo pipefail
cd "$(dirname "$0")/.."

if [ -z "${SKIP_TESTS:-}" ]; then
    echo "== build (release) =="
    cargo build --release --offline --workspace
    echo "== tests =="
    cargo test -q --offline --workspace
fi

echo "== simlint =="
cargo run -q --offline -p simlint -- --workspace
echo "check.sh: all gates passed"
