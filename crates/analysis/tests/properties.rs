//! Property-based tests for the statistics toolkit and the figure
//! computations' order-independence (results must not depend on record
//! ordering, since the collector merges parallel uploads).

use analysis::stats::{mean, median, std_dev, Cdf, MeanStd};
use collector::windows::Window;
use collector::{Collector, RouterMeta};
use firmware::records::{DeviceCensusRecord, Record, RouterId};
use household::Country;
use proptest::prelude::*;
use simnet::time::{SimDuration, SimTime};

proptest! {
    #[test]
    fn quantiles_are_monotone_and_bounded(samples in proptest::collection::vec(-1e9f64..1e9, 1..200)) {
        let cdf = Cdf::from_samples(samples.iter().copied());
        let lo = cdf.quantile(0.0);
        let hi = cdf.quantile(1.0);
        let mut last = lo;
        for i in 0..=20 {
            let q = cdf.quantile(i as f64 / 20.0);
            prop_assert!(q >= last - 1e-9);
            prop_assert!(q >= lo && q <= hi);
            last = q;
        }
    }

    #[test]
    fn fraction_at_or_below_is_a_cdf(samples in proptest::collection::vec(-1e6f64..1e6, 1..200),
                                     probe in -2e6f64..2e6) {
        let cdf = Cdf::from_samples(samples.iter().copied());
        let f = cdf.fraction_at_or_below(probe);
        prop_assert!((0.0..=1.0).contains(&f));
        let min = cdf.quantile(0.0);
        let max = cdf.quantile(1.0);
        if probe < min {
            prop_assert_eq!(f, 0.0);
        }
        if probe >= max {
            prop_assert_eq!(f, 1.0);
        }
    }

    #[test]
    fn median_between_min_and_max(samples in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let m = median(&samples);
        let lo = samples.iter().cloned().fold(f64::MAX, f64::min);
        let hi = samples.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(m >= lo && m <= hi);
    }

    #[test]
    fn mean_std_shift_invariance(samples in proptest::collection::vec(-1e3f64..1e3, 2..100),
                                 shift in -1e3f64..1e3) {
        let base = MeanStd::of(&samples);
        let shifted: Vec<f64> = samples.iter().map(|x| x + shift).collect();
        let after = MeanStd::of(&shifted);
        prop_assert!((after.mean - base.mean - shift).abs() < 1e-6);
        prop_assert!((after.std - base.std).abs() < 1e-6);
        prop_assert!(std_dev(&samples) >= 0.0);
        prop_assert!((mean(&shifted) - mean(&samples) - shift).abs() < 1e-6);
    }

    #[test]
    fn figures_are_ingest_order_independent(
        censuses in proptest::collection::vec((0u32..5, 0u64..200, 0u8..3, 0u8..6, 0u8..3), 1..80),
        seed in any::<u64>(),
    ) {
        // Build the same census records in two different ingest orders; the
        // analysis must not care.
        // Deduplicate by (router, hour): a real router reports one census
        // per instant, and the collector's stable sort otherwise has no
        // total order to restore.
        let mut seen = std::collections::HashSet::new();
        let censuses: Vec<_> = censuses
            .into_iter()
            .filter(|(router, hour, ..)| seen.insert((*router, *hour)))
            .collect();
        let build = |order: &[usize]| {
            let collector = Collector::new();
            for router in 0..5u32 {
                collector.register(RouterMeta {
                    router: RouterId(router),
                    country: if router % 2 == 0 { Country::UnitedStates } else { Country::India },
                    traffic_consent: false,
                });
            }
            for &i in order {
                let (router, hour, wired, w24, w5) = censuses[i];
                collector.ingest(Record::DeviceCensus(DeviceCensusRecord {
                    router: RouterId(router),
                    at: SimTime::EPOCH + SimDuration::from_hours(hour),
                    wired,
                    wireless_24: w24,
                    wireless_5: w5,
                }));
            }
            collector.snapshot()
        };
        let forward: Vec<usize> = (0..censuses.len()).collect();
        let mut shuffled = forward.clone();
        let mut rng = simnet::rng::DetRng::new(seed);
        rng.shuffle(&mut shuffled);
        let a = build(&forward);
        let b = build(&shuffled);
        let window = Window {
            start: SimTime::EPOCH,
            end: SimTime::EPOCH + SimDuration::from_hours(200),
        };
        let fig8_a = analysis::infrastructure::fig8(&a, window);
        let fig8_b = analysis::infrastructure::fig8(&b, window);
        prop_assert_eq!(fig8_a.developed.0.mean.to_bits(), fig8_b.developed.0.mean.to_bits());
        prop_assert_eq!(fig8_a.developing.1.std.to_bits(), fig8_b.developing.1.std.to_bits());
        let fig9_a = analysis::infrastructure::fig9(&a, window);
        let fig9_b = analysis::infrastructure::fig9(&b, window);
        prop_assert_eq!(fig9_a.ghz24.mean.to_bits(), fig9_b.ghz24.mean.to_bits());
    }
}
