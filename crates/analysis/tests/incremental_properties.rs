//! Property-based differential testing for [`analysis::IncrementalReport`]:
//! for *arbitrary* record soups, *arbitrary* window boundaries, *arbitrary*
//! ingest orderings, and duplicated records, folding the stream window by
//! window must finalize to exactly the report a batch recompute produces.
//!
//! This is the generalization of the fixed-cut unit test in
//! `analysis::incremental`: proptest explores the partition space (empty
//! windows, one-record windows, windows straddling every sub-window
//! boundary) that hand-picked cuts cannot.

use analysis::{IncrementalReport, ReportWindows, StudyReport};
use collector::windows::Window;
use collector::{Collector, DatasetsAbsorber, RouterMeta};
use firmware::anonymize::{AnonMac, ReportedDomain};
use firmware::latency::LatencyRecord;
use firmware::records::{
    ApSighting, AssociationRecord, CapacityRecord, DeviceCensusRecord, DnsSampleRecord,
    FlowRecord, HeartbeatRecord, MacSightingRecord, Medium, NatProbeRecord, NatType,
    PacketStatsRecord, PunchTrialRecord, Record, RouterId, UptimeRecord, WifiScanRecord,
};
use household::Country;
use proptest::prelude::*;
use simnet::dns::DomainName;
use simnet::packet::IpProtocol;
use simnet::time::{SimDuration, SimTime};
use simnet::wifi::Band;

/// Two simulated days, in minutes: long enough that generated cuts can
/// land on either side of every figure's activity, short enough that 64
/// cases stay cheap.
const TOTAL_MINS: u64 = 2 * 24 * 60;
const ROUTERS: u32 = 3;

fn t(mins: u64) -> SimTime {
    SimTime::EPOCH + SimDuration::from_mins(mins)
}

fn mac(n: u32) -> AnonMac {
    AnonMac { oui: household::VendorClass::Apple.oui(), suffix_hash: n }
}

/// One generated event, materialized into a record. All fields derive
/// deterministically from the tuple, so a duplicated event is a truly
/// duplicated record — the dedup paths (Fig 12 sightings, Table 5
/// presence) see identical bytes twice.
fn materialize(router: u32, minute: u64, kind: u8, a: u8, b: u8) -> Record {
    let r = RouterId(router);
    let at = t(minute);
    match kind % 13 {
        0 => Record::Heartbeat(HeartbeatRecord { router: r, at }),
        1 => Record::Uptime(UptimeRecord {
            router: r,
            at,
            uptime: SimDuration::from_mins(minute.min(u64::from(a) * 60)),
        }),
        2 => Record::Capacity(CapacityRecord {
            router: r,
            at,
            down_bps: 5_000_000 + u64::from(a) * 1_000_000,
            up_bps: 500_000 + u64::from(b) * 100_000,
            shaping_detected: a % 2 == 0,
        }),
        3 => Record::DeviceCensus(DeviceCensusRecord {
            router: r,
            at,
            wired: a % 3,
            wireless_24: b % 4,
            wireless_5: a % 2,
        }),
        4 => Record::WifiScan(WifiScanRecord {
            router: r,
            at,
            band: if a % 2 == 0 { Band::Ghz24 } else { Band::Ghz5 },
            aps: vec![ApSighting {
                bssid_hash: 100 + u64::from(b),
                channel_number: 1 + a % 11,
                signal_dbm: -40 - (b % 50) as i8,
            }],
            associated_stations: a % 4,
        }),
        5 => Record::Association(AssociationRecord {
            router: r,
            at,
            device: mac(router * 10 + u32::from(a % 5)),
            medium: match b % 3 {
                0 => Medium::Wired,
                1 => Medium::Wireless24,
                _ => Medium::Wireless5,
            },
        }),
        6 => Record::PacketStats(PacketStatsRecord {
            router: r,
            at,
            bytes_down: 1_000_000 + minute * 1_000,
            bytes_up: 50_000 + u64::from(b) * 100,
            pkts_down: 700,
            pkts_up: 100,
            peak_down_1s: 200_000 + u64::from(a) * 10_000,
            peak_up_1s: 20_000 + u64::from(b) * 1_000,
        }),
        7 => Record::Flow(FlowRecord {
            router: r,
            started: t(minute.saturating_sub(u64::from(a % 3))),
            ended: at,
            device: mac(router * 10 + u32::from(b % 4)),
            remote_ip_hash: minute ^ u64::from(a),
            remote_port: 443,
            proto: IpProtocol::Tcp,
            domain: match a % 3 {
                0 => ReportedDomain::Clear(DomainName::new("netflix.com").unwrap()),
                1 => ReportedDomain::Clear(DomainName::new("youtube.com").unwrap()),
                _ => ReportedDomain::Obfuscated(u64::from(b)),
            },
            bytes_down: 50_000 + u64::from(b) * 60_000,
            bytes_up: 9_000,
        }),
        8 => Record::MacSighting(MacSightingRecord {
            router: r,
            first_seen: at,
            device: mac(router * 10 + u32::from(a % 4)),
            // Straddle the 100 KiB prevalence threshold from both sides.
            bytes_total: if a % 2 == 0 { 500_000 } else { 50_000 },
        }),
        9 => Record::Latency(LatencyRecord {
            router: r,
            at,
            rtt_min: SimDuration::from_millis(20),
            rtt_median: SimDuration::from_millis(30 + u64::from(b)),
            rtt_max: SimDuration::from_millis(200),
            lost: a % 3,
        }),
        10 => Record::NatProbe(NatProbeRecord {
            router: r,
            at,
            nat_type: NatType::ALL[(a % 5) as usize],
            mapped_ip_hash: u64::from(b),
            mapped_port: 1_024 + u16::from(a) * 97,
            cgn_detected: b % 2 == 0,
        }),
        11 => Record::PunchTrial(PunchTrialRecord {
            router: r,
            at,
            peer: RouterId((router + 1) % ROUTERS),
            local_type: NatType::ALL[(a % 5) as usize],
            peer_type: NatType::ALL[(b % 5) as usize],
            success: (a ^ b) % 2 == 0,
        }),
        _ => Record::DnsSample(DnsSampleRecord {
            router: r,
            at,
            device: mac(router * 10 + u32::from(a % 4)),
            name: match b % 2 {
                0 => ReportedDomain::Clear(DomainName::new("netflix.com").unwrap()),
                _ => ReportedDomain::Obfuscated(u64::from(a)),
            },
            cname_links: b % 4,
            resolved: a % 2 == 0,
        }),
    }
}

fn register(c: &Collector) {
    for (router, country) in
        [(0u32, Country::UnitedStates), (1, Country::UnitedStates), (2, Country::India)]
    {
        c.register(RouterMeta { router: RouterId(router), country, traffic_consent: true });
    }
}

/// The record's stream-arrival minute: the instant the firmware emits it,
/// which is what assigns it to a window. Flows arrive when they *end*.
fn arrival_minute(record: &Record) -> u64 {
    record.at().since(SimTime::EPOCH).as_mins()
}

proptest! {
    #[test]
    fn incremental_equals_batch_for_arbitrary_windows_orderings_and_dups(
        events in proptest::collection::vec(
            (0u32..ROUTERS, 0u64..TOTAL_MINS, 0u8..26, 0u8..=255, 0u8..=255),
            1..160,
        ),
        dups in proptest::collection::vec(0usize..1_000, 0..12),
        cut_mins in proptest::collection::vec(1u64..TOTAL_MINS, 0..6),
        order_seed in any::<u64>(),
    ) {
        // Materialize, duplicate a few events verbatim, then shuffle: the
        // arrival order the collector sees is arbitrary.
        let mut records: Vec<Record> = events
            .iter()
            .map(|&(router, minute, kind, a, b)| materialize(router, minute, kind, a, b))
            .collect();
        for d in &dups {
            let copy = records[d % events.len()].clone();
            records.push(copy);
        }
        let mut order: Vec<usize> = (0..records.len()).collect();
        let mut rng = simnet::rng::DetRng::new(order_seed);
        rng.shuffle(&mut order);
        let mut records: Vec<Record> = order.into_iter().map(|i| records[i].clone()).collect();
        // One firmware constraint survives the shuffle: heartbeats feed an
        // RLE run log and must arrive non-decreasing per router. Re-sort
        // the heartbeat records among themselves (stable, so equal stamps
        // keep their shuffled order) while every other record stays where
        // the shuffle put it.
        let slots: Vec<usize> = (0..records.len())
            .filter(|&i| matches!(records[i], Record::Heartbeat(_)))
            .collect();
        let mut beats: Vec<Record> = slots.iter().map(|&i| records[i].clone()).collect();
        beats.sort_by_key(|rec| rec.at());
        for (&slot, beat) in slots.iter().zip(beats) {
            records[slot] = beat;
        }

        let span = Window { start: t(0), end: t(TOTAL_MINS) };
        let windows = ReportWindows {
            heartbeats: span,
            uptime: span,
            devices: span,
            wifi: span,
            capacity: span,
            traffic: span,
        };

        // Batch: every record through one collector, one recompute.
        let batch = Collector::new();
        register(&batch);
        batch.ingest_batch(records.clone());
        let data = batch.into_datasets();
        let expected = StudyReport::compute(&data, windows);

        // Stream: the same arrival sequence partitioned at arbitrary cut
        // points (dedup'd and sorted; empty windows are legal and must be
        // no-ops). Each window's delta feeds `update`, then is absorbed
        // into the accumulated snapshot exactly as `run_study_stream` does.
        let mut cuts = vec![0u64];
        cuts.extend(cut_mins.iter().copied());
        cuts.push(TOTAL_MINS);
        cuts.sort_unstable();
        cuts.dedup();

        let mut inc = IncrementalReport::new(windows);
        let mut acc = collector::Datasets::default();
        let mut absorber = DatasetsAbsorber::default();
        for pair in cuts.windows(2) {
            let delta = Collector::new();
            register(&delta);
            delta.ingest_batch(
                records
                    .iter()
                    .filter(|rec| (pair[0]..pair[1]).contains(&arrival_minute(rec)))
                    .cloned()
                    .collect(),
            );
            let delta = delta.into_datasets();
            inc.update(&delta);
            acc.absorb(delta, &mut absorber);
        }

        // The windowed partition reassembles the batch snapshot exactly...
        prop_assert!(acc == data, "absorbed windows diverged from the batch datasets");
        // ...and the incremental report finalizes to the batch recompute,
        // byte for byte in its rendered form.
        let streamed = inc.finalize(&acc);
        prop_assert_eq!(expected.render(&data), streamed.render(&acc));
    }
}
