//! The full study report: every figure and table of the paper computed
//! from a `Datasets` snapshot, plus a text renderer that prints them the
//! way the paper reports them. `EXPERIMENTS.md` is generated from this.

use crate::availability::{self, RouterAvailability};
use crate::highlights::{self, Table3, Table4, Table6};
use crate::index::DataIndex;
use crate::infrastructure;
use crate::render;
use crate::usage;
use collector::windows::Window;
use collector::Datasets;
use household::VendorClass;

/// The windows each analysis slice runs over (mirrors the study's).
#[derive(Debug, Clone, Copy)]
pub struct ReportWindows {
    /// Heartbeats / full span.
    pub heartbeats: Window,
    /// Uptime reports.
    pub uptime: Window,
    /// Device censuses and associations.
    pub devices: Window,
    /// WiFi scans.
    pub wifi: Window,
    /// Capacity probes.
    pub capacity: Window,
    /// Traffic capture.
    pub traffic: Window,
}

/// Every computed result, one field per paper artifact.
#[derive(Debug)]
pub struct StudyReport {
    /// The windows used.
    pub windows: ReportWindows,
    /// Per-router availability (input to Figs 3–6).
    pub routers: Vec<RouterAvailability>,
    /// Figure 3.
    pub fig3: availability::Fig3,
    /// Figure 4.
    pub fig4: availability::Fig4,
    /// Figure 5.
    pub fig5: Vec<availability::Fig5Point>,
    /// Figure 6 archetype routers (always-on, appliance, flaky).
    pub fig6: (
        Option<firmware::records::RouterId>,
        Option<firmware::records::RouterId>,
        Option<firmware::records::RouterId>,
    ),
    /// Figure 7.
    pub fig7: crate::stats::Cdf,
    /// Figure 8.
    pub fig8: infrastructure::Fig8,
    /// Figure 9.
    pub fig9: infrastructure::Fig9,
    /// Figure 10.
    pub fig10: infrastructure::Fig10,
    /// Figure 11.
    pub fig11: infrastructure::Fig11,
    /// Figure 12.
    pub fig12: Vec<(VendorClass, usize)>,
    /// Figure 13.
    pub fig13: usage::Fig13,
    /// Figure 14 (the busiest ordinary traffic home).
    pub fig14: Option<usage::Fig14>,
    /// Figure 15.
    pub fig15: Vec<usage::Fig15Point>,
    /// Figure 16 (over-saturating homes).
    pub fig16: Vec<usage::Fig14>,
    /// Figure 17.
    pub fig17: usage::Fig17,
    /// Figure 18.
    pub fig18: Vec<usage::Fig18Row>,
    /// Figure 19.
    pub fig19: usage::Fig19,
    /// Figure 20 device mixes.
    pub fig20: Vec<usage::Fig20Device>,
    /// Table 1.
    pub table1: Vec<highlights::Table1Row>,
    /// Table 2.
    pub table2: Vec<highlights::Table2Row>,
    /// Table 3.
    pub table3: Table3,
    /// Table 4.
    pub table4: Table4,
    /// Table 5.
    pub table5: Vec<infrastructure::Table5Row>,
    /// Table 6.
    pub table6: Table6,
    /// §4.2 median coverage by country.
    pub coverage: Vec<(household::Country, f64, usize)>,
    /// Companion latency data set, summarized per region.
    pub latency: Vec<crate::latency::RegionLatency>,
    /// NAT characterization (`None` unless the run collected NAT probes,
    /// i.e. a `--cgn` scenario was armed).
    pub natchar: Option<crate::natchar::NatCharacterization>,
}

/// §4's artifacts, computed as one unit (they all derive from
/// [`availability::per_router`]).
struct AvailabilityPart {
    routers: Vec<RouterAvailability>,
    fig3: availability::Fig3,
    fig4: availability::Fig4,
    fig5: Vec<availability::Fig5Point>,
    fig6: (
        Option<firmware::records::RouterId>,
        Option<firmware::records::RouterId>,
        Option<firmware::records::RouterId>,
    ),
    table3: Table3,
    coverage: Vec<(household::Country, f64, usize)>,
}

/// §5's artifacts (Table 4 summarizes Table 5 and Figs 10/11, so it is
/// computed here from their shared results).
struct InfrastructurePart {
    fig7: crate::stats::Cdf,
    fig8: infrastructure::Fig8,
    fig9: infrastructure::Fig9,
    fig10: infrastructure::Fig10,
    fig11: infrastructure::Fig11,
    fig12: Vec<(VendorClass, usize)>,
    table4: Table4,
    table5: Vec<infrastructure::Table5Row>,
}

/// §6's artifacts (Figs 18/19 and Table 6 share one domain tally; Figs
/// 14/16 and Table 6 share one Fig 15 pass).
struct UsagePart {
    fig13: usage::Fig13,
    fig14: Option<usage::Fig14>,
    fig15: Vec<usage::Fig15Point>,
    fig16: Vec<usage::Fig14>,
    fig17: usage::Fig17,
    fig18: Vec<usage::Fig18Row>,
    fig19: usage::Fig19,
    fig20: Vec<usage::Fig20Device>,
    table6: Table6,
}

/// The deployment tables and the companion latency summary.
struct DeploymentPart {
    table1: Vec<highlights::Table1Row>,
    table2: Vec<highlights::Table2Row>,
    latency: Vec<crate::latency::RegionLatency>,
    natchar: Option<crate::natchar::NatCharacterization>,
}

/// Compute one artifact while measuring its wall-clock cost into the named
/// `obs` wall span. The artifact is a pure function of the snapshot and the
/// span is write-only host profiling (it reaches the manifest's text
/// summary, never `metrics.json` or the report), so timing cannot perturb
/// results.
fn timed<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    // simlint: allow(wall-clock) — per-figure host profiling recorded into obs wall spans; never feeds figures or exports
    let start = std::time::Instant::now();
    let value = f();
    obs::wall_span(name).record_micros(start.elapsed().as_micros() as u64);
    value
}

impl StudyReport {
    /// Compute every figure and table from a snapshot.
    ///
    /// A shared [`DataIndex`] groups each table by router exactly once,
    /// and the four independent artifact groups (availability,
    /// infrastructure, usage, deployment tables) run on scoped threads.
    /// Each group is internally deterministic, so the parallel report is
    /// identical to the sequential one.
    pub fn compute(data: &Datasets, windows: ReportWindows) -> StudyReport {
        let idx = &timed("analysis_index", || DataIndex::new(data));
        let (avail, infra, usage_part, deploy) = crossbeam::scope(|scope| {
            let avail = scope.spawn(move |_| Self::compute_availability(data, idx, windows));
            let infra = scope.spawn(move |_| Self::compute_infrastructure(data, idx, windows));
            let usage_part = scope.spawn(move |_| Self::compute_usage(data, idx, windows));
            let deploy = scope.spawn(move |_| Self::compute_deployment(data, windows));
            (
                avail.join().expect("availability group"),
                infra.join().expect("infrastructure group"),
                usage_part.join().expect("usage group"),
                deploy.join().expect("deployment group"),
            )
        })
        .expect("report compute threads");
        StudyReport {
            fig3: avail.fig3,
            fig4: avail.fig4,
            fig5: avail.fig5,
            fig6: avail.fig6,
            fig7: infra.fig7,
            fig8: infra.fig8,
            fig9: infra.fig9,
            fig10: infra.fig10,
            fig11: infra.fig11,
            fig12: infra.fig12,
            fig13: usage_part.fig13,
            fig14: usage_part.fig14,
            fig15: usage_part.fig15,
            fig16: usage_part.fig16,
            fig17: usage_part.fig17,
            fig18: usage_part.fig18,
            fig19: usage_part.fig19,
            fig20: usage_part.fig20,
            table1: deploy.table1,
            table2: deploy.table2,
            table3: avail.table3,
            table4: infra.table4,
            table5: infra.table5,
            table6: usage_part.table6,
            coverage: avail.coverage,
            latency: deploy.latency,
            natchar: deploy.natchar,
            routers: avail.routers,
            windows,
        }
    }

    fn compute_availability(
        data: &Datasets,
        idx: &DataIndex,
        windows: ReportWindows,
    ) -> AvailabilityPart {
        let routers =
            timed("analysis_availability_per_router", || availability::per_router(data, windows.heartbeats));
        AvailabilityPart {
            fig3: timed("analysis_fig3", || availability::fig3(&routers)),
            fig4: timed("analysis_fig4", || availability::fig4(&routers)),
            fig5: timed("analysis_fig5", || availability::fig5(&routers)),
            fig6: timed("analysis_fig6", || availability::fig6_archetypes_with(idx, &routers)),
            table3: timed("analysis_table3", || highlights::table3(&routers)),
            coverage: timed("analysis_coverage", || {
                availability::median_coverage_by_country(&routers)
            }),
            routers,
        }
    }

    fn compute_infrastructure(
        data: &Datasets,
        idx: &DataIndex,
        windows: ReportWindows,
    ) -> InfrastructurePart {
        let fig10 = timed("analysis_fig10", || infrastructure::fig10(data, windows.devices));
        let fig11 = timed("analysis_fig11", || infrastructure::fig11_with(idx, windows.wifi));
        let table5 =
            timed("analysis_table5", || infrastructure::table5_with(idx, windows.devices));
        InfrastructurePart {
            fig7: timed("analysis_fig7", || infrastructure::fig7(data, windows.devices)),
            fig8: timed("analysis_fig8", || infrastructure::fig8_with(idx, windows.devices)),
            fig9: timed("analysis_fig9", || infrastructure::fig9(data, windows.devices)),
            fig12: timed("analysis_fig12", || infrastructure::fig12(data)),
            table4: timed("analysis_table4", || {
                highlights::table4_from(&table5, &fig10, &fig11)
            }),
            fig10,
            fig11,
            table5,
        }
    }

    fn compute_usage(data: &Datasets, idx: &DataIndex, windows: ReportWindows) -> UsagePart {
        let fig13 = timed("analysis_fig13", || usage::fig13_with(idx, windows.wifi));
        let fig15 = timed("analysis_fig15", || usage::fig15_with(idx, windows.traffic));
        // Fig 14 exemplar: an ordinary busy home — meaningful utilization
        // with clear headroom, as in the paper's example (its Fig 14 home
        // peaks well below capacity on most days).
        let fig14_home = fig15
            .iter()
            .filter(|p| p.up_utilization <= 1.0)
            .min_by(|a, b| {
                (a.down_utilization - 0.5)
                    .abs()
                    .partial_cmp(&(b.down_utilization - 0.5).abs())
                    .expect("finite")
            })
            .map(|p| p.router);
        let fig14 = timed("analysis_fig14", || {
            fig14_home.and_then(|r| usage::fig14_with(idx, windows.traffic, r))
        });
        let fig16 = timed("analysis_fig16", || usage::fig16_from(idx, windows.traffic, &fig15));
        let fig17 = timed("analysis_fig17", || usage::fig17(data, windows.traffic));
        let tallies = timed("analysis_domain_tallies", || usage::domain_tallies(idx, windows.traffic));
        let fig18 = timed("analysis_fig18", || usage::fig18_from(&tallies));
        let fig19 = timed("analysis_fig19", || usage::fig19_from(&tallies, 15));
        let table6 =
            timed("analysis_table6", || highlights::table6_from(&fig13, &fig15, &fig17, &fig19));
        UsagePart {
            fig20: timed("analysis_fig20", || usage::fig20(data, windows.traffic, 100 * 1024)),
            fig13,
            fig14,
            fig15,
            fig16,
            fig17,
            fig18,
            fig19,
            table6,
        }
    }

    fn compute_deployment(data: &Datasets, windows: ReportWindows) -> DeploymentPart {
        DeploymentPart {
            table1: timed("analysis_table1", || highlights::table1(data)),
            table2: timed("analysis_table2", || {
                highlights::table2(
                    data,
                    &[
                        ("Heartbeats", windows.heartbeats),
                        ("Capacity", windows.capacity),
                        ("Uptime", windows.uptime),
                        ("Devices", windows.devices),
                        ("WiFi", windows.wifi),
                        ("Traffic", windows.traffic),
                    ],
                )
            }),
            latency: timed("analysis_latency", || {
                crate::latency::by_region(data, windows.heartbeats)
            }),
            natchar: timed("analysis_natchar", || {
                (!data.nat_probes.is_empty()).then(|| crate::natchar::characterize(data))
            }),
        }
    }

    /// Render the whole report as text, figure by figure.
    pub fn render(&self, data: &Datasets) -> String {
        let mut out = String::new();

        out.push_str(&render::table(
            "Table 1: country classification",
            &["country", "region", "routers"],
            &self
                .table1
                .iter()
                .map(|r| {
                    vec![r.country.name().to_string(), r.region.to_string(), r.routers.to_string()]
                })
                .collect::<Vec<_>>(),
        ));
        out.push('\n');
        out.push_str(&render::table(
            "Table 2: data sets",
            &["dataset", "routers", "countries"],
            &self
                .table2
                .iter()
                .map(|r| vec![r.dataset.to_string(), r.routers.to_string(), r.countries.to_string()])
                .collect::<Vec<_>>(),
        ));
        out.push('\n');
        out.push_str(&render::cdf_plot(
            "Figure 3: average downtimes (>=10 min) per day",
            &[("developed", &self.fig3.developed), ("developing", &self.fig3.developing)],
            60,
            12,
        ));
        out.push('\n');
        out.push_str(&render::cdf_plot(
            "Figure 4: downtime duration (seconds)",
            &[("developed", &self.fig4.developed), ("developing", &self.fig4.developing)],
            60,
            12,
        ));
        out.push('\n');
        out.push_str(&render::table(
            "Figure 5: median downtimes vs per-capita GDP",
            &["country", "GDP (PPP $)", "median downtimes", "median duration (min)", "routers"],
            &self
                .fig5
                .iter()
                .map(|p| {
                    vec![
                        p.code.to_string(),
                        p.gdp.to_string(),
                        format!("{:.1}", p.median_downtimes),
                        format!("{:.1}", p.median_duration_secs / 60.0),
                        p.routers.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        ));
        out.push('\n');
        for (label, router) in [
            ("(a) always-on", self.fig6.0),
            ("(b) router-as-appliance", self.fig6.1),
            ("(c) flaky ISP", self.fig6.2),
        ] {
            if let Some(router) = router {
                let tl = availability::fig6_timeline(data, router, self.windows.heartbeats);
                // Show the last two weeks for readability.
                let end = self.windows.heartbeats.end;
                let start = end - simnet::time::SimDuration::from_days(14).min(end.elapsed());
                out.push_str(&render::timeline(
                    &format!("Figure 6{label}: availability of {router}"),
                    &tl,
                    Window { start, end },
                ));
                out.push('\n');
            }
        }
        out.push_str(&render::cdf_plot(
            "Figure 7: devices per home",
            &[("all homes", &self.fig7)],
            60,
            12,
        ));
        out.push('\n');
        out.push_str(&render::table(
            "Figure 8: avg connected devices (mean +/- std)",
            &["region", "wired", "wireless"],
            &[
                vec![
                    "developed".to_string(),
                    format!("{:.2} +/- {:.2}", self.fig8.developed.0.mean, self.fig8.developed.0.std),
                    format!("{:.2} +/- {:.2}", self.fig8.developed.1.mean, self.fig8.developed.1.std),
                ],
                vec![
                    "developing".to_string(),
                    format!("{:.2} +/- {:.2}", self.fig8.developing.0.mean, self.fig8.developing.0.std),
                    format!("{:.2} +/- {:.2}", self.fig8.developing.1.mean, self.fig8.developing.1.std),
                ],
            ],
        ));
        out.push('\n');
        out.push_str(&render::table(
            "Figure 9: avg wireless stations per band (mean +/- std)",
            &["band", "stations"],
            &[
                vec!["2.4 GHz".to_string(), format!("{:.2} +/- {:.2}", self.fig9.ghz24.mean, self.fig9.ghz24.std)],
                vec!["5 GHz".to_string(), format!("{:.2} +/- {:.2}", self.fig9.ghz5.mean, self.fig9.ghz5.std)],
            ],
        ));
        out.push('\n');
        out.push_str(&render::cdf_plot(
            "Figure 10: unique devices per band per home",
            &[("2.4 GHz", &self.fig10.ghz24), ("5 GHz", &self.fig10.ghz5)],
            60,
            12,
        ));
        out.push('\n');
        out.push_str(&render::cdf_plot(
            "Figure 11: visible 2.4 GHz APs per home",
            &[("developed", &self.fig11.developed), ("developing", &self.fig11.developing)],
            60,
            12,
        ));
        out.push('\n');
        out.push_str(&render::bar_chart(
            "Figure 12: devices by manufacturer (Traffic homes, >=100 KB)",
            &self
                .fig12
                .iter()
                .map(|(v, n)| (v.label().to_string(), *n as f64))
                .collect::<Vec<_>>(),
            40,
        ));
        out.push('\n');
        out.push_str(&render::diurnal_plot(
            "Figure 13: mean wireless stations by local hour",
            &self.fig13.weekday,
            &self.fig13.weekend,
        ));
        out.push('\n');
        if let Some(fig14) = &self.fig14 {
            out.push_str(&format!(
                "Figure 14: home {} — capacity down {:.1} Mbps / up {:.1} Mbps, {} busy minutes\n",
                fig14.router,
                fig14.down_capacity_bps / 1e6,
                fig14.up_capacity_bps / 1e6,
                fig14.down_series.len(),
            ));
            out.push_str(&render::utilization_strip(
                "Figure 14 (downstream, relative to measured capacity):",
                &fig14.down_series,
                fig14.down_capacity_bps,
                Window { start: self.windows.traffic.start, end: self.windows.traffic.end },
            ));
            out.push('\n');
        }
        out.push_str(&render::table(
            "Figure 15: p95 link utilization vs capacity",
            &["home", "down cap (Mbps)", "down util", "up cap (Mbps)", "up util"],
            &self
                .fig15
                .iter()
                .map(|p| {
                    vec![
                        p.router.to_string(),
                        format!("{:.1}", p.down_capacity_bps / 1e6),
                        format!("{:.2}", p.down_utilization),
                        format!("{:.2}", p.up_capacity_bps / 1e6),
                        format!("{:.2}", p.up_utilization),
                    ]
                })
                .collect::<Vec<_>>(),
        ));
        out.push('\n');
        out.push_str(&format!(
            "Figure 16: {} home(s) with p95 uplink utilization above measured capacity: {}\n",
            self.fig16.len(),
            self.fig16
                .iter()
                .map(|f| f.router.to_string())
                .collect::<Vec<_>>()
                .join(", "),
        ));
        if let Some(worst) = self.fig16.first() {
            out.push_str(&render::utilization_strip(
                &format!(
                    "Figure 16a ({} upstream, relative to its *measured* capacity):",
                    worst.router
                ),
                &worst.up_series,
                worst.up_capacity_bps,
                Window { start: self.windows.traffic.start, end: self.windows.traffic.end },
            ));
        }
        out.push('\n');
        out.push_str(&format!(
            "Figure 17: dominant device {:.0}% of home traffic on average; second {:.0}%\n\n",
            self.fig17.mean_top_share * 100.0,
            self.fig17.mean_second_share * 100.0,
        ));
        out.push_str(&render::table(
            "Figure 18: domains in per-home top-5/top-10 by volume",
            &["domain", "top-5 homes", "top-10 homes"],
            &self
                .fig18
                .iter()
                .take(15)
                .map(|r| vec![r.domain.clone(), r.top5_homes.to_string(), r.top10_homes.to_string()])
                .collect::<Vec<_>>(),
        ));
        out.push('\n');
        out.push_str(&render::table(
            "Figure 19: domain-rank shares (mean across homes)",
            &["rank", "volume share", "conn share (by conn rank)", "conn share (by vol rank)"],
            &(0..self.fig19.volume_share_by_rank.len().min(10))
                .map(|i| {
                    vec![
                        (i + 1).to_string(),
                        format!("{:.3}", self.fig19.volume_share_by_rank[i]),
                        format!("{:.3}", self.fig19.connection_share_by_rank[i]),
                        format!("{:.3}", self.fig19.connections_of_volume_rank[i]),
                    ]
                })
                .collect::<Vec<_>>(),
        ));
        out.push_str(&format!(
            "  whitelisted fraction of bytes: {:.2}\n\n",
            self.fig19.whitelisted_byte_fraction
        ));
        let (computer, streamer) = usage::fig20_exemplars(&self.fig20);
        for (label, dev) in [("(a) computer", computer), ("(b) streaming box", streamer)] {
            if let Some(dev) = dev {
                out.push_str(&render::table(
                    &format!(
                        "Figure 20{label}: {} ({})",
                        dev.device,
                        dev.vendor.map_or("unknown", |v| v.label())
                    ),
                    &["domain", "share"],
                    &dev.domains
                        .iter()
                        .map(|(d, s)| vec![d.clone(), format!("{:.2}", s)])
                        .collect::<Vec<_>>(),
                ));
                out.push('\n');
            }
        }
        out.push_str(&format!(
            "Table 3: median time between downtimes — developed {}, developing {}; worst: {} {}\n",
            self.table3.developed_median_time_between,
            self.table3.developing_median_time_between,
            self.table3.worst_two[0],
            self.table3.worst_two[1],
        ));
        out.push_str(&format!(
            "Table 4: always-on wired {:.0}% vs {:.0}%; band medians {:.0} vs {:.0}; AP medians {:.0} vs {:.0}\n",
            self.table4.developed_always_on_wired * 100.0,
            self.table4.developing_always_on_wired * 100.0,
            self.table4.median_devices_24,
            self.table4.median_devices_5,
            self.table4.median_aps_developed,
            self.table4.median_aps_developing,
        ));
        out.push_str(&render::table(
            "Table 5: always-connected devices",
            &["region", "households", "wired", "wireless"],
            &self
                .table5
                .iter()
                .map(|r| {
                    vec![
                        r.region.to_string(),
                        r.total.to_string(),
                        format!("{} ({:.0}%)", r.wired, 100.0 * r.wired as f64 / r.total.max(1) as f64),
                        format!(
                            "{} ({:.0}%)",
                            r.wireless,
                            100.0 * r.wireless as f64 / r.total.max(1) as f64
                        ),
                    ]
                })
                .collect::<Vec<_>>(),
        ));
        out.push_str(&render::table(
            "Router coverage by country (median fraction of time reporting)",
            &["country", "median coverage", "routers"],
            &self
                .coverage
                .iter()
                .map(|(country, cov, n)| {
                    vec![
                        country.code().to_string(),
                        format!("{:.2}%", cov * 100.0),
                        n.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        ));
        out.push_str(&render::table(
            "Companion latency data set (RTT to the measurement server)",
            &["region", "median RTT", "median peak RTT", "homes"],
            &self
                .latency
                .iter()
                .map(|r| {
                    vec![
                        r.region.to_string(),
                        format!("{:.0} ms", r.median_rtt_ms),
                        format!("{:.0} ms", r.median_peak_rtt_ms),
                        r.homes.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        ));
        out.push_str(&format!(
            "Table 6: diurnal spread weekday {:.2} vs weekend {:.2}; {} oversaturating home(s); dominant device {:.0}%; top domain {:.0}% of bytes / {:.0}% of connections; whitelist covers {:.0}% of bytes\n",
            self.table6.weekday_spread,
            self.table6.weekend_spread,
            self.table6.oversaturating_homes,
            self.table6.dominant_device_share * 100.0,
            self.table6.top_domain_volume_share * 100.0,
            self.table6.top_domain_connection_share * 100.0,
            self.table6.whitelisted_byte_fraction * 100.0,
        ));
        if let Some(nc) = &self.natchar {
            out.push('\n');
            out.push_str(&render::table(
                "NAT characterization: modal NAT type per home",
                &["NAT type", "homes"],
                &nc.type_counts
                    .iter()
                    .map(|(t, n)| vec![t.name().to_string(), n.to_string()])
                    .collect::<Vec<_>>(),
            ));
            out.push_str(&render::table(
                "CGN detection by country (homes whose probes flagged CGN)",
                &["country", "flagged", "probed", "rate"],
                &nc.detection_by_country
                    .iter()
                    .map(|c| {
                        vec![
                            c.country.code().to_string(),
                            c.flagged.to_string(),
                            c.probed.to_string(),
                            format!("{:.0}%", 100.0 * c.flagged as f64 / c.probed.max(1) as f64),
                        ]
                    })
                    .collect::<Vec<_>>(),
            ));
            let locals: Vec<firmware::records::NatType> = firmware::records::NatType::ALL
                .into_iter()
                .filter(|&t| nc.matrix.iter().any(|c| c.local == t))
                .collect();
            let mut header = vec!["local \\ peer"];
            header.extend(firmware::records::NatType::ALL.iter().map(|t| t.name()));
            out.push_str(&render::table(
                "Hole-punch success by NAT-type pair (successes/attempts)",
                &header,
                &locals
                    .iter()
                    .map(|&l| {
                        let mut row = vec![l.name().to_string()];
                        row.extend(firmware::records::NatType::ALL.iter().map(|&p| {
                            nc.matrix
                                .iter()
                                .find(|c| c.local == l && c.peer == p)
                                .map_or("-".to_string(), |c| {
                                    format!("{}/{}", c.successes, c.attempts)
                                })
                        }));
                        row
                    })
                    .collect::<Vec<_>>(),
            ));
            let pa = &nc.port_allocation;
            if !pa.per_home.is_empty() {
                let max_blocks = pa.per_home.iter().map(|r| r.blocks).max().unwrap_or(0);
                out.push_str(&render::table(
                    &format!(
                        "Port allocation from the probe lease timeline \
                         ({}-port blocks)",
                        crate::natchar::PORT_BLOCK
                    ),
                    &["blocks used", "homes"],
                    &(1..=max_blocks)
                        .map(|b| {
                            vec![
                                b.to_string(),
                                pa.per_home.iter().filter(|r| r.blocks == b).count().to_string(),
                            ]
                        })
                        .collect::<Vec<_>>(),
                ));
                out.push_str(&format!(
                    "  single-block homes: {}; re-leased or unconstrained: {}\n",
                    pa.single_block_homes, pa.multi_block_homes,
                ));
            }
            out.push_str(&format!(
                "  NAT probes: {} across {} home(s); punch trials: {}\n",
                nc.probes,
                nc.homes.len(),
                nc.trials,
            ));
        }
        out
    }
}
