//! Measurement-artifact detection: telling collector-side failures apart
//! from genuine home downtime.
//!
//! §3.3 admits that "various outages and failures — both of the routers
//! themselves and of the collection infrastructure — introduced
//! interruptions in our collection". A collector outage looks, in any one
//! router's log, exactly like that router going down; but *across* routers
//! it has a fingerprint no household behavior can produce: the gaps are
//! simultaneous everywhere. This module scans the heartbeat logs for
//! instants where an abnormal fraction of otherwise-reporting routers went
//! silent together and flags them, so the availability analysis can be
//! audited for infrastructure artifacts.

use collector::windows::Window;
use collector::Datasets;
use simnet::time::{SimDuration, SimTime, MICROS_PER_MIN};

/// A window flagged as a probable collector-side outage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelatedGap {
    /// Start of the flagged window.
    pub start: SimTime,
    /// End of the flagged window.
    pub end: SimTime,
    /// Fraction of (otherwise reporting) routers silent during it.
    pub silent_fraction: f64,
}

/// Scan for correlated gaps: minutes where at least `threshold` of the
/// routers that reported both before and after were simultaneously silent
/// for `min_len` or longer.
///
/// The scan works on a per-minute silence bitmap derived from the run
/// logs, so its cost is `O(routers × window-minutes)`.
pub fn correlated_gaps(
    data: &Datasets,
    window: Window,
    threshold: f64,
    min_len: SimDuration,
) -> Vec<CorrelatedGap> {
    let minutes = (window.duration().as_micros() / MICROS_PER_MIN) as usize;
    if minutes == 0 || data.heartbeats.is_empty() {
        return Vec::new();
    }
    // For each minute, count routers whose log has coverage there among
    // routers active in the window at all.
    let mut silent = vec![0u32; minutes];
    let mut active_routers = 0u32;
    for log in data.heartbeats.values() {
        let Some((first, last)) = log.extent() else { continue };
        if first >= window.end || last <= window.start {
            continue;
        }
        active_routers += 1;
        // Mark silent minutes: those not covered by any run, clipped to
        // the router's own extent (a router not yet deployed is not
        // "silent").
        let lo = first.max(window.start);
        let hi = last.min(window.end);
        let mut idx = ((lo.as_micros() - window.start.as_micros()) / MICROS_PER_MIN) as usize;
        let end_idx = ((hi.as_micros() - window.start.as_micros()) / MICROS_PER_MIN) as usize;
        let mut runs = log.runs().iter().peekable();
        while idx < end_idx.min(minutes) {
            let t = window.start + SimDuration::from_micros(idx as u64 * MICROS_PER_MIN);
            // Advance runs past t.
            while let Some(run) = runs.peek() {
                if run.last < t {
                    runs.next();
                } else {
                    break;
                }
            }
            let covered = runs
                .peek()
                .is_some_and(|run| run.first <= t + SimDuration::from_mins(1) && run.last >= t);
            if !covered {
                silent[idx] += 1;
            }
            idx += 1;
        }
    }
    if active_routers == 0 {
        return Vec::new();
    }
    // Collect maximal runs of minutes above the threshold.
    let needed = (threshold * f64::from(active_routers)).ceil() as u32;
    let min_minutes = (min_len.as_mins() as usize).max(1);
    let mut out = Vec::new();
    let mut run_start: Option<usize> = None;
    for (idx, &count) in silent.iter().enumerate() {
        if count >= needed {
            run_start.get_or_insert(idx);
        } else if let Some(start_idx) = run_start.take() {
            if idx - start_idx >= min_minutes {
                out.push(make_gap(window, start_idx, idx, &silent, active_routers));
            }
        }
    }
    if let Some(start_idx) = run_start {
        if minutes - start_idx >= min_minutes {
            out.push(make_gap(window, start_idx, minutes, &silent, active_routers));
        }
    }
    out
}

fn make_gap(
    window: Window,
    start_idx: usize,
    end_idx: usize,
    silent: &[u32],
    active: u32,
) -> CorrelatedGap {
    let peak = silent[start_idx..end_idx].iter().max().copied().unwrap_or(0);
    CorrelatedGap {
        start: window.start + SimDuration::from_micros(start_idx as u64 * MICROS_PER_MIN),
        end: window.start + SimDuration::from_micros(end_idx as u64 * MICROS_PER_MIN),
        silent_fraction: f64::from(peak) / f64::from(active),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collector::{Collector, RouterMeta};
    use firmware::records::{HeartbeatRecord, RouterId};
    use household::Country;

    fn m(mins: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_mins(mins)
    }

    /// Ten routers reporting continuously, with a collector outage at
    /// minutes 100..130 and one router individually down 300..340.
    fn synthetic() -> Datasets {
        let collector = Collector::new();
        collector.set_outages(vec![Window { start: m(100), end: m(130) }]);
        for router in 0..10u32 {
            collector.register(RouterMeta {
                router: RouterId(router),
                country: Country::UnitedStates,
                traffic_consent: false,
            });
        }
        for minute in 0..500u64 {
            for router in 0..10u32 {
                if router == 3 && (300..340).contains(&minute) {
                    continue; // a genuine single-home outage
                }
                collector
                    .ingest_heartbeat(HeartbeatRecord { router: RouterId(router), at: m(minute) });
            }
        }
        collector.snapshot()
    }

    #[test]
    fn collector_outage_flagged_individual_outage_not() {
        let data = synthetic();
        let window = Window { start: m(0), end: m(500) };
        let flagged = correlated_gaps(&data, window, 0.8, SimDuration::from_mins(10));
        assert_eq!(flagged.len(), 1, "exactly the collector outage: {flagged:?}");
        let gap = flagged[0];
        assert!(gap.start >= m(95) && gap.start <= m(105), "start {:?}", gap.start);
        assert!(gap.end >= m(125) && gap.end <= m(135), "end {:?}", gap.end);
        assert!(gap.silent_fraction >= 0.99);
    }

    #[test]
    fn clean_data_has_no_flags() {
        let collector = Collector::new();
        collector.register(RouterMeta {
            router: RouterId(0),
            country: Country::UnitedStates,
            traffic_consent: false,
        });
        for minute in 0..200u64 {
            collector.ingest_heartbeat(HeartbeatRecord { router: RouterId(0), at: m(minute) });
        }
        let data = collector.snapshot();
        let flagged = correlated_gaps(
            &data,
            Window { start: m(0), end: m(200) },
            0.8,
            SimDuration::from_mins(10),
        );
        assert!(flagged.is_empty(), "{flagged:?}");
    }

    #[test]
    fn empty_data_is_fine() {
        let data = Datasets::default();
        assert!(correlated_gaps(
            &data,
            Window { start: m(0), end: m(10) },
            0.5,
            SimDuration::from_mins(5)
        )
        .is_empty());
    }
}
