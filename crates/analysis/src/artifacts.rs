//! Measurement-artifact detection: telling collector-side failures apart
//! from genuine home downtime.
//!
//! §3.3 admits that "various outages and failures — both of the routers
//! themselves and of the collection infrastructure — introduced
//! interruptions in our collection". A collector outage looks, in any one
//! router's log, exactly like that router going down; but *across* routers
//! it has a fingerprint no household behavior can produce: the gaps are
//! simultaneous everywhere. This module scans the heartbeat logs for
//! instants where an abnormal fraction of otherwise-reporting routers went
//! silent together and flags them, so the availability analysis can be
//! audited for infrastructure artifacts.

use collector::windows::Window;
use collector::Datasets;
use simnet::time::{SimDuration, SimTime, MICROS_PER_MIN};

/// A window flagged as a probable collector-side outage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelatedGap {
    /// Start of the flagged window.
    pub start: SimTime,
    /// End of the flagged window.
    pub end: SimTime,
    /// Fraction of (otherwise reporting) routers silent during it.
    pub silent_fraction: f64,
}

/// Scan for correlated gaps: minutes where at least `threshold` of the
/// routers that reported both before and after were simultaneously silent
/// for `min_len` or longer.
///
/// The scan works on a per-minute silence bitmap derived from the run
/// logs, so its cost is `O(routers × window-minutes)`.
pub fn correlated_gaps(
    data: &Datasets,
    window: Window,
    threshold: f64,
    min_len: SimDuration,
) -> Vec<CorrelatedGap> {
    let minutes = (window.duration().as_micros() / MICROS_PER_MIN) as usize;
    if minutes == 0 || data.heartbeats.is_empty() {
        return Vec::new();
    }
    // For each minute, count routers whose log has coverage there among
    // routers active in the window at all.
    let mut silent = vec![0u32; minutes];
    let mut active_routers = 0u32;
    for log in data.heartbeats.values() {
        let Some((first, last)) = log.extent() else { continue };
        if first >= window.end || last <= window.start {
            continue;
        }
        active_routers += 1;
        // Mark silent minutes: those not covered by any run, clipped to
        // the router's own extent (a router not yet deployed is not
        // "silent").
        let lo = first.max(window.start);
        let hi = last.min(window.end);
        let mut idx = ((lo.as_micros() - window.start.as_micros()) / MICROS_PER_MIN) as usize;
        let end_idx = ((hi.as_micros() - window.start.as_micros()) / MICROS_PER_MIN) as usize;
        let mut runs = log.runs().iter().peekable();
        while idx < end_idx.min(minutes) {
            let t = window.start + SimDuration::from_micros(idx as u64 * MICROS_PER_MIN);
            // Advance runs past t.
            while let Some(run) = runs.peek() {
                if run.last < t {
                    runs.next();
                } else {
                    break;
                }
            }
            let covered = runs
                .peek()
                .is_some_and(|run| run.first <= t + SimDuration::from_mins(1) && run.last >= t);
            if !covered {
                silent[idx] += 1;
            }
            idx += 1;
        }
    }
    if active_routers == 0 {
        return Vec::new();
    }
    // Collect maximal runs of minutes above the threshold.
    let needed = (threshold * f64::from(active_routers)).ceil() as u32;
    let min_minutes = (min_len.as_mins() as usize).max(1);
    let mut out = Vec::new();
    let mut run_start: Option<usize> = None;
    for (idx, &count) in silent.iter().enumerate() {
        if count >= needed {
            run_start.get_or_insert(idx);
        } else if let Some(start_idx) = run_start.take() {
            if idx - start_idx >= min_minutes {
                out.push(make_gap(window, start_idx, idx, &silent, active_routers));
            }
        }
    }
    if let Some(start_idx) = run_start {
        if minutes - start_idx >= min_minutes {
            out.push(make_gap(window, start_idx, minutes, &silent, active_routers));
        }
    }
    out
}

/// How well a set of flagged gaps matches ground-truth outage windows.
///
/// Counterpart to the fault-injection subsystem: a study run under a
/// `faultlab` scenario knows exactly when the collector was down, so the
/// detector stops being a heuristic and becomes a measurable instrument.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionScore {
    /// Ground-truth windows matched by at least one flagged gap.
    pub detected: usize,
    /// Flagged gaps matching no ground-truth window.
    pub false_positives: usize,
    /// Ground-truth windows no flagged gap matched.
    pub missed: usize,
    /// Fraction of flagged gaps that are real (1.0 when nothing flagged).
    pub precision: f64,
    /// Fraction of ground-truth windows detected (1.0 when none exist).
    pub recall: f64,
}

/// Score `flagged` against ground-truth outage `truth` windows. A flag and
/// a truth window match when they overlap after widening both ends by
/// `slack` (the per-minute bitmap and the run-length tolerance blur edges
/// by a few minutes; slack keeps the score about detection, not rounding).
pub fn score_against_truth(
    flagged: &[CorrelatedGap],
    truth: &[Window],
    slack: SimDuration,
) -> DetectionScore {
    let matches =
        |g: &CorrelatedGap, w: &Window| g.start <= w.end + slack && w.start <= g.end + slack;
    let true_flags = flagged.iter().filter(|g| truth.iter().any(|w| matches(g, w))).count();
    let detected = truth.iter().filter(|w| flagged.iter().any(|g| matches(g, w))).count();
    DetectionScore {
        detected,
        false_positives: flagged.len() - true_flags,
        missed: truth.len() - detected,
        precision: if flagged.is_empty() {
            1.0
        } else {
            true_flags as f64 / flagged.len() as f64
        },
        recall: if truth.is_empty() { 1.0 } else { detected as f64 / truth.len() as f64 },
    }
}

fn make_gap(
    window: Window,
    start_idx: usize,
    end_idx: usize,
    silent: &[u32],
    active: u32,
) -> CorrelatedGap {
    let peak = silent[start_idx..end_idx].iter().max().copied().unwrap_or(0);
    CorrelatedGap {
        start: window.start + SimDuration::from_micros(start_idx as u64 * MICROS_PER_MIN),
        end: window.start + SimDuration::from_micros(end_idx as u64 * MICROS_PER_MIN),
        silent_fraction: f64::from(peak) / f64::from(active),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collector::{Collector, RouterMeta};
    use firmware::records::{HeartbeatRecord, RouterId};
    use household::Country;

    fn m(mins: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_mins(mins)
    }

    /// Ten routers reporting continuously, with a collector outage at
    /// minutes 100..130 and one router individually down 300..340.
    fn synthetic() -> Datasets {
        let collector = Collector::new();
        collector.set_outages(vec![Window { start: m(100), end: m(130) }]);
        for router in 0..10u32 {
            collector.register(RouterMeta {
                router: RouterId(router),
                country: Country::UnitedStates,
                traffic_consent: false,
            });
        }
        for minute in 0..500u64 {
            for router in 0..10u32 {
                if router == 3 && (300..340).contains(&minute) {
                    continue; // a genuine single-home outage
                }
                collector
                    .ingest_heartbeat(HeartbeatRecord { router: RouterId(router), at: m(minute) });
            }
        }
        collector.snapshot()
    }

    #[test]
    fn collector_outage_flagged_individual_outage_not() {
        let data = synthetic();
        let window = Window { start: m(0), end: m(500) };
        let flagged = correlated_gaps(&data, window, 0.8, SimDuration::from_mins(10));
        assert_eq!(flagged.len(), 1, "exactly the collector outage: {flagged:?}");
        let gap = flagged[0];
        assert!(gap.start >= m(95) && gap.start <= m(105), "start {:?}", gap.start);
        assert!(gap.end >= m(125) && gap.end <= m(135), "end {:?}", gap.end);
        assert!(gap.silent_fraction >= 0.99);
    }

    #[test]
    fn clean_data_has_no_flags() {
        let collector = Collector::new();
        collector.register(RouterMeta {
            router: RouterId(0),
            country: Country::UnitedStates,
            traffic_consent: false,
        });
        for minute in 0..200u64 {
            collector.ingest_heartbeat(HeartbeatRecord { router: RouterId(0), at: m(minute) });
        }
        let data = collector.snapshot();
        let flagged = correlated_gaps(
            &data,
            Window { start: m(0), end: m(200) },
            0.8,
            SimDuration::from_mins(10),
        );
        assert!(flagged.is_empty(), "{flagged:?}");
    }

    /// The end-to-end ground-truth check: compile the `collector-flap`
    /// scenario from faultlab, let the collector drop heartbeat datagrams
    /// during the planned downtime exactly as the fault pipeline does, mix
    /// in genuine single-home outages, and score the detector. Precision
    /// and recall must both clear 0.9: every planned window flagged, the
    /// per-home outages not.
    #[test]
    fn detector_scores_against_faultlab_ground_truth() {
        let days = 20u64;
        let span = Window { start: m(0), end: m(days * 24 * 60) };
        let routers: Vec<RouterId> = (0..12u32).map(RouterId).collect();
        let plan = faultlab::FaultPlan::scenario(
            faultlab::FaultScenario::CollectorFlap,
            11,
            span,
            &routers,
        );
        assert!(plan.collector_downtime.len() >= 2, "scenario must inject outages");
        let collector = Collector::new();
        collector.set_downtime(plan.collector_downtime.clone());
        for &router in &routers {
            collector.register(RouterMeta {
                router,
                country: Country::UnitedStates,
                traffic_consent: false,
            });
        }
        for minute in 0..days * 24 * 60 {
            for &router in &routers {
                // Router 3 takes a genuine 4-hour nap each day; router 7
                // has one long multi-day outage. Neither is correlated.
                let daily = minute % (24 * 60);
                if router == RouterId(3) && (120..360).contains(&daily) {
                    continue;
                }
                if router == RouterId(7) && (10_000..14_000).contains(&minute) {
                    continue;
                }
                collector.ingest_heartbeat(HeartbeatRecord { router, at: m(minute) });
            }
        }
        assert!(collector.dropped_in_downtime() > 0, "downtime must drop datagrams");
        let data = collector.snapshot();
        let flagged = correlated_gaps(&data, span, 0.8, SimDuration::from_mins(15));
        let score = score_against_truth(
            &flagged,
            &plan.collector_downtime,
            SimDuration::from_mins(5),
        );
        assert!(
            score.precision >= 0.9,
            "precision {:.2} ({} false positives): {flagged:?}",
            score.precision,
            score.false_positives
        );
        assert!(
            score.recall >= 0.9,
            "recall {:.2} ({} of {} missed)",
            score.recall,
            score.missed,
            plan.collector_downtime.len()
        );
        // The genuine per-home outages must not be among the flags.
        for gap in &flagged {
            assert!(
                plan.collector_downtime.iter().any(|w| gap.start <= w.end && w.start <= gap.end),
                "flagged a window outside every planned outage: {gap:?}"
            );
        }
    }

    #[test]
    fn score_handles_empty_sides() {
        let none: [CorrelatedGap; 0] = [];
        let s = score_against_truth(&none, &[], SimDuration::from_mins(5));
        assert_eq!((s.precision, s.recall), (1.0, 1.0));
        let truth = [Window { start: m(10), end: m(40) }];
        let s = score_against_truth(&none, &truth, SimDuration::from_mins(5));
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.missed, 1);
        assert_eq!(s.precision, 1.0, "nothing flagged, nothing wrong");
        let flag = [CorrelatedGap { start: m(100), end: m(130), silent_fraction: 1.0 }];
        let s = score_against_truth(&flag, &truth, SimDuration::from_mins(5));
        assert_eq!((s.detected, s.false_positives), (0, 1));
        assert_eq!(s.precision, 0.0);
    }

    #[test]
    fn empty_data_is_fine() {
        let data = Datasets::default();
        assert!(correlated_gaps(
            &data,
            Window { start: m(0), end: m(10) },
            0.5,
            SimDuration::from_mins(5)
        )
        .is_empty());
    }
}
