//! Stream-mode incremental report state.
//!
//! Batch mode computes every figure from the final snapshot in one pass
//! ([`StudyReport::compute`]). Stream mode instead folds each window's
//! sealed-behind-the-watermark delta into per-figure partial state as it
//! arrives ([`IncrementalReport::update`]) and materializes the report
//! from that state at any window boundary ([`IncrementalReport::finalize`])
//! — without ever re-scanning the nine high-volume columnar tables that
//! dominate batch-compute cost.
//!
//! # Why the result is *identical* to batch, not merely close
//!
//! Every partial state kept here is either a set, an integer sum, or a
//! sample multiset feeding an aggregate that sorts its inputs
//! ([`crate::stats::Cdf`], medians). Sets and integer sums are fold-order
//! independent outright; sample vectors only ever feed order-insensitive
//! aggregates, and window deltas arrive in arrival order so even
//! order-sensitive consumers would see the batch order. Finalization then
//! funnels each state through the *same* `*_from_*` constructor the batch
//! path uses (`fig13_from_scans`, `table5_from_parts`, …), so the two
//! paths cannot diverge in the aggregation step either. The cheap
//! artifacts that derive from the run-length-encoded heartbeat logs and
//! the small row tables (availability, Figs 8/9, Tables 1/3, and the row
//! halves of Table 2) are recomputed from the accumulated snapshot at
//! finalize — their cost is negligible and recomputing sidesteps the one
//! genuinely order-sensitive aggregate in the report (the population
//! standard deviation of Figs 8/9, whose squared-residual sum is a float
//! fold in table order).
//!
//! The differential harness in `tests/streaming.rs` and the property
//! tests in `tests/incremental_properties.rs` hold this module to
//! byte-identical output against batch at every window split.

use crate::availability;
use crate::highlights;
use crate::index::DataIndex;
use crate::infrastructure;
use crate::latency;
use crate::natchar;
use crate::report::{ReportWindows, StudyReport};
use crate::stats::Cdf;
use crate::usage;
use collector::Datasets;
use firmware::anonymize::AnonMac;
use firmware::records::{Medium, RouterId};
use household::VendorClass;
use simnet::time::SimTime;
use simnet::wifi::Band;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Mergeable per-figure partial state for a streaming study.
///
/// Feed every window's drained delta to [`IncrementalReport::update`]
/// *before* absorbing it into the accumulated snapshot, then call
/// [`IncrementalReport::finalize`] with the accumulator whenever a
/// report is due. Updates scan only the delta; finalize touches only
/// the heartbeat logs, the small row tables, and a handful of
/// single-router columnar slices.
#[derive(Debug, Default)]
pub struct IncrementalReport {
    windows: Option<ReportWindows>,

    // §5 infrastructure (associations / wifi scans / mac sightings).
    fig7_devices: HashMap<RouterId, HashSet<AnonMac>>,
    fig10_homes: HashSet<RouterId>,
    fig10_band_devices: HashMap<(RouterId, Band), HashSet<AnonMac>>,
    fig11_scanned: HashSet<RouterId>,
    fig11_neighbors: HashMap<RouterId, HashSet<u64>>,
    fig12_seen: HashSet<(RouterId, u32, u32)>,
    fig12_counts: HashMap<VendorClass, usize>,
    /// Presence count per (home, device), plus the maximal `(at, medium)`
    /// stamp seen — equal to the batch path's "last medium in table
    /// order" because the association table is sorted by that very key.
    presence: HashMap<(RouterId, u32, u32), (usize, (SimTime, Medium))>,

    // §6 usage (wifi scans / packet stats / flows).
    per_scan: BTreeMap<(RouterId, SimTime), u32>,
    peaks: HashMap<RouterId, (Vec<f64>, Vec<f64>)>,
    device_bytes: HashMap<(RouterId, AnonMac), u64>,
    domain_bytes: BTreeMap<RouterId, BTreeMap<String, (u64, u64)>>,
    device_domains: HashMap<(RouterId, AnonMac), HashMap<String, u64>>,

    // Deployment tables and the companion latency set.
    wifi_routers: HashSet<RouterId>,
    traffic_routers: HashSet<RouterId>,
    latency_samples: HashMap<RouterId, (Vec<f64>, Vec<f64>)>,

    // NAT characterization (nat probes / punch trials; unwindowed).
    nat_tally: BTreeMap<RouterId, ([usize; 5], usize, usize)>,
    nat_ports: BTreeMap<RouterId, BTreeSet<u16>>,
    punch_cells: BTreeMap<(u8, u8), (usize, usize)>,
    nat_probes_total: usize,
    punch_trials_total: usize,
}

impl IncrementalReport {
    /// Fresh state for a study reporting over `windows`. The windows are
    /// fixed up front: every delta record is bucketed against them at
    /// update time, exactly as the batch figures filter at compute time.
    pub fn new(windows: ReportWindows) -> IncrementalReport {
        IncrementalReport { windows: Some(windows), ..IncrementalReport::default() }
    }

    /// The windows this report accumulates over.
    pub fn windows(&self) -> ReportWindows {
        self.windows.expect("IncrementalReport::new sets the windows")
    }

    /// Fold one window's drained delta into the partial state. Cost is
    /// one pass over the delta's records; the accumulated history is
    /// never touched. Call this before absorbing the delta into the
    /// accumulated snapshot (absorption consumes it).
    pub fn update(&mut self, delta: &Datasets) {
        let w = self.windows();

        for assoc in &delta.associations {
            if !w.devices.contains(assoc.at) {
                continue;
            }
            self.fig7_devices.entry(assoc.router).or_default().insert(assoc.device);
            self.fig10_homes.insert(assoc.router);
            if let Some(band) = assoc.medium.band() {
                self.fig10_band_devices
                    .entry((assoc.router, band))
                    .or_default()
                    .insert(assoc.device);
            }
            let stamp = (assoc.at, assoc.medium);
            let entry = self
                .presence
                .entry((assoc.router, assoc.device.oui, assoc.device.suffix_hash))
                .or_insert((0, stamp));
            entry.0 += 1;
            if stamp >= entry.1 {
                entry.1 = stamp;
            }
        }

        for scan in &delta.wifi {
            if !w.wifi.contains(scan.at) {
                continue;
            }
            self.wifi_routers.insert(scan.router);
            *self.per_scan.entry((scan.router, scan.at)).or_default() +=
                u32::from(scan.associated_stations);
            if scan.band == Band::Ghz24 {
                self.fig11_scanned.insert(scan.router);
                for ap in &scan.aps {
                    self.fig11_neighbors.entry(scan.router).or_default().insert(ap.bssid_hash);
                }
            }
        }

        for stats in &delta.packet_stats {
            if w.traffic.contains(stats.at) {
                let entry = self.peaks.entry(stats.router).or_default();
                entry.0.push(stats.peak_down_bps() as f64);
                entry.1.push(stats.peak_up_bps() as f64);
            }
        }

        for flow in &delta.flows {
            if !w.traffic.contains(flow.ended) {
                continue;
            }
            self.traffic_routers.insert(flow.router);
            let bytes = flow.total_bytes();
            *self.device_bytes.entry((flow.router, flow.device)).or_default() += bytes;
            let domain = usage::domain_key(&flow.domain);
            let tally = self.domain_bytes.entry(flow.router).or_default();
            let entry = tally.entry(domain.clone()).or_default();
            entry.0 += bytes;
            entry.1 += 1;
            *self
                .device_domains
                .entry((flow.router, flow.device))
                .or_default()
                .entry(domain)
                .or_default() += bytes;
        }

        for sighting in &delta.macs {
            if sighting.bytes_total < 100 * 1024 {
                continue;
            }
            let key = (sighting.router, sighting.device.oui, sighting.device.suffix_hash);
            if !self.fig12_seen.insert(key) {
                continue;
            }
            if let Some(vendor) = VendorClass::from_oui(sighting.device.oui) {
                *self.fig12_counts.entry(vendor).or_default() += 1;
            }
        }

        for rec in &delta.latency {
            if w.heartbeats.contains(rec.at) {
                let entry = self.latency_samples.entry(rec.router).or_default();
                entry.0.push(rec.rtt_median.as_secs_f64() * 1e3);
                entry.1.push(rec.rtt_max.as_secs_f64() * 1e3);
            }
        }

        for probe in &delta.nat_probes {
            let entry = self.nat_tally.entry(probe.router).or_insert(([0; 5], 0, 0));
            entry.0[probe.nat_type.code() as usize] += 1;
            entry.1 += usize::from(probe.cgn_detected);
            entry.2 += 1;
            self.nat_ports.entry(probe.router).or_default().insert(probe.mapped_port);
            self.nat_probes_total += 1;
        }

        for trial in &delta.punch_trials {
            let cell = self
                .punch_cells
                .entry((trial.local_type.code(), trial.peer_type.code()))
                .or_insert((0, 0));
            cell.0 += 1;
            cell.1 += usize::from(trial.success);
            self.punch_trials_total += 1;
        }
    }

    /// Materialize the full report from the partial state plus the
    /// accumulated snapshot (needed for registration metadata, heartbeat
    /// logs, the small row tables, and the per-router capacity and
    /// packet-stats slices of the few Fig 14/16 exemplar homes).
    pub fn finalize(&self, acc: &Datasets) -> StudyReport {
        let w = self.windows();
        let idx = DataIndex::new(acc);

        // §4 availability: RLE heartbeat logs, cheap to refold entirely.
        let routers = availability::per_router(acc, w.heartbeats);
        let fig3 = availability::fig3(&routers);
        let fig4 = availability::fig4(&routers);
        let fig5 = availability::fig5(&routers);
        let fig6 = availability::fig6_archetypes_with(&idx, &routers);
        let table3 = highlights::table3(&routers);
        let coverage = availability::median_coverage_by_country(&routers);

        // §5 infrastructure from the partial sets (Figs 8/9 refold the
        // small census row table: their standard deviations are float
        // folds in table order, so recomputing is the exact-match path).
        let fig7 = infrastructure::fig7_from_sets(&self.fig7_devices);
        let fig8 = infrastructure::fig8_with(&idx, w.devices);
        let fig9 = infrastructure::fig9(acc, w.devices);
        let fig10 = infrastructure::fig10_from_sets(&self.fig10_homes, &self.fig10_band_devices);
        let fig11 = infrastructure::fig11_from_sets(&idx, &self.fig11_scanned, &self.fig11_neighbors);
        let fig12 = infrastructure::fig12_from_counts(&self.fig12_counts);
        let census_count = infrastructure::census_counts(acc, w.devices);
        let presence: HashMap<(RouterId, u32, u32), (usize, Medium)> = self
            .presence
            .iter()
            .map(|(&key, &(count, (_, medium)))| (key, (count, medium)))
            .collect();
        let table5 = infrastructure::table5_from_parts(&idx, w.devices, &census_count, &presence);
        let table4 = highlights::table4_from(&table5, &fig10, &fig11);

        // §6 usage from the partial maps.
        let fig13 = usage::fig13_from_scans(&idx, &self.per_scan);
        let mut fig15 = Vec::new();
        for meta in idx.routers() {
            let router = meta.router;
            let Some((down, up)) = self.peaks.get(&router) else { continue };
            if down.len() < 10 {
                continue;
            }
            let Some((down_cap, up_cap)) = usage::capacity_of(&idx, w.traffic, router) else {
                continue;
            };
            if down_cap <= 0.0 || up_cap <= 0.0 {
                continue;
            }
            let p95_down = Cdf::from_samples(down.iter().copied()).quantile(0.95);
            let p95_up = Cdf::from_samples(up.iter().copied()).quantile(0.95);
            fig15.push(usage::Fig15Point {
                router,
                down_capacity_bps: down_cap,
                down_utilization: p95_down / down_cap,
                up_capacity_bps: up_cap,
                up_utilization: p95_up / up_cap,
            });
        }
        let fig14_home = fig15
            .iter()
            .filter(|p| p.up_utilization <= 1.0)
            .min_by(|a, b| {
                (a.down_utilization - 0.5)
                    .abs()
                    .partial_cmp(&(b.down_utilization - 0.5).abs())
                    .expect("finite")
            })
            .map(|p| p.router);
        let fig14 = fig14_home.and_then(|r| usage::fig14_with(&idx, w.traffic, r));
        let fig16 = usage::fig16_from(&idx, w.traffic, &fig15);
        let fig17 = usage::fig17_from_device_bytes(&self.device_bytes);
        let mut per_home = Vec::new();
        for meta in idx.routers() {
            if let Some(tally) = self.domain_bytes.get(&meta.router) {
                if !tally.is_empty() {
                    per_home.push((meta.router, tally.clone()));
                }
            }
        }
        let tallies = usage::DomainTallies { per_home };
        let fig18 = usage::fig18_from(&tallies);
        let fig19 = usage::fig19_from(&tallies, 15);
        let fig20 = usage::fig20_from_device_domains(&self.device_domains, 100 * 1024);
        let table6 = highlights::table6_from(&fig13, &fig15, &fig17, &fig19);

        // Deployment tables: row-table sets refolded from the
        // accumulator, columnar sets from the partial state.
        let table1 = highlights::table1(acc);
        let heartbeat_routers: HashSet<RouterId> = acc
            .heartbeats
            .iter()
            .filter(|(_, log)| {
                log.extent()
                    .is_some_and(|(first, _)| w.heartbeats.contains(first) || first < w.heartbeats.end)
            })
            .map(|(r, _)| *r)
            .collect();
        let capacity_routers: HashSet<RouterId> =
            acc.capacity.iter().filter(|r| w.capacity.contains(r.at)).map(|r| r.router).collect();
        let uptime_routers: HashSet<RouterId> =
            acc.uptime.iter().filter(|r| w.uptime.contains(r.at)).map(|r| r.router).collect();
        let devices_routers: HashSet<RouterId> =
            acc.devices.iter().filter(|r| w.devices.contains(r.at)).map(|r| r.router).collect();
        let table2 = vec![
            highlights::table2_row(acc, "Heartbeats", w.heartbeats, &heartbeat_routers),
            highlights::table2_row(acc, "Capacity", w.capacity, &capacity_routers),
            highlights::table2_row(acc, "Uptime", w.uptime, &uptime_routers),
            highlights::table2_row(acc, "Devices", w.devices, &devices_routers),
            highlights::table2_row(acc, "WiFi", w.wifi, &self.wifi_routers),
            highlights::table2_row(acc, "Traffic", w.traffic, &self.traffic_routers),
        ];
        let latency = latency::by_region_from(acc, &self.latency_samples);
        let natchar = (self.nat_probes_total > 0).then(|| {
            natchar::characterize_from_parts(
                acc,
                &self.nat_tally,
                &self.punch_cells,
                self.nat_probes_total,
                self.punch_trials_total,
                &self.nat_ports,
            )
        });

        StudyReport {
            windows: w,
            routers,
            fig3,
            fig4,
            fig5,
            fig6,
            fig7,
            fig8,
            fig9,
            fig10,
            fig11,
            fig12,
            fig13,
            fig14,
            fig15,
            fig16,
            fig17,
            fig18,
            fig19,
            fig20,
            table1,
            table2,
            table3,
            table4,
            table5,
            table6,
            coverage,
            latency,
            natchar,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collector::windows::Window;
    use collector::{Collector, RouterMeta};
    use firmware::anonymize::ReportedDomain;
    use firmware::latency::LatencyRecord;
    use firmware::records::{
        ApSighting, AssociationRecord, CapacityRecord, DeviceCensusRecord, FlowRecord,
        HeartbeatRecord, MacSightingRecord, NatProbeRecord, NatType, PacketStatsRecord,
        PunchTrialRecord, Record, UptimeRecord, WifiScanRecord,
    };
    use household::Country;
    use simnet::dns::DomainName;
    use simnet::packet::IpProtocol;
    use simnet::time::SimDuration;

    fn t(mins: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_mins(mins)
    }

    fn mac(n: u32) -> AnonMac {
        AnonMac { oui: household::VendorClass::Apple.oui(), suffix_hash: n }
    }

    /// A little of every record type for `router`, timestamped inside
    /// `[lo, hi)` minutes — enough signal that most figures are non-empty.
    fn records(router: u32, lo: u64, hi: u64) -> Vec<Record> {
        let r = RouterId(router);
        let mut out = Vec::new();
        for m in lo..hi {
            out.push(Record::Heartbeat(HeartbeatRecord { router: r, at: t(m) }));
            if m % 30 == 0 {
                out.push(Record::PacketStats(PacketStatsRecord {
                    router: r,
                    at: t(m),
                    bytes_down: 1_000_000 + m * 1_000,
                    bytes_up: 50_000,
                    pkts_down: 700,
                    pkts_up: 100,
                    peak_down_1s: 250_000 + (m % 7) * 10_000,
                    peak_up_1s: 20_000 + (m % 3) * 1_000,
                }));
                out.push(Record::Flow(FlowRecord {
                    router: r,
                    started: t(m.saturating_sub(1)),
                    ended: t(m),
                    device: mac(router * 10 + (m % 2) as u32),
                    remote_ip_hash: m,
                    remote_port: 443,
                    proto: IpProtocol::Tcp,
                    domain: if m % 60 == 0 {
                        ReportedDomain::Clear(DomainName::new("netflix.com").unwrap())
                    } else {
                        ReportedDomain::Obfuscated(m)
                    },
                    bytes_down: 200_000 + m,
                    bytes_up: 9_000,
                }));
            }
            if m % 60 == 0 {
                let hour = m / 60;
                out.push(Record::Association(AssociationRecord {
                    router: r,
                    at: t(m),
                    device: mac(router * 10 + (hour % 3) as u32),
                    medium: if hour % 2 == 0 { Medium::Wireless24 } else { Medium::Wired },
                }));
                out.push(Record::DeviceCensus(DeviceCensusRecord {
                    router: r,
                    at: t(m),
                    wired: 1,
                    wireless_24: (hour % 3) as u8,
                    wireless_5: 0,
                }));
                out.push(Record::WifiScan(WifiScanRecord {
                    router: r,
                    at: t(m),
                    band: Band::Ghz24,
                    aps: vec![ApSighting {
                        bssid_hash: 100 + (hour % 4),
                        channel_number: 6,
                        signal_dbm: -60,
                    }],
                    associated_stations: 1 + (hour % 2) as u8,
                }));
                out.push(Record::Uptime(UptimeRecord {
                    router: r,
                    at: t(m),
                    uptime: SimDuration::from_mins(m),
                }));
                out.push(Record::Latency(LatencyRecord {
                    router: r,
                    at: t(m),
                    rtt_min: SimDuration::from_millis(20),
                    rtt_median: SimDuration::from_millis(40 + (hour % 5)),
                    rtt_max: SimDuration::from_millis(200),
                    lost: 0,
                }));
            }
            if m % 360 == 0 {
                out.push(Record::Capacity(CapacityRecord {
                    router: r,
                    at: t(m),
                    down_bps: 10_000_000,
                    up_bps: 1_000_000,
                    shaping_detected: false,
                }));
                out.push(Record::MacSighting(MacSightingRecord {
                    router: r,
                    first_seen: t(m),
                    device: mac(router * 10 + (m / 360 % 2) as u32),
                    bytes_total: 500_000,
                }));
                out.push(Record::NatProbe(NatProbeRecord {
                    router: r,
                    at: t(m),
                    nat_type: NatType::PortRestricted,
                    mapped_ip_hash: 7,
                    mapped_port: 2_048 + (m / 360 % 2) as u16 * 600,
                    cgn_detected: router % 2 == 0,
                }));
                out.push(Record::PunchTrial(PunchTrialRecord {
                    router: r,
                    at: t(m),
                    peer: RouterId(router ^ 1),
                    local_type: NatType::PortRestricted,
                    peer_type: NatType::FullCone,
                    success: m % 720 == 0,
                }));
            }
        }
        out
    }

    fn register(c: &Collector) {
        for (router, country) in
            [(0u32, Country::UnitedStates), (1, Country::UnitedStates), (2, Country::India)]
        {
            c.register(RouterMeta { router: RouterId(router), country, traffic_consent: true });
        }
    }

    #[test]
    fn windowed_updates_finalize_to_the_batch_report() {
        const TOTAL_MINS: u64 = 4 * 24 * 60;
        let span = Window { start: t(0), end: t(TOTAL_MINS) };
        let windows = ReportWindows {
            heartbeats: span,
            uptime: span,
            devices: span,
            wifi: span,
            capacity: span,
            traffic: span,
        };

        // Batch: everything through one collector.
        let batch = Collector::new();
        register(&batch);
        for router in 0..3u32 {
            batch.ingest_batch(records(router, 0, TOTAL_MINS));
        }
        let data = batch.into_datasets();
        let expected = StudyReport::compute(&data, windows);

        // Stream: the same records split at three uneven window
        // boundaries, each window folded through its own delta snapshot.
        let mut inc = IncrementalReport::new(windows);
        let cuts = [0, 1_000, 1_440, 3_000, TOTAL_MINS];
        for pair in cuts.windows(2) {
            let delta = Collector::new();
            register(&delta);
            for router in 0..3u32 {
                delta.ingest_batch(records(router, pair[0], pair[1]));
            }
            inc.update(&delta.into_datasets());
        }
        let streamed = inc.finalize(&data);

        assert_eq!(expected.fig15.len(), streamed.fig15.len());
        assert_eq!(expected.fig18.len(), streamed.fig18.len());
        assert_eq!(expected.table2[5].routers, streamed.table2[5].routers);
        assert_eq!(expected.natchar, streamed.natchar);
        assert_eq!(expected.render(&data), streamed.render(&data));
    }
}
