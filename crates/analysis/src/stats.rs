//! Small statistics toolkit: empirical CDFs, percentiles, and moments —
//! the machinery every figure in the paper is built from.

use serde::Serialize;

/// An empirical cumulative distribution over `f64` samples.
#[derive(Debug, Clone, Serialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from samples; non-finite values are dropped.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Cdf {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite after filter"));
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples survived.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The underlying sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// The `q`-quantile for `q` in `[0, 1]`, by linear interpolation.
    /// Panics on an empty CDF.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        let q = q.clamp(0.0, 1.0);
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let pos = q * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// The median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Fraction of samples `<= x` (the CDF value at `x`).
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.partition_point(|&v| v <= x) as f64 / self.sorted.len() as f64
    }

    /// Evaluate the CDF at `n` evenly spaced points across the sample
    /// range, as `(x, F(x))` pairs — the plotted curve.
    pub fn curve(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        (0..n)
            .map(|i| {
                let x = if n == 1 {
                    hi
                } else {
                    lo + (hi - lo) * i as f64 / (n - 1) as f64
                };
                (x, self.fraction_at_or_below(x))
            })
            .collect()
    }
}

/// Arithmetic mean; zero for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; zero for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Median of a slice (does not require sorted input); zero when empty.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    Cdf::from_samples(xs.iter().copied()).median()
}

/// A mean with its standard deviation, as the error-bar figures report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MeanStd {
    /// The mean.
    pub mean: f64,
    /// The standard deviation.
    pub std: f64,
}

impl MeanStd {
    /// Compute from samples.
    pub fn of(xs: &[f64]) -> MeanStd {
        MeanStd { mean: mean(xs), std: std_dev(xs) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_interpolate() {
        let cdf = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(1.0), 4.0);
        assert_eq!(cdf.median(), 2.5);
        assert!((cdf.quantile(0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn single_sample() {
        let cdf = Cdf::from_samples([7.0]);
        assert_eq!(cdf.median(), 7.0);
        assert_eq!(cdf.quantile(0.95), 7.0);
    }

    #[test]
    fn fraction_at_or_below() {
        let cdf = Cdf::from_samples([1.0, 2.0, 2.0, 5.0]);
        assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
        assert_eq!(cdf.fraction_at_or_below(2.0), 0.75);
        assert_eq!(cdf.fraction_at_or_below(10.0), 1.0);
    }

    #[test]
    fn non_finite_samples_dropped() {
        let cdf = Cdf::from_samples([1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn curve_is_monotone() {
        let cdf = Cdf::from_samples((0..100).map(|i| (i * i) as f64));
        let curve = cdf.curve(20);
        assert_eq!(curve.len(), 20);
        for pair in curve.windows(2) {
            assert!(pair[1].1 >= pair[0].1);
            assert!(pair[1].0 >= pair[0].0);
        }
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(std_dev(&xs), 2.0);
        assert_eq!(median(&xs), 4.5);
        let ms = MeanStd::of(&xs);
        assert_eq!((ms.mean, ms.std), (5.0, 2.0));
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert!(Cdf::from_samples(std::iter::empty()).is_empty());
    }
}
