//! Latency analysis over the platform's companion RTT data set: per-region
//! baseline RTTs and the bufferbloat signature (how far loaded RTTs stretch
//! above the idle baseline). Not a figure in the IMC'13 paper — it belongs
//! to the platform's companion performance study — but it closes the loop
//! on the §6.2 bufferbloat discussion with direct evidence.

use crate::stats::{median, Cdf};
use collector::windows::Window;
use collector::Datasets;
use firmware::records::RouterId;
use household::Region;
use std::collections::HashMap;

/// Per-region latency summary.
#[derive(Debug, Clone, Copy)]
pub struct RegionLatency {
    /// The region.
    pub region: Region,
    /// Median of per-home median RTTs, in milliseconds.
    pub median_rtt_ms: f64,
    /// Median of per-home *maximum* RTTs, in milliseconds — the bufferbloat
    /// signal (pings queued behind bulk uploads).
    pub median_peak_rtt_ms: f64,
    /// Homes contributing.
    pub homes: usize,
}

/// Summarize latency per region over `window`.
pub fn by_region(data: &Datasets, window: Window) -> Vec<RegionLatency> {
    let mut per_home: HashMap<RouterId, (Vec<f64>, Vec<f64>)> = HashMap::new();
    for rec in &data.latency {
        if window.contains(rec.at) {
            let entry = per_home.entry(rec.router).or_default();
            entry.0.push(rec.rtt_median.as_secs_f64() * 1e3);
            entry.1.push(rec.rtt_max.as_secs_f64() * 1e3);
        }
    }
    by_region_from(data, &per_home)
}

/// [`by_region`] from already-collected per-home RTT sample vectors
/// (shared by the batch pass above and the stream-mode accumulator).
/// Every aggregate below is a median, which sorts its inputs, so the
/// result depends only on the per-home sample multisets.
pub(crate) fn by_region_from(
    data: &Datasets,
    per_home: &HashMap<RouterId, (Vec<f64>, Vec<f64>)>,
) -> Vec<RegionLatency> {
    let mut out = Vec::new();
    for region in [Region::Developed, Region::Developing] {
        let mut medians = Vec::new();
        let mut peaks = Vec::new();
        for (router, (med, max)) in per_home {
            if data.meta(*router).map(|m| m.country.region()) == Some(region) {
                medians.push(median(med));
                peaks.push(median(max));
            }
        }
        out.push(RegionLatency {
            region,
            median_rtt_ms: median(&medians),
            median_peak_rtt_ms: median(&peaks),
            homes: medians.len(),
        });
    }
    out
}

/// The bufferbloat stretch for one home: ratio of its p95 max-RTT to its
/// median RTT. Values well above 1 indicate pings regularly queueing
/// behind bulk traffic.
pub fn bloat_stretch(data: &Datasets, window: Window, router: RouterId) -> Option<f64> {
    let medians: Vec<f64> = data
        .latency
        .iter()
        .filter(|r| r.router == router && window.contains(r.at))
        .map(|r| r.rtt_median.as_secs_f64())
        .collect();
    let maxes: Vec<f64> = data
        .latency
        .iter()
        .filter(|r| r.router == router && window.contains(r.at))
        .map(|r| r.rtt_max.as_secs_f64())
        .collect();
    if medians.len() < 10 {
        return None;
    }
    let base = median(&medians);
    let p95_max = Cdf::from_samples(maxes).quantile(0.95);
    (base > 0.0).then(|| p95_max / base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use collector::{Collector, RouterMeta};
    use firmware::latency::LatencyRecord;
    use firmware::records::Record;
    use household::Country;
    use simnet::time::{SimDuration, SimTime};

    fn t(h: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_hours(h)
    }

    fn rec(router: u32, at: SimTime, med_ms: u64, max_ms: u64) -> Record {
        Record::Latency(LatencyRecord {
            router: RouterId(router),
            at,
            rtt_min: SimDuration::from_millis(med_ms / 2),
            rtt_median: SimDuration::from_millis(med_ms),
            rtt_max: SimDuration::from_millis(max_ms),
            lost: 0,
        })
    }

    #[test]
    fn region_split_and_bloat() {
        let collector = Collector::new();
        collector.register(RouterMeta {
            router: RouterId(0),
            country: Country::UnitedStates,
            traffic_consent: false,
        });
        collector.register(RouterMeta {
            router: RouterId(1),
            country: Country::India,
            traffic_consent: false,
        });
        for h in 0..48 {
            collector.ingest(rec(0, t(h), 45, if h % 6 == 0 { 900 } else { 50 }));
            collector.ingest(rec(1, t(h), 120, 150));
        }
        let data = collector.snapshot();
        let window = Window { start: t(0), end: t(48) };
        let regions = by_region(&data, window);
        let developed = regions.iter().find(|r| r.region == Region::Developed).unwrap();
        let developing = regions.iter().find(|r| r.region == Region::Developing).unwrap();
        assert!(developing.median_rtt_ms > developed.median_rtt_ms);
        assert_eq!(developed.homes, 1);
        // Home 0 shows a heavy bufferbloat stretch; home 1 does not.
        let s0 = bloat_stretch(&data, window, RouterId(0)).unwrap();
        let s1 = bloat_stretch(&data, window, RouterId(1)).unwrap();
        assert!(s0 > 10.0, "stretch {s0}");
        assert!(s1 < 2.0, "stretch {s1}");
    }

    #[test]
    fn too_few_samples_yield_none() {
        let collector = Collector::new();
        collector.register(RouterMeta {
            router: RouterId(0),
            country: Country::UnitedStates,
            traffic_consent: false,
        });
        collector.ingest(rec(0, t(0), 40, 50));
        let data = collector.snapshot();
        assert!(bloat_stretch(&data, Window { start: t(0), end: t(10) }, RouterId(0)).is_none());
    }
}
