//! NAT-type characterization and CGN detection, computed from the
//! collected probe tables alone (never simulator ground truth).
//!
//! The firmware's STUN-style experiment leaves two tables in the
//! snapshot: `nat_probes` (one classification verdict per probe cycle)
//! and `punch_trials` (pairwise hole-punch outcomes). This module folds
//! them into the report's NAT section: the modal NAT type per home, the
//! deployment-wide type distribution, the CGN detection rate by country,
//! and the punch-success matrix by NAT-type pair. A scoring helper
//! compares the detection verdicts against a caller-supplied ground-truth
//! set, so tests (which do hold the simulator's CGN plan) can grade the
//! experiment as an instrument.

use collector::Datasets;
use firmware::records::{NatType, RouterId};
use household::Country;
use std::collections::{BTreeMap, BTreeSet};

/// One home's aggregated NAT probe verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HomeNat {
    /// The home.
    pub router: RouterId,
    /// The most frequent classification across the home's probe cycles
    /// (ties break toward the milder type).
    pub modal_type: NatType,
    /// Probe cycles that produced a verdict.
    pub probes: usize,
    /// Did a strict majority of probes flag carrier-grade NAT (mapped
    /// address differing from the WAN address)?
    pub cgn_detected: bool,
}

/// One (local, peer) cell of the hole-punch success matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PunchCell {
    /// The initiating side's NAT type (as probed at trial time).
    pub local: NatType,
    /// The peer side's NAT type.
    pub peer: NatType,
    /// Trials attempted for this pair.
    pub attempts: usize,
    /// Trials where both sides established a path.
    pub successes: usize,
}

/// Per-country CGN detection tally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountryDetection {
    /// The country.
    pub country: Country,
    /// Homes whose probes flagged CGN.
    pub flagged: usize,
    /// Homes that probed at all.
    pub probed: usize,
}

/// Granularity used to cluster observed mapped ports into blocks for the
/// port-allocation figure. 512 ports is the common carrier-grade block
/// size (and the order of magnitude every deployment guide quotes), so
/// ordinary-NAT homes scatter across many blocks while block-allocated
/// CGN homes collapse into one or two.
pub const PORT_BLOCK: u16 = 512;

/// One home's row in the port-allocation figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortAllocRow {
    /// The home.
    pub router: RouterId,
    /// Distinct mapped ports its probes observed.
    pub distinct_ports: usize,
    /// Distinct [`PORT_BLOCK`]-sized blocks those ports fall into.
    pub blocks: usize,
}

/// The port-allocation distribution over the probe lease timeline: how
/// each home's observed mapped ports cluster into fixed-size blocks.
/// Homes whose every observation lands in a single block are the
/// signature of a block-allocating CGN holding one lease; homes spread
/// over several blocks either re-leased (eviction) or sit behind an
/// ordinary per-connection NAT.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PortAllocation {
    /// Per home, sorted by router ID.
    pub per_home: Vec<PortAllocRow>,
    /// Homes whose observed ports all share one block.
    pub single_block_homes: usize,
    /// Homes spread over more than one block.
    pub multi_block_homes: usize,
}

/// The complete NAT section of the report.
#[derive(Debug, Clone, PartialEq)]
pub struct NatCharacterization {
    /// Per-home verdicts, sorted by router ID.
    pub homes: Vec<HomeNat>,
    /// Homes per modal NAT type, in [`NatType::ALL`] order (zero-count
    /// types omitted).
    pub type_counts: Vec<(NatType, usize)>,
    /// CGN detection by country, sorted by country code.
    pub detection_by_country: Vec<CountryDetection>,
    /// Punch-success matrix cells with at least one attempt, ordered by
    /// (local, peer) wire code.
    pub matrix: Vec<PunchCell>,
    /// Port-allocation distribution from the probe lease timeline.
    pub port_allocation: PortAllocation,
    /// Total probe verdicts across all homes.
    pub probes: usize,
    /// Total punch trials across all homes.
    pub trials: usize,
}

/// Fold the snapshot's probe tables into the NAT section.
pub fn characterize(data: &Datasets) -> NatCharacterization {
    // Per-home verdict tallies: counts by type code, plus CGN flags.
    let mut tally: BTreeMap<RouterId, ([usize; 5], usize, usize)> = BTreeMap::new();
    let mut ports: BTreeMap<RouterId, BTreeSet<u16>> = BTreeMap::new();
    for probe in data.nat_probes.iter() {
        let entry = tally.entry(probe.router).or_insert(([0; 5], 0, 0));
        entry.0[probe.nat_type.code() as usize] += 1;
        entry.1 += usize::from(probe.cgn_detected);
        entry.2 += 1;
        ports.entry(probe.router).or_default().insert(probe.mapped_port);
    }

    // Punch matrix: 5×5 cells keyed by (local, peer) wire code.
    let mut cells: BTreeMap<(u8, u8), (usize, usize)> = BTreeMap::new();
    let mut trials = 0usize;
    for trial in data.punch_trials.iter() {
        let cell = cells.entry((trial.local_type.code(), trial.peer_type.code())).or_insert((0, 0));
        cell.0 += 1;
        cell.1 += usize::from(trial.success);
        trials += 1;
    }

    characterize_from_parts(data, &tally, &cells, data.nat_probes.len(), trials, &ports)
}

/// [`characterize`] from already-folded probe tallies — the batch path
/// builds them in one pass above; the stream-mode accumulator maintains
/// the same maps across windows (all entries are pure sums and sets, so
/// fold order cannot matter) and finalizes here.
pub(crate) fn characterize_from_parts(
    data: &Datasets,
    tally: &BTreeMap<RouterId, ([usize; 5], usize, usize)>,
    cells: &BTreeMap<(u8, u8), (usize, usize)>,
    probes: usize,
    trials: usize,
    ports: &BTreeMap<RouterId, BTreeSet<u16>>,
) -> NatCharacterization {
    let homes: Vec<HomeNat> = tally
        .iter()
        .map(|(&router, &(by_type, flagged, probes))| {
            // ALL is ordered mild-to-strict; a strict `>` keeps the
            // earliest (mildest) type on ties.
            let mut modal_type = NatType::ALL[0];
            for t in NatType::ALL {
                if by_type[t.code() as usize] > by_type[modal_type.code() as usize] {
                    modal_type = t;
                }
            }
            HomeNat { router, modal_type, probes, cgn_detected: flagged * 2 > probes }
        })
        .collect();

    let mut type_counts: Vec<(NatType, usize)> = NatType::ALL
        .into_iter()
        .map(|t| (t, homes.iter().filter(|h| h.modal_type == t).count()))
        .collect();
    type_counts.retain(|&(_, n)| n > 0);

    let country_of: BTreeMap<RouterId, Country> =
        data.routers.iter().map(|m| (m.router, m.country)).collect();
    let mut by_country: BTreeMap<&'static str, CountryDetection> = BTreeMap::new();
    for h in &homes {
        let Some(&country) = country_of.get(&h.router) else { continue };
        let entry = by_country
            .entry(country.code())
            .or_insert(CountryDetection { country, flagged: 0, probed: 0 });
        entry.probed += 1;
        entry.flagged += usize::from(h.cgn_detected);
    }

    let matrix = cells
        .iter()
        .map(|(&(l, p), &(attempts, successes))| PunchCell {
            local: NatType::from_code(l).expect("codes come from NatType::code"),
            peer: NatType::from_code(p).expect("codes come from NatType::code"),
            attempts,
            successes,
        })
        .collect();

    NatCharacterization {
        probes,
        trials,
        homes,
        type_counts,
        detection_by_country: by_country.into_values().collect(),
        matrix,
        port_allocation: port_allocation_from(ports),
    }
}

/// Fold per-home observed-port sets into the port-allocation figure.
pub(crate) fn port_allocation_from(ports: &BTreeMap<RouterId, BTreeSet<u16>>) -> PortAllocation {
    let per_home: Vec<PortAllocRow> = ports
        .iter()
        .map(|(&router, observed)| {
            let blocks: BTreeSet<u16> = observed.iter().map(|p| p / PORT_BLOCK).collect();
            PortAllocRow { router, distinct_ports: observed.len(), blocks: blocks.len() }
        })
        .collect();
    PortAllocation {
        single_block_homes: per_home.iter().filter(|r| r.blocks == 1).count(),
        multi_block_homes: per_home.iter().filter(|r| r.blocks > 1).count(),
        per_home,
    }
}

/// How well the probe-side CGN verdicts match a ground-truth set of
/// fronted homes (same shape as [`crate::artifacts::DetectionScore`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionScore {
    /// Fronted homes whose probes flagged CGN.
    pub detected: usize,
    /// Unfronted homes whose probes flagged CGN anyway.
    pub false_positives: usize,
    /// Fronted homes whose probes missed the CGN.
    pub missed: usize,
    /// Fraction of flags that are real (1.0 when nothing flagged).
    pub precision: f64,
    /// Fraction of fronted homes flagged (1.0 when none are fronted).
    pub recall: f64,
}

/// Score the per-home CGN verdicts against the set of homes the
/// simulator actually fronted. Only probed homes are graded — an
/// unprobed home produced no verdict to score.
pub fn score_detection(homes: &[HomeNat], truth_fronted: &BTreeSet<RouterId>) -> DetectionScore {
    let mut detected = 0usize;
    let mut false_positives = 0usize;
    let mut missed = 0usize;
    for h in homes {
        match (truth_fronted.contains(&h.router), h.cgn_detected) {
            (true, true) => detected += 1,
            (true, false) => missed += 1,
            (false, true) => false_positives += 1,
            (false, false) => {}
        }
    }
    let flagged = detected + false_positives;
    DetectionScore {
        detected,
        false_positives,
        missed,
        precision: if flagged == 0 { 1.0 } else { detected as f64 / flagged as f64 },
        recall: if detected + missed == 0 {
            1.0
        } else {
            detected as f64 / (detected + missed) as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collector::{Collector, RouterMeta};
    use firmware::records::{NatProbeRecord, PunchTrialRecord, Record};
    use simnet::time::{SimDuration, SimTime};

    fn t(mins: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_mins(mins)
    }

    fn probe(router: u32, at: u64, nat_type: NatType, cgn: bool) -> Record {
        Record::NatProbe(NatProbeRecord {
            router: RouterId(router),
            at: t(at),
            nat_type,
            mapped_ip_hash: 7,
            mapped_port: 2_048,
            cgn_detected: cgn,
        })
    }

    fn snapshot() -> Datasets {
        let collector = Collector::new();
        for (router, country) in [(1u32, Country::UnitedStates), (2, Country::India)] {
            collector.register(RouterMeta {
                router: RouterId(router),
                country,
                traffic_consent: true,
            });
        }
        // Home 1: consistently port-restricted + CGN-flagged.
        for i in 0..3 {
            collector.ingest(probe(1, i * 720, NatType::PortRestricted, true));
        }
        // Home 2: full-cone, one stray CGN flag (minority — not detected).
        collector.ingest(probe(2, 10, NatType::FullCone, true));
        collector.ingest(probe(2, 730, NatType::FullCone, false));
        collector.ingest(probe(2, 1_450, NatType::FullCone, false));
        for (success, at) in [(true, 100u64), (false, 200)] {
            collector.ingest(Record::PunchTrial(PunchTrialRecord {
                router: RouterId(1),
                at: t(at),
                peer: RouterId(2),
                local_type: NatType::PortRestricted,
                peer_type: NatType::FullCone,
                success,
            }));
        }
        collector.snapshot()
    }

    #[test]
    fn characterize_folds_modal_types_and_matrix() {
        let data = snapshot();
        let nc = characterize(&data);
        assert_eq!(nc.probes, 6);
        assert_eq!(nc.trials, 2);
        assert_eq!(nc.homes.len(), 2);
        assert_eq!(nc.homes[0].modal_type, NatType::PortRestricted);
        assert!(nc.homes[0].cgn_detected);
        assert_eq!(nc.homes[1].modal_type, NatType::FullCone);
        assert!(!nc.homes[1].cgn_detected, "minority flag is not a detection");
        assert_eq!(
            nc.type_counts,
            vec![(NatType::FullCone, 1), (NatType::PortRestricted, 1)]
        );
        assert_eq!(nc.matrix.len(), 1);
        assert_eq!((nc.matrix[0].attempts, nc.matrix[0].successes), (2, 1));
        let india = nc.detection_by_country.iter().find(|c| c.country == Country::India);
        assert_eq!(india.map(|c| (c.flagged, c.probed)), Some((0, 1)));
    }

    #[test]
    fn port_allocation_clusters_lease_timeline_into_blocks() {
        let probe_port = |router: u32, at: u64, port: u16| {
            Record::NatProbe(NatProbeRecord {
                router: RouterId(router),
                at: t(at),
                nat_type: NatType::PortRestricted,
                mapped_ip_hash: 7,
                mapped_port: port,
                cgn_detected: true,
            })
        };
        let collector = Collector::new();
        // Home 1 holds one 512-port block for its whole timeline (three
        // observations, two distinct ports, same block).
        collector.ingest(probe_port(1, 0, 2_050));
        collector.ingest(probe_port(1, 720, 2_070));
        collector.ingest(probe_port(1, 1_440, 2_050));
        // Home 2 was re-leased: its ports span two distant blocks.
        collector.ingest(probe_port(2, 0, 2_050));
        collector.ingest(probe_port(2, 720, 9_000));
        let nc = characterize(&collector.snapshot());
        let pa = &nc.port_allocation;
        assert_eq!(pa.per_home.len(), 2);
        assert_eq!(pa.per_home[0], PortAllocRow {
            router: RouterId(1),
            distinct_ports: 2,
            blocks: 1,
        });
        assert_eq!(pa.per_home[1], PortAllocRow {
            router: RouterId(2),
            distinct_ports: 2,
            blocks: 2,
        });
        assert_eq!((pa.single_block_homes, pa.multi_block_homes), (1, 1));
    }

    #[test]
    fn modal_tie_breaks_toward_the_milder_type() {
        let collector = Collector::new();
        collector.ingest(probe(9, 0, NatType::Symmetric, false));
        collector.ingest(probe(9, 720, NatType::FullCone, false));
        let nc = characterize(&collector.snapshot());
        assert_eq!(nc.homes[0].modal_type, NatType::FullCone);
    }

    #[test]
    fn single_probe_home_gets_a_verdict_from_that_one_probe() {
        // One probe is a majority of itself: the modal type is the probed
        // type and a single CGN flag is a detection (1 flag * 2 > 1 probe).
        let collector = Collector::new();
        collector.ingest(probe(5, 0, NatType::Symmetric, true));
        let nc = characterize(&collector.snapshot());
        assert_eq!(nc.homes.len(), 1);
        assert_eq!(nc.homes[0].probes, 1);
        assert_eq!(nc.homes[0].modal_type, NatType::Symmetric);
        assert!(nc.homes[0].cgn_detected);
        assert_eq!(nc.type_counts, vec![(NatType::Symmetric, 1)]);
        // No punch trials and no registered router: empty matrix, no
        // country row, but the home still appears in the per-home table.
        assert!(nc.matrix.is_empty());
        assert!(nc.detection_by_country.is_empty());
    }

    #[test]
    fn three_way_modal_tie_still_picks_the_mildest_type_present() {
        // One probe each of Restricted / PortRestricted / Symmetric:
        // every count ties at 1, and the winner must be the mildest type
        // that actually appeared — not `ALL[0]` (Open, count 0).
        let collector = Collector::new();
        collector.ingest(probe(9, 0, NatType::Symmetric, false));
        collector.ingest(probe(9, 720, NatType::PortRestricted, false));
        collector.ingest(probe(9, 1_440, NatType::Restricted, false));
        let nc = characterize(&collector.snapshot());
        assert_eq!(nc.homes[0].modal_type, NatType::Restricted);
    }

    #[test]
    fn detection_score_with_empty_truth_set_grades_flags_as_false_positives() {
        // Probed homes but nothing actually fronted: every flag is a
        // false positive, precision collapses, recall stays 1.0 by
        // convention (no fronted home was missed).
        let homes = [
            HomeNat { router: RouterId(1), modal_type: NatType::Symmetric, probes: 2, cgn_detected: true },
            HomeNat { router: RouterId(2), modal_type: NatType::FullCone, probes: 2, cgn_detected: false },
        ];
        let s = score_detection(&homes, &BTreeSet::new());
        assert_eq!((s.detected, s.false_positives, s.missed), (0, 1, 0));
        assert_eq!((s.precision, s.recall), (0.0, 1.0));

        // Same homes with no flags at all: both ratios are the 1.0
        // convention — nothing flagged, nothing fronted.
        let quiet = [
            HomeNat { router: RouterId(3), modal_type: NatType::Open, probes: 1, cgn_detected: false },
        ];
        let clean = score_detection(&quiet, &BTreeSet::new());
        assert_eq!((clean.detected, clean.false_positives, clean.missed), (0, 0, 0));
        assert_eq!((clean.precision, clean.recall), (1.0, 1.0));
    }

    #[test]
    fn detection_score_counts_all_four_quadrants() {
        let homes = [
            HomeNat { router: RouterId(1), modal_type: NatType::Symmetric, probes: 3, cgn_detected: true },
            HomeNat { router: RouterId(2), modal_type: NatType::FullCone, probes: 3, cgn_detected: false },
            HomeNat { router: RouterId(3), modal_type: NatType::FullCone, probes: 3, cgn_detected: true },
            HomeNat { router: RouterId(4), modal_type: NatType::Restricted, probes: 3, cgn_detected: false },
        ];
        let truth: BTreeSet<RouterId> = [RouterId(1), RouterId(4)].into();
        let s = score_detection(&homes, &truth);
        assert_eq!((s.detected, s.false_positives, s.missed), (1, 1, 1));
        assert_eq!(s.precision, 0.5);
        assert_eq!(s.recall, 0.5);
        let empty = score_detection(&[], &BTreeSet::new());
        assert_eq!((empty.precision, empty.recall), (1.0, 1.0));
    }
}
