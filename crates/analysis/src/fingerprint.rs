//! Device fingerprinting from traffic patterns — the §7 future-work idea,
//! implemented as a library feature.
//!
//! The paper observes (Fig 20) that device types send distinctive
//! distributions of traffic to domains and suggests fingerprinting devices
//! from traffic alone. This module turns a device's per-domain volume mix
//! into a small feature vector over coarse service buckets and provides a
//! nearest-centroid classifier: train on devices whose identity is known
//! (in practice, from the OUI the firmware reports in clear), classify the
//! rest from traffic features alone.

use crate::usage::Fig20Device;
use household::{Category, DomainUniverse, VendorClass};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::OnceLock;

/// Number of feature buckets.
pub const FEATURES: usize = 8;

/// Feature vector: shares of device bytes per service bucket
/// (video, music, cloud storage, search+social, news+shopping, tech,
/// gaming+voip, anonymized/other).
pub type Features = [f64; FEATURES];

/// Bucket index for a whitelisted category.
fn bucket_of(category: Category) -> usize {
    match category {
        Category::Video => 0,
        Category::Music => 1,
        Category::CloudStorage => 2,
        Category::Search | Category::Social => 3,
        Category::News | Category::Shopping => 4,
        Category::Tech => 5,
        Category::Gaming | Category::Voip => 6,
        Category::Other => 7,
    }
}

/// The public whitelist's name→bucket map. The whitelist and its
/// categorization are public knowledge (the paper used the Alexa US
/// top-200), so the classifier is allowed to consult it.
fn whitelist_buckets() -> &'static HashMap<String, usize> {
    static MAP: OnceLock<HashMap<String, usize>> = OnceLock::new();
    MAP.get_or_init(|| {
        DomainUniverse::standard()
            .domains()
            .iter()
            .filter(|d| d.whitelisted)
            .map(|d| (d.name.as_str().to_string(), bucket_of(d.category)))
            .collect()
    })
}

/// Compute a device's feature vector from its domain mix. Whitelisted
/// names map to their (public) category bucket; anonymized tokens land in
/// the final bucket.
pub fn features(device: &Fig20Device) -> Features {
    let buckets = whitelist_buckets();
    let mut f = [0.0f64; FEATURES];
    for (domain, share) in &device.domains {
        let bucket = buckets.get(domain).copied().unwrap_or(FEATURES - 1);
        f[bucket] += share;
    }
    f
}

/// Euclidean distance between feature vectors.
pub fn distance(a: &Features, b: &Features) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f64>().sqrt()
}

/// A trained nearest-centroid model over any label type (vendor class,
/// device type, a survey label, …).
#[derive(Debug, Clone)]
pub struct CentroidModel<L> {
    centroids: Vec<(L, Features)>,
}

impl<L: Copy + Eq + Ord + Hash> CentroidModel<L> {
    /// Train from labeled devices. Classes with fewer than `min_examples`
    /// devices are dropped (too little signal).
    pub fn train(labeled: &[(L, Features)], min_examples: usize) -> CentroidModel<L> {
        let mut sums: HashMap<L, (Features, usize)> = HashMap::new();
        for (label, f) in labeled {
            let entry = sums.entry(*label).or_insert(([0.0; FEATURES], 0));
            for (acc, x) in entry.0.iter_mut().zip(f) {
                *acc += x;
            }
            entry.1 += 1;
        }
        let mut centroids: Vec<(L, Features)> = sums
            .into_iter()
            .filter(|(_, (_, n))| *n >= min_examples)
            .map(|(label, (mut sum, n))| {
                for x in &mut sum {
                    *x /= n as f64;
                }
                (label, sum)
            })
            .collect();
        centroids.sort_by_key(|(l, _)| *l);
        CentroidModel { centroids }
    }

    /// Number of classes the model can distinguish.
    pub fn class_count(&self) -> usize {
        self.centroids.len()
    }

    /// The classes, in stable order.
    pub fn classes(&self) -> impl Iterator<Item = L> + '_ {
        self.centroids.iter().map(|(l, _)| *l)
    }

    /// Classify a feature vector; `None` when the model is empty.
    pub fn classify(&self, f: &Features) -> Option<L> {
        self.centroids
            .iter()
            .min_by(|a, b| distance(&a.1, f).partial_cmp(&distance(&b.1, f)).expect("finite"))
            .map(|(l, _)| *l)
    }
}

/// Evaluation result of a train/test split.
#[derive(Debug, Clone)]
pub struct Evaluation<L> {
    /// Fraction of test devices classified correctly.
    pub accuracy: f64,
    /// Chance level (1 / classes).
    pub baseline: f64,
    /// Test-set size.
    pub tested: usize,
    /// Confusion counts: ((truth, predicted), n).
    pub confusion: Vec<((L, L), usize)>,
}

/// Split labeled feature vectors (even indices train, odd test), train,
/// classify, and score. Returns `None` when fewer than two classes survive
/// the `min_examples` filter.
pub fn evaluate_labeled<L: Copy + Eq + Ord + Hash>(
    labeled: &[(L, Features)],
    min_examples: usize,
) -> Option<Evaluation<L>> {
    let mut per_class: HashMap<L, Vec<&Features>> = HashMap::new();
    for (label, f) in labeled {
        per_class.entry(*label).or_default().push(f);
    }
    per_class.retain(|_, v| v.len() >= min_examples.max(2));
    if per_class.len() < 2 {
        return None;
    }
    let mut classes: Vec<&L> = per_class.keys().collect();
    classes.sort();
    let mut train: Vec<(L, Features)> = Vec::new();
    let mut test: Vec<(L, Features)> = Vec::new();
    for label in classes {
        let group = &per_class[label];
        for (i, f) in group.iter().enumerate() {
            if i % 2 == 0 {
                train.push((*label, **f));
            } else {
                test.push((*label, **f));
            }
        }
    }
    let model = CentroidModel::train(&train, 1);
    let mut correct = 0;
    let mut confusion: HashMap<(L, L), usize> = HashMap::new();
    for (truth, f) in &test {
        let predicted = model.classify(f).expect("model non-empty");
        if predicted == *truth {
            correct += 1;
        }
        *confusion.entry((*truth, predicted)).or_default() += 1;
    }
    let mut confusion: Vec<_> = confusion.into_iter().collect();
    confusion.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    Some(Evaluation {
        accuracy: correct as f64 / test.len().max(1) as f64,
        baseline: 1.0 / model.class_count() as f64,
        tested: test.len(),
        confusion,
    })
}

/// Vendor-labeled convenience wrapper: label each device by the OUI the
/// firmware reports in clear. Note vendor ≠ device type — Apple spans
/// phones, laptops, tablets, and TVs — so type-level labels (a survey, as
/// the paper used for Fig 20) separate much better.
pub fn evaluate(devices: &[Fig20Device], min_examples: usize) -> Option<Evaluation<VendorClass>> {
    let labeled: Vec<(VendorClass, Features)> = devices
        .iter()
        .filter_map(|d| d.vendor.map(|v| (v, features(d))))
        .collect();
    evaluate_labeled(&labeled, min_examples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmware::AnonMac;
    use firmware::records::RouterId;

    fn device(vendor: VendorClass, domains: &[(&str, f64)], salt: u32) -> Fig20Device {
        Fig20Device {
            router: RouterId(0),
            device: AnonMac { oui: vendor.oui(), suffix_hash: salt },
            vendor: Some(vendor),
            domains: domains.iter().map(|(d, s)| (d.to_string(), *s)).collect(),
            total_bytes: 1_000_000,
        }
    }

    fn streamers_and_desktops() -> Vec<Fig20Device> {
        let mut out = Vec::new();
        for i in 0..8 {
            let wobble = 0.02 * i as f64;
            out.push(device(
                VendorClass::InternetTv,
                &[("netflix.com", 0.7 - wobble), ("hulu.com", 0.2), ("pandora.com", 0.1 + wobble)],
                i,
            ));
            out.push(device(
                VendorClass::Intel,
                &[("google.com", 0.5 - wobble), ("dropbox.com", 0.3), ("reddit.com", 0.2 + wobble)],
                100 + i,
            ));
        }
        out
    }

    #[test]
    fn features_bucket_correctly() {
        let d = device(
            VendorClass::InternetTv,
            &[("netflix.com", 0.6), ("pandora.com", 0.2), ("dropbox.com", 0.1), ("anon-x", 0.1)],
            1,
        );
        let f = features(&d);
        assert!((f[0] - 0.6).abs() < 1e-12, "video bucket");
        assert!((f[1] - 0.2).abs() < 1e-12, "music bucket");
        assert!((f[2] - 0.1).abs() < 1e-12, "cloud bucket");
        assert!((f[FEATURES - 1] - 0.1).abs() < 1e-12, "anon bucket");
    }

    #[test]
    fn clean_classes_classify_perfectly() {
        let devices = streamers_and_desktops();
        let eval = evaluate(&devices, 2).expect("two classes");
        assert_eq!(eval.baseline, 0.5);
        assert!(eval.accuracy > 0.99, "accuracy {}", eval.accuracy);
        assert_eq!(eval.tested, 8);
    }

    #[test]
    fn model_train_and_classify_roundtrip() {
        let tv = |video: f64| {
            let mut f = [0.0; FEATURES];
            f[0] = video;
            f[7] = 1.0 - video;
            f
        };
        let pc = |web: f64| {
            let mut f = [0.0; FEATURES];
            f[3] = web;
            f[2] = 1.0 - web;
            f
        };
        let labeled: Vec<(VendorClass, Features)> = vec![
            (VendorClass::InternetTv, tv(0.9)),
            (VendorClass::InternetTv, tv(0.8)),
            (VendorClass::Intel, pc(0.6)),
            (VendorClass::Intel, pc(0.5)),
        ];
        let model = CentroidModel::train(&labeled, 2);
        assert_eq!(model.class_count(), 2);
        assert_eq!(model.classify(&tv(0.85)), Some(VendorClass::InternetTv));
        assert_eq!(model.classify(&pc(0.55)), Some(VendorClass::Intel));
    }

    #[test]
    fn too_few_classes_yields_none() {
        let one_class: Vec<Fig20Device> =
            streamers_and_desktops().into_iter().filter(|d| d.vendor == Some(VendorClass::Intel)).collect();
        assert!(evaluate(&one_class, 2).is_none());
    }

    #[test]
    fn min_examples_filters_sparse_classes() {
        let mut video = [0.0; FEATURES];
        video[0] = 1.0;
        let mut web = [0.0; FEATURES];
        web[3] = 1.0;
        let labeled = vec![
            (VendorClass::InternetTv, video),
            (VendorClass::Intel, web),
            (VendorClass::Intel, web),
        ];
        let model = CentroidModel::train(&labeled, 2);
        assert_eq!(model.class_count(), 1, "the singleton class is dropped");
    }

    #[test]
    fn distance_is_metric_like() {
        let mut a = [0.0; FEATURES];
        a[0] = 1.0;
        let mut b = [0.0; FEATURES];
        b[1] = 1.0;
        assert_eq!(distance(&a, &a), 0.0);
        assert!((distance(&a, &b) - 2.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(distance(&a, &b), distance(&b, &a));
    }
}
