//! Usage-cap management — the uCap tool the BISmark firmware shipped
//! (the paper's reference [24], "Communicating with caps: managing usage
//! caps in home networks") as a library feature.
//!
//! Given the Traffic data set, a plan cap, and a billing window, the
//! manager replays the flow timeline per home: cumulative usage, the
//! per-device breakdown users saw in the router's web UI, and the alert
//! instants at which usage crossed the plan's thresholds.

use collector::windows::Window;
use collector::Datasets;
use firmware::anonymize::AnonMac;
use firmware::records::RouterId;
use simnet::time::SimTime;
use std::collections::HashMap;

/// Default alert thresholds, as fractions of the cap.
pub const DEFAULT_THRESHOLDS: [f64; 3] = [0.5, 0.9, 1.0];

/// A billing plan.
#[derive(Debug, Clone, Copy)]
pub struct Plan {
    /// Cap over the billing window, in bytes.
    pub cap_bytes: u64,
    /// Alert thresholds as fractions of the cap, ascending.
    pub thresholds: [f64; 3],
}

impl Plan {
    /// A monthly plan prorated to an arbitrary window.
    pub fn monthly(cap_bytes_per_month: u64, window: Window) -> Plan {
        let days = window.duration().as_days_f64();
        Plan {
            cap_bytes: (cap_bytes_per_month as f64 * days / 30.0) as u64,
            thresholds: DEFAULT_THRESHOLDS,
        }
    }
}

/// One fired alert.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alert {
    /// The threshold crossed (fraction of cap).
    pub threshold: f64,
    /// When the crossing flow completed.
    pub at: SimTime,
    /// Cumulative bytes at that instant.
    pub usage_bytes: u64,
}

/// One home's cap accounting.
#[derive(Debug, Clone)]
pub struct HomeUsage {
    /// The home.
    pub router: RouterId,
    /// Total bytes in the window.
    pub total_bytes: u64,
    /// Per-device bytes, descending.
    pub per_device: Vec<(AnonMac, u64)>,
    /// Alerts fired, in threshold order.
    pub alerts: Vec<Alert>,
}

impl HomeUsage {
    /// Fraction of the cap consumed.
    pub fn cap_fraction(&self, plan: &Plan) -> f64 {
        self.total_bytes as f64 / plan.cap_bytes.max(1) as f64
    }

    /// Whether the plan was exhausted.
    pub fn exhausted(&self, plan: &Plan) -> bool {
        self.total_bytes >= plan.cap_bytes
    }
}

/// Replay the Traffic flows of every consenting home against `plan`.
/// Homes are returned in descending usage order.
pub fn account(data: &Datasets, window: Window, plan: &Plan) -> Vec<HomeUsage> {
    let mut totals: HashMap<RouterId, u64> = HashMap::new();
    let mut devices: HashMap<(RouterId, AnonMac), u64> = HashMap::new();
    let mut alerts: HashMap<RouterId, Vec<Alert>> = HashMap::new();
    // Flows in a snapshot are sorted by (router, ended), so a running total
    // per router replays the billing timeline faithfully.
    for flow in &data.flows {
        if !window.contains(flow.ended) {
            continue;
        }
        let total = totals.entry(flow.router).or_default();
        let before = *total;
        *total += flow.total_bytes();
        *devices.entry((flow.router, flow.device)).or_default() += flow.total_bytes();
        for threshold in plan.thresholds {
            let mark = (plan.cap_bytes as f64 * threshold) as u64;
            if before < mark && *total >= mark {
                alerts.entry(flow.router).or_default().push(Alert {
                    threshold,
                    at: flow.ended,
                    usage_bytes: *total,
                });
            }
        }
    }
    let mut out: Vec<HomeUsage> = totals
        .into_iter()
        .map(|(router, total_bytes)| {
            let mut per_device: Vec<(AnonMac, u64)> = devices
                .iter()
                .filter(|((r, _), _)| *r == router)
                .map(|((_, mac), bytes)| (*mac, *bytes))
                .collect();
            per_device.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            HomeUsage {
                router,
                total_bytes,
                per_device,
                alerts: alerts.remove(&router).unwrap_or_default(),
            }
        })
        .collect();
    out.sort_by(|a, b| b.total_bytes.cmp(&a.total_bytes).then(a.router.cmp(&b.router)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use collector::{Collector, RouterMeta};
    use firmware::anonymize::ReportedDomain;
    use firmware::records::{FlowRecord, Record};
    use household::Country;
    use simnet::packet::IpProtocol;
    use simnet::time::SimDuration;

    fn t(mins: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_mins(mins)
    }

    fn mac(n: u32) -> AnonMac {
        AnonMac { oui: 0x00_17_F2, suffix_hash: n }
    }

    fn flow(router: u32, device: AnonMac, bytes: u64, end_min: u64) -> Record {
        Record::Flow(FlowRecord {
            router: RouterId(router),
            started: t(end_min.saturating_sub(1)),
            ended: t(end_min),
            device,
            remote_ip_hash: 0,
            remote_port: 443,
            proto: IpProtocol::Tcp,
            domain: ReportedDomain::Obfuscated(1),
            bytes_down: bytes,
            bytes_up: 0,
        })
    }

    fn window() -> Window {
        Window { start: t(0), end: t(10_000) }
    }

    #[test]
    fn totals_and_device_breakdown() {
        let collector = Collector::new();
        collector.register(RouterMeta {
            router: RouterId(0),
            country: Country::UnitedStates,
            traffic_consent: true,
        });
        collector.ingest_batch(vec![
            flow(0, mac(1), 600, 10),
            flow(0, mac(2), 300, 20),
            flow(0, mac(1), 100, 30),
        ]);
        let plan = Plan { cap_bytes: 10_000, thresholds: DEFAULT_THRESHOLDS };
        let usage = account(&collector.snapshot(), window(), &plan);
        assert_eq!(usage.len(), 1);
        assert_eq!(usage[0].total_bytes, 1_000);
        assert_eq!(usage[0].per_device[0], (mac(1), 700));
        assert_eq!(usage[0].per_device[1], (mac(2), 300));
        assert!(usage[0].alerts.is_empty(), "far from any threshold");
        assert!(!usage[0].exhausted(&plan));
        assert!((usage[0].cap_fraction(&plan) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn alerts_fire_once_in_order() {
        let collector = Collector::new();
        collector.register(RouterMeta {
            router: RouterId(0),
            country: Country::UnitedStates,
            traffic_consent: true,
        });
        // Cap 1000: cross 50% at t=10, 90% and 100% at t=20.
        collector.ingest_batch(vec![
            flow(0, mac(1), 600, 10),
            flow(0, mac(1), 500, 20),
            flow(0, mac(1), 500, 30),
        ]);
        let plan = Plan { cap_bytes: 1_000, thresholds: DEFAULT_THRESHOLDS };
        let usage = account(&collector.snapshot(), window(), &plan);
        let alerts = &usage[0].alerts;
        assert_eq!(alerts.len(), 3);
        assert_eq!(alerts[0].threshold, 0.5);
        assert_eq!(alerts[0].at, t(10));
        assert_eq!(alerts[1].threshold, 0.9);
        assert_eq!(alerts[2].threshold, 1.0);
        assert_eq!(alerts[1].at, t(20));
        assert!(usage[0].exhausted(&plan));
    }

    #[test]
    fn homes_sorted_by_usage() {
        let collector = Collector::new();
        for router in 0..3u32 {
            collector.register(RouterMeta {
                router: RouterId(router),
                country: Country::UnitedStates,
                traffic_consent: true,
            });
        }
        collector.ingest_batch(vec![
            flow(0, mac(1), 100, 5),
            flow(1, mac(1), 900, 6),
            flow(2, mac(1), 400, 7),
        ]);
        let plan = Plan { cap_bytes: 10_000, thresholds: DEFAULT_THRESHOLDS };
        let usage = account(&collector.snapshot(), window(), &plan);
        let order: Vec<u32> = usage.iter().map(|u| u.router.0).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn monthly_proration() {
        let window = Window { start: t(0), end: t(15 * 24 * 60) };
        let plan = Plan::monthly(30_000_000_000, window);
        assert_eq!(plan.cap_bytes, 15_000_000_000);
    }
}
