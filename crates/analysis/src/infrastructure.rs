//! §5 — Infrastructure: device counts, wired vs wireless, spectrum
//! occupancy, neighboring APs, and device vendors (Figs 7–12, Tables 4–5).

use crate::index::DataIndex;
use crate::stats::{Cdf, MeanStd};
use collector::windows::Window;
use collector::Datasets;
use firmware::anonymize::AnonMac;
use firmware::records::{Medium, RouterId};
use household::{Region, VendorClass};
use simnet::wifi::Band;
use std::collections::{HashMap, HashSet};

/// Figure 7: CDF of unique devices per home (from the hourly association
/// reports within the Devices window).
pub fn fig7(data: &Datasets, window: Window) -> Cdf {
    let mut per_home: HashMap<RouterId, HashSet<AnonMac>> = HashMap::new();
    for assoc in &data.associations {
        if window.contains(assoc.at) {
            per_home.entry(assoc.router).or_default().insert(assoc.device);
        }
    }
    fig7_from_sets(&per_home)
}

/// [`fig7`] from already-collected per-home device sets (shared by the
/// batch pass above and the stream-mode incremental accumulator).
pub(crate) fn fig7_from_sets(per_home: &HashMap<RouterId, HashSet<AnonMac>>) -> Cdf {
    Cdf::from_samples(per_home.values().map(|set| set.len() as f64))
}

/// Figure 8: average simultaneously connected devices, wired vs wireless,
/// by region, with standard deviations.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// Developed: (wired, wireless).
    pub developed: (MeanStd, MeanStd),
    /// Developing: (wired, wireless).
    pub developing: (MeanStd, MeanStd),
}

/// Compute Figure 8 from the census records in `window`.
pub fn fig8(data: &Datasets, window: Window) -> Fig8 {
    fig8_with(&DataIndex::new(data), window)
}

/// [`fig8`] over a prebuilt index: one pass over the censuses with a
/// run-cached region lookup (the table is router-sorted), instead of a
/// registration scan per record per region.
pub fn fig8_with(idx: &DataIndex, window: Window) -> Fig8 {
    let mut buckets = [(Vec::new(), Vec::new()), (Vec::new(), Vec::new())];
    let mut current: Option<(RouterId, Option<Region>)> = None;
    for census in &idx.data().devices {
        if !window.contains(census.at) {
            continue;
        }
        let region = match current {
            Some((router, region)) if router == census.router => region,
            _ => {
                let region = idx.region(census.router);
                current = Some((census.router, region));
                region
            }
        };
        let bucket = match region {
            Some(Region::Developed) => &mut buckets[0],
            Some(Region::Developing) => &mut buckets[1],
            None => continue,
        };
        bucket.0.push(f64::from(census.wired));
        bucket.1.push(f64::from(census.wireless_total()));
    }
    let stats = |b: &(Vec<f64>, Vec<f64>)| (MeanStd::of(&b.0), MeanStd::of(&b.1));
    Fig8 { developed: stats(&buckets[0]), developing: stats(&buckets[1]) }
}

/// Figure 9: average simultaneously connected wireless stations per band,
/// with standard deviations.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// 2.4 GHz stations.
    pub ghz24: MeanStd,
    /// 5 GHz stations.
    pub ghz5: MeanStd,
}

/// Compute Figure 9 from the census records in `window`.
pub fn fig9(data: &Datasets, window: Window) -> Fig9 {
    let mut g24 = Vec::new();
    let mut g5 = Vec::new();
    for census in &data.devices {
        if window.contains(census.at) {
            g24.push(f64::from(census.wireless_24));
            g5.push(f64::from(census.wireless_5));
        }
    }
    Fig9 { ghz24: MeanStd::of(&g24), ghz5: MeanStd::of(&g5) }
}

/// Figure 10: CDFs of unique devices per household per band.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// 2.4 GHz distribution.
    pub ghz24: Cdf,
    /// 5 GHz distribution.
    pub ghz5: Cdf,
}

/// Compute Figure 10 from the association reports in `window`.
pub fn fig10(data: &Datasets, window: Window) -> Fig10 {
    let mut per_home: HashMap<(RouterId, Band), HashSet<AnonMac>> = HashMap::new();
    let mut homes: HashSet<RouterId> = HashSet::new();
    for assoc in &data.associations {
        if !window.contains(assoc.at) {
            continue;
        }
        homes.insert(assoc.router);
        if let Some(band) = assoc.medium.band() {
            per_home.entry((assoc.router, band)).or_default().insert(assoc.device);
        }
    }
    fig10_from_sets(&homes, &per_home)
}

/// [`fig10`] from already-collected per-band device sets (shared by the
/// batch pass above and the stream-mode incremental accumulator).
pub(crate) fn fig10_from_sets(
    homes: &HashSet<RouterId>,
    per_home: &HashMap<(RouterId, Band), HashSet<AnonMac>>,
) -> Fig10 {
    let collect = |band: Band| {
        Cdf::from_samples(homes.iter().map(|router| {
            per_home.get(&(*router, band)).map_or(0.0, |set| set.len() as f64)
        }))
    };
    Fig10 { ghz24: collect(Band::Ghz24), ghz5: collect(Band::Ghz5) }
}

/// Figure 11: CDFs of unique 2.4 GHz neighbor APs per home, by region.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// Developed-country distribution.
    pub developed: Cdf,
    /// Developing-country distribution.
    pub developing: Cdf,
}

/// Compute Figure 11 from the WiFi scans in `window`.
pub fn fig11(data: &Datasets, window: Window) -> Fig11 {
    fig11_with(&DataIndex::new(data), window)
}

/// [`fig11`] over a prebuilt index (O(1) region lookups).
pub fn fig11_with(idx: &DataIndex, window: Window) -> Fig11 {
    let mut per_home: HashMap<RouterId, HashSet<u64>> = HashMap::new();
    let mut scanned: HashSet<RouterId> = HashSet::new();
    for scan in &idx.data().wifi {
        if !window.contains(scan.at) || scan.band != Band::Ghz24 {
            continue;
        }
        scanned.insert(scan.router);
        for ap in &scan.aps {
            per_home.entry(scan.router).or_default().insert(ap.bssid_hash);
        }
    }
    fig11_from_sets(idx, &scanned, &per_home)
}

/// [`fig11`] from already-collected neighbor-BSSID sets (shared by the
/// batch pass above and the stream-mode incremental accumulator).
pub(crate) fn fig11_from_sets(
    idx: &DataIndex,
    scanned: &HashSet<RouterId>,
    per_home: &HashMap<RouterId, HashSet<u64>>,
) -> Fig11 {
    let collect = |region: Region| {
        Cdf::from_samples(
            scanned
                .iter()
                .filter(|router| idx.region(**router) == Some(region))
                .map(|router| per_home.get(router).map_or(0.0, |s| s.len() as f64)),
        )
    };
    Fig11 { developed: collect(Region::Developed), developing: collect(Region::Developing) }
}

/// Figure 12: the vendor histogram over Traffic-home devices that moved at
/// least 100 KB, via OUI lookup on the anonymized MACs.
pub fn fig12(data: &Datasets) -> Vec<(VendorClass, usize)> {
    let mut seen: HashSet<(RouterId, u32, u32)> = HashSet::new();
    let mut counts: HashMap<VendorClass, usize> = HashMap::new();
    for sighting in &data.macs {
        if sighting.bytes_total < 100 * 1024 {
            continue;
        }
        if !seen.insert((sighting.router, sighting.device.oui, sighting.device.suffix_hash)) {
            continue;
        }
        if let Some(vendor) = VendorClass::from_oui(sighting.device.oui) {
            *counts.entry(vendor).or_default() += 1;
        }
    }
    fig12_from_counts(&counts)
}

/// [`fig12`]'s final ranking from already-deduplicated vendor counts
/// (shared by the batch pass above and the incremental accumulator).
pub(crate) fn fig12_from_counts(counts: &HashMap<VendorClass, usize>) -> Vec<(VendorClass, usize)> {
    let mut out: Vec<(VendorClass, usize)> = counts.iter().map(|(&v, &n)| (v, n)).collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

/// Table 5: households with at least one always-connected wired/wireless
/// device over a five-week stretch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table5Row {
    /// Region.
    pub region: Region,
    /// Total households observed.
    pub total: usize,
    /// Households with an always-connected wired device.
    pub wired: usize,
    /// Households with an always-connected wireless device.
    pub wireless: usize,
}

/// Compute Table 5: a device counts as always-connected when it appears in
/// at least 99% of the home's censuses within the window (the window
/// approximates the paper's five weeks) and the home has a meaningful
/// number of censuses.
pub fn table5(data: &Datasets, window: Window) -> Vec<Table5Row> {
    table5_with(&DataIndex::new(data), window)
}

/// [`table5`] over a prebuilt index.
pub fn table5_with(idx: &DataIndex, window: Window) -> Vec<Table5Row> {
    let data = idx.data();
    let census_count = census_counts(data, window);
    let mut presence: HashMap<(RouterId, u32, u32), (usize, Medium)> = HashMap::new();
    for assoc in &data.associations {
        if window.contains(assoc.at) {
            let entry = presence
                .entry((assoc.router, assoc.device.oui, assoc.device.suffix_hash))
                .or_insert((0, assoc.medium));
            entry.0 += 1;
            entry.1 = assoc.medium;
        }
    }
    table5_from_parts(idx, window, &census_count, &presence)
}

/// Census count per home within `window` (Table 5's denominator).
pub(crate) fn census_counts(data: &Datasets, window: Window) -> HashMap<RouterId, usize> {
    let mut census_count: HashMap<RouterId, usize> = HashMap::new();
    for census in &data.devices {
        if window.contains(census.at) {
            *census_count.entry(census.router).or_default() += 1;
        }
    }
    census_count
}

/// [`table5`]'s row construction from already-folded census counts and
/// per-device presence tallies. The batch pass above records each
/// device's *last* medium in association-table order; the incremental
/// accumulator reproduces that as the medium at the maximal
/// `(at, medium)` sort key, which is the same record because the table
/// is sorted by exactly that key within a device's run.
pub(crate) fn table5_from_parts(
    idx: &DataIndex,
    window: Window,
    census_count: &HashMap<RouterId, usize>,
    presence: &HashMap<(RouterId, u32, u32), (usize, Medium)>,
) -> Vec<Table5Row> {
    // A home must have been censused a reasonable number of times.
    let min_censuses =
        (window.duration().as_hours() as usize / 4).max(24);
    let mut wired_homes: HashSet<RouterId> = HashSet::new();
    let mut wireless_homes: HashSet<RouterId> = HashSet::new();
    for ((router, _, _), (count, medium)) in presence {
        let total = census_count.get(router).copied().unwrap_or(0);
        if total < min_censuses {
            continue;
        }
        if *count as f64 >= 0.99 * total as f64 {
            match medium {
                Medium::Wired => {
                    wired_homes.insert(*router);
                }
                _ => {
                    wireless_homes.insert(*router);
                }
            }
        }
    }
    let mut rows = Vec::new();
    for region in [Region::Developed, Region::Developing] {
        let homes: Vec<RouterId> = census_count
            .iter()
            .filter(|(router, count)| {
                **count >= min_censuses && idx.region(**router) == Some(region)
            })
            .map(|(router, _)| *router)
            .collect();
        rows.push(Table5Row {
            region,
            total: homes.len(),
            wired: homes.iter().filter(|h| wired_homes.contains(h)).count(),
            wireless: homes.iter().filter(|h| wireless_homes.contains(h)).count(),
        });
    }
    rows
}

/// §5.2's port-usage aside: the fraction of homes that ever used all four
/// Ethernet ports within the window.
pub fn all_four_ports_fraction(data: &Datasets, window: Window) -> f64 {
    let mut homes: HashSet<RouterId> = HashSet::new();
    let mut full: HashSet<RouterId> = HashSet::new();
    for census in &data.devices {
        if window.contains(census.at) {
            homes.insert(census.router);
            if census.wired >= 4 {
                full.insert(census.router);
            }
        }
    }
    if homes.is_empty() {
        0.0
    } else {
        full.len() as f64 / homes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collector::{Collector, RouterMeta};
    use firmware::records::{AssociationRecord, DeviceCensusRecord, Record};
    use firmware::AnonMac;
    use household::Country;
    use simnet::time::{SimDuration, SimTime};

    fn hours(h: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_hours(h)
    }

    fn window(hours_total: u64) -> Window {
        Window { start: SimTime::EPOCH, end: hours(hours_total) }
    }

    fn mac(n: u32) -> AnonMac {
        AnonMac { oui: 0x00_17_F2, suffix_hash: n }
    }

    /// Two homes: US home with 3 devices (one always-connected wired),
    /// India home with 2 devices that come and go.
    fn synthetic(total_hours: u64) -> Datasets {
        let collector = Collector::new();
        collector.register(RouterMeta {
            router: RouterId(0),
            country: Country::UnitedStates,
            traffic_consent: false,
        });
        collector.register(RouterMeta {
            router: RouterId(1),
            country: Country::India,
            traffic_consent: false,
        });
        for h in 0..total_hours {
            let at = hours(h);
            // US: always-connected wired NAS + wireless laptop (evening
            // only) + wireless phone (always).
            let evening = h % 24 >= 18;
            let mut us_records = vec![Record::Association(AssociationRecord {
                router: RouterId(0),
                at,
                device: mac(1),
                medium: Medium::Wired,
            })];
            us_records.push(Record::Association(AssociationRecord {
                router: RouterId(0),
                at,
                device: mac(2),
                medium: Medium::Wireless24,
            }));
            if evening {
                us_records.push(Record::Association(AssociationRecord {
                    router: RouterId(0),
                    at,
                    device: mac(3),
                    medium: Medium::Wireless5,
                }));
            }
            let us_wireless = if evening { 2 } else { 1 };
            us_records.push(Record::DeviceCensus(DeviceCensusRecord {
                router: RouterId(0),
                at,
                wired: 1,
                wireless_24: 1,
                wireless_5: us_wireless - 1,
            }));
            collector.ingest_batch(us_records);
            // India: a phone on 2.4 GHz in the evening only.
            let mut in_records = vec![Record::DeviceCensus(DeviceCensusRecord {
                router: RouterId(1),
                at,
                wired: 0,
                wireless_24: u8::from(evening),
                wireless_5: 0,
            })];
            if evening {
                in_records.push(Record::Association(AssociationRecord {
                    router: RouterId(1),
                    at,
                    device: mac(9),
                    medium: Medium::Wireless24,
                }));
            }
            collector.ingest_batch(in_records);
        }
        collector.snapshot()
    }

    #[test]
    fn fig7_unique_devices() {
        let data = synthetic(48);
        let cdf = fig7(&data, window(48));
        assert_eq!(cdf.len(), 2);
        // US home saw 3 distinct devices, India 1.
        assert_eq!(cdf.quantile(1.0), 3.0);
        assert_eq!(cdf.quantile(0.0), 1.0);
    }

    #[test]
    fn fig8_region_split() {
        let data = synthetic(48);
        let fig = fig8(&data, window(48));
        assert!(fig.developed.0.mean > fig.developing.0.mean, "US has more wired");
        assert!(fig.developed.1.mean > fig.developing.1.mean);
        assert!(fig.developing.1.std > 0.0, "evening-only presence has variance");
    }

    #[test]
    fn fig9_band_split() {
        let data = synthetic(48);
        let fig = fig9(&data, window(48));
        assert!(fig.ghz24.mean > fig.ghz5.mean);
    }

    #[test]
    fn fig10_per_band_uniques() {
        let data = synthetic(48);
        let fig = fig10(&data, window(48));
        // Homes: US (one 2.4 device, one 5 GHz device), India (one 2.4).
        assert_eq!(fig.ghz24.len(), 2);
        assert_eq!(fig.ghz24.quantile(1.0), 1.0);
        assert_eq!(fig.ghz5.quantile(1.0), 1.0);
        assert_eq!(fig.ghz5.quantile(0.0), 0.0, "India saw nothing on 5 GHz");
    }

    #[test]
    fn table5_always_connected() {
        let data = synthetic(24 * 8);
        let rows = table5(&data, window(24 * 8));
        let developed = rows.iter().find(|r| r.region == Region::Developed).unwrap();
        let developing = rows.iter().find(|r| r.region == Region::Developing).unwrap();
        assert_eq!(developed.total, 1);
        assert_eq!(developed.wired, 1, "the NAS never disconnects");
        assert_eq!(developed.wireless, 1, "the phone never disconnects");
        assert_eq!(developing.wired, 0);
        assert_eq!(developing.wireless, 0, "evening-only phone is not always-connected");
    }

    #[test]
    fn four_port_fraction() {
        let data = synthetic(48);
        assert_eq!(all_four_ports_fraction(&data, window(48)), 0.0);
    }

    #[test]
    fn fig12_counts_vendors_above_threshold() {
        let collector = Collector::new();
        collector.register(RouterMeta {
            router: RouterId(0),
            country: Country::UnitedStates,
            traffic_consent: true,
        });
        let mk = |oui: u32, nic: u32, bytes: u64| {
            Record::MacSighting(firmware::records::MacSightingRecord {
                router: RouterId(0),
                first_seen: SimTime::EPOCH,
                device: AnonMac { oui, suffix_hash: nic },
                bytes_total: bytes,
            })
        };
        collector.ingest_batch(vec![
            mk(VendorClass::Apple.oui(), 1, 500_000),
            mk(VendorClass::Apple.oui(), 2, 500_000),
            mk(VendorClass::Intel.oui(), 3, 500_000),
            mk(VendorClass::Samsung.oui(), 4, 10_000), // below 100 KB: dropped
            mk(0x12_34_56, 5, 500_000),                // unknown OUI: dropped
        ]);
        let hist = fig12(&collector.snapshot());
        assert_eq!(hist[0], (VendorClass::Apple, 2));
        assert_eq!(hist[1], (VendorClass::Intel, 1));
        assert_eq!(hist.len(), 2);
    }
}
