//! The paper's tables: the static deployment tables (1 and 2) and the
//! computed highlight tables (3, 4, and 6), each expressed as data the
//! renderer can print and tests can assert on.

use crate::availability::{self, RouterAvailability};
use crate::infrastructure;
use crate::usage;
use collector::windows::Window;
use collector::Datasets;
use firmware::records::RouterId;
use household::{Country, Region};
use simnet::time::SimDuration;

/// Table 1: the country classification with router counts.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Country.
    pub country: Country,
    /// Developed/developing.
    pub region: Region,
    /// Routers deployed (from registration metadata).
    pub routers: usize,
}

/// Compute Table 1 from the collector's registration metadata.
pub fn table1(data: &Datasets) -> Vec<Table1Row> {
    Country::ALL
        .iter()
        .map(|&country| Table1Row {
            country,
            region: country.region(),
            routers: data.routers.iter().filter(|m| m.country == country).count(),
        })
        .filter(|row| row.routers > 0)
        .collect()
}

/// Table 2: data-set summary — routers and countries contributing to each
/// set within its window.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Data-set name.
    pub dataset: &'static str,
    /// Routers contributing at least one record.
    pub routers: usize,
    /// Countries contributing.
    pub countries: usize,
    /// The collection window.
    pub window: Window,
}

/// Compute Table 2 from the data sets and their windows.
pub fn table2(data: &Datasets, windows: &[(&'static str, Window)]) -> Vec<Table2Row> {
    use std::collections::HashSet;
    windows
        .iter()
        .map(|(name, window)| {
            let routers: HashSet<_> = match *name {
                "Heartbeats" => data
                    .heartbeats
                    .iter()
                    .filter(|(_, log)| {
                        log.extent().is_some_and(|(first, _)| window.contains(first) || first < window.end)
                    })
                    .map(|(r, _)| *r)
                    .collect(),
                "Uptime" => data
                    .uptime
                    .iter()
                    .filter(|r| window.contains(r.at))
                    .map(|r| r.router)
                    .collect(),
                "Capacity" => data
                    .capacity
                    .iter()
                    .filter(|r| window.contains(r.at))
                    .map(|r| r.router)
                    .collect(),
                "Devices" => data
                    .devices
                    .iter()
                    .filter(|r| window.contains(r.at))
                    .map(|r| r.router)
                    .collect(),
                "WiFi" => data
                    .wifi
                    .iter()
                    .filter(|r| window.contains(r.at))
                    .map(|r| r.router)
                    .collect(),
                "Traffic" => data
                    .flows
                    .iter()
                    .filter(|r| window.contains(r.ended))
                    .map(|r| r.router)
                    .collect(),
                other => panic!("unknown dataset {other}"),
            };
            table2_row(data, name, *window, &routers)
        })
        .collect()
}

/// One [`table2`] row from an already-collected contributing-router set
/// (shared by the batch arms above and the stream-mode accumulator,
/// which maintains the WiFi and Traffic sets incrementally).
pub(crate) fn table2_row(
    data: &Datasets,
    dataset: &'static str,
    window: Window,
    routers: &std::collections::HashSet<RouterId>,
) -> Table2Row {
    let countries: std::collections::HashSet<_> =
        routers.iter().filter_map(|r| data.meta(*r).map(|m| m.country)).collect();
    Table2Row { dataset, routers: routers.len(), countries: countries.len(), window }
}

/// Table 3: §4's highlight numbers.
#[derive(Debug, Clone, Copy)]
pub struct Table3 {
    /// Median time between downtimes, developed countries.
    pub developed_median_time_between: SimDuration,
    /// Median time between downtimes, developing countries.
    pub developing_median_time_between: SimDuration,
    /// ISO codes of the two countries with the most frequent downtime.
    pub worst_two: [&'static str; 2],
    /// Whether at least one home shows appliance-style power cycling
    /// (coverage under 40% with many distinct on-periods).
    pub appliance_mode_observed: bool,
}

/// Compute Table 3 from the per-router availability.
pub fn table3(routers: &[RouterAvailability]) -> Table3 {
    let med_gap = |region: Region| {
        let rates: Vec<f64> = routers
            .iter()
            .filter(|r| r.region == region)
            .map(|r| r.downtimes_per_day)
            .collect();
        let med_rate = crate::stats::median(&rates);
        if med_rate <= 0.0 {
            // No downtime at the median: report the observation span as a
            // lower bound (the paper reports "more than a month").
            SimDuration::from_days(365)
        } else {
            SimDuration::from_secs_f64(86_400.0 / med_rate)
        }
    };
    let points = availability::fig5(routers);
    let mut worst: Vec<&availability::Fig5Point> = points.iter().collect();
    worst.sort_by(|a, b| {
        b.median_downtimes.partial_cmp(&a.median_downtimes).expect("finite medians")
    });
    let worst_two = match worst.as_slice() {
        [a, b, ..] => [a.code, b.code],
        [a] => [a.code, a.code],
        [] => ["--", "--"],
    };
    let appliance_mode_observed =
        routers.iter().any(|r| r.coverage < 0.4 && r.downtimes.len() > 10);
    Table3 {
        developed_median_time_between: med_gap(Region::Developed),
        developing_median_time_between: med_gap(Region::Developing),
        worst_two,
        appliance_mode_observed,
    }
}

/// Table 4: §5's highlight numbers.
#[derive(Debug, Clone, Copy)]
pub struct Table4 {
    /// Fraction of developed homes with an always-on wired device.
    pub developed_always_on_wired: f64,
    /// Fraction of developing homes with an always-on wired device.
    pub developing_always_on_wired: f64,
    /// Median unique devices on 2.4 GHz.
    pub median_devices_24: f64,
    /// Median unique devices on 5 GHz.
    pub median_devices_5: f64,
    /// Median visible APs, developed homes.
    pub median_aps_developed: f64,
    /// Median visible APs, developing homes.
    pub median_aps_developing: f64,
}

/// Compute Table 4.
pub fn table4(data: &Datasets, devices_window: Window, wifi_window: Window) -> Table4 {
    table4_from(
        &infrastructure::table5(data, devices_window),
        &infrastructure::fig10(data, devices_window),
        &infrastructure::fig11(data, wifi_window),
    )
}

/// [`table4`] from the already-computed figures it summarizes — the
/// report computes Table 5 and Figures 10/11 once and shares them here.
pub fn table4_from(
    table5: &[infrastructure::Table5Row],
    fig10: &infrastructure::Fig10,
    fig11: &infrastructure::Fig11,
) -> Table4 {
    let frac = |region: Region| {
        table5
            .iter()
            .find(|row| row.region == region)
            .map_or(0.0, |row| {
                if row.total == 0 {
                    0.0
                } else {
                    row.wired as f64 / row.total as f64
                }
            })
    };
    let safe_median = |cdf: &crate::stats::Cdf| if cdf.is_empty() { 0.0 } else { cdf.median() };
    Table4 {
        developed_always_on_wired: frac(Region::Developed),
        developing_always_on_wired: frac(Region::Developing),
        median_devices_24: safe_median(&fig10.ghz24),
        median_devices_5: safe_median(&fig10.ghz5),
        median_aps_developed: safe_median(&fig11.developed),
        median_aps_developing: safe_median(&fig11.developing),
    }
}

/// Table 6: §6's highlight numbers.
#[derive(Debug, Clone, Copy)]
pub struct Table6 {
    /// Weekday diurnal spread vs weekend (Fig 13 summary).
    pub weekday_spread: f64,
    /// Weekend spread.
    pub weekend_spread: f64,
    /// Number of homes whose p95 uplink utilization exceeds capacity.
    pub oversaturating_homes: usize,
    /// Mean share of home traffic from the single heaviest device.
    pub dominant_device_share: f64,
    /// Mean share of home volume from the top domain.
    pub top_domain_volume_share: f64,
    /// Mean share of home connections from the top-by-volume domain.
    pub top_domain_connection_share: f64,
    /// Mean fraction of bytes to whitelisted domains.
    pub whitelisted_byte_fraction: f64,
}

/// Compute Table 6.
pub fn table6(data: &Datasets, traffic_window: Window, wifi_window: Window) -> Table6 {
    table6_from(
        &usage::fig13(data, wifi_window),
        &usage::fig15(data, traffic_window),
        &usage::fig17(data, traffic_window),
        &usage::fig19(data, traffic_window, 10),
    )
}

/// [`table6`] from the already-computed figures it summarizes. Only each
/// figure's rank-1 entries are read, so any `max_rank >= 1` Figure 19 works.
pub fn table6_from(
    fig13: &usage::Fig13,
    fig15: &[usage::Fig15Point],
    fig17: &usage::Fig17,
    fig19: &usage::Fig19,
) -> Table6 {
    Table6 {
        weekday_spread: usage::Fig13::spread(&fig13.weekday),
        weekend_spread: usage::Fig13::spread(&fig13.weekend),
        oversaturating_homes: fig15.iter().filter(|p| p.up_utilization > 1.0).count(),
        dominant_device_share: fig17.mean_top_share,
        top_domain_volume_share: fig19.volume_share_by_rank.first().copied().unwrap_or(0.0),
        top_domain_connection_share: fig19
            .connections_of_volume_rank
            .first()
            .copied()
            .unwrap_or(0.0),
        whitelisted_byte_fraction: fig19.whitelisted_byte_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collector::{Collector, RouterMeta};
    use firmware::records::{HeartbeatRecord, RouterId};
    use simnet::time::SimTime;

    fn mins(m: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_mins(m)
    }

    #[test]
    fn table1_counts_registrations() {
        let collector = Collector::new();
        for (i, country) in [Country::UnitedStates, Country::UnitedStates, Country::India]
            .iter()
            .enumerate()
        {
            collector.register(RouterMeta {
                router: RouterId(i as u32),
                country: *country,
                traffic_consent: false,
            });
        }
        let rows = table1(&collector.snapshot());
        assert_eq!(rows.len(), 2);
        let us = rows.iter().find(|r| r.country == Country::UnitedStates).unwrap();
        assert_eq!(us.routers, 2);
        assert_eq!(us.region, Region::Developed);
    }

    #[test]
    fn table3_reports_gap_medians() {
        // Two developed routers with no downtime, two developing with many.
        let collector = Collector::new();
        for i in 0..4u32 {
            collector.register(RouterMeta {
                router: RouterId(i),
                country: if i < 2 { Country::UnitedStates } else { Country::Pakistan },
                traffic_consent: false,
            });
        }
        let total = 20 * 24 * 60;
        for m in 0..total {
            for i in 0..2u32 {
                collector.ingest_heartbeat(HeartbeatRecord { router: RouterId(i), at: mins(m) });
            }
            if m % 720 >= 15 {
                for i in 2..4u32 {
                    collector
                        .ingest_heartbeat(HeartbeatRecord { router: RouterId(i), at: mins(m) });
                }
            }
        }
        let data = collector.snapshot();
        let window = Window { start: SimTime::EPOCH, end: mins(total) };
        let routers = availability::per_router(&data, window);
        let t3 = table3(&routers);
        assert!(t3.developed_median_time_between > SimDuration::from_days(19));
        assert!(t3.developing_median_time_between < SimDuration::from_hours(13));
    }
}
