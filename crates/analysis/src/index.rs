//! A shared per-router index over a [`Datasets`] snapshot.
//!
//! Snapshots keep every table sorted with the router ID as the leading
//! key, so each router's records form one contiguous run. [`DataIndex`]
//! finds those runs once (a handful of binary searches per router) and
//! hands the figures zero-copy slices plus O(1) registration lookups —
//! replacing the per-record `Datasets::meta` scans and whole-table
//! filters the analyses used to do.
//!
//! The seven high-volume tables (the four Traffic tables plus WiFi
//! scans, associations, and latency probes) are columnar and may be
//! partially **spilled to disk** when the study ran under a memory
//! budget (`collector::spill`). Their per-router iterators stream
//! spilled blocks lazily — one router's rows are decoded at a time,
//! never the whole table — so figure computation over a 100k-home
//! spilled snapshot holds only the small row tables plus one router's
//! columnar rows in RAM at once.

use collector::columns::{
    RouterAssociations, RouterDns, RouterFlows, RouterLatency, RouterPacketStats, RouterWifi,
};
use collector::{Datasets, RouterMeta};
use firmware::records::{CapacityRecord, DeviceCensusRecord, RouterId, UptimeRecord};
use household::{Country, Region};
use std::collections::HashMap;

/// Split a router-sorted table into per-router contiguous slices.
fn slices_by_router<T>(
    table: &[T],
    router_of: impl Fn(&T) -> RouterId,
) -> HashMap<RouterId, &[T]> {
    let mut out = HashMap::new();
    let mut start = 0;
    while start < table.len() {
        let router = router_of(&table[start]);
        let len = table[start..].partition_point(|r| router_of(r) == router);
        out.insert(router, &table[start..start + len]);
        start += len;
    }
    out
}

/// Per-router slices into every sorted table of one snapshot, shared by
/// all figures of a report so each table is grouped exactly once.
#[derive(Debug)]
pub struct DataIndex<'a> {
    data: &'a Datasets,
    meta: HashMap<RouterId, RouterMeta>,
    uptime: HashMap<RouterId, &'a [UptimeRecord]>,
    capacity: HashMap<RouterId, &'a [CapacityRecord]>,
    devices: HashMap<RouterId, &'a [DeviceCensusRecord]>,
}

impl<'a> DataIndex<'a> {
    /// Index a snapshot. Cost is O(routers · log records) — negligible next
    /// to a single full-table scan.
    pub fn new(data: &'a Datasets) -> DataIndex<'a> {
        DataIndex {
            meta: data.routers.iter().map(|m| (m.router, *m)).collect(),
            uptime: slices_by_router(&data.uptime, |r| r.router),
            capacity: slices_by_router(&data.capacity, |r| r.router),
            devices: slices_by_router(&data.devices, |r| r.router),
            data,
        }
    }

    /// The underlying snapshot.
    pub fn data(&self) -> &'a Datasets {
        self.data
    }

    /// Registered routers, sorted by ID (the snapshot keeps them sorted),
    /// for deterministic per-router iteration.
    pub fn routers(&self) -> &'a [RouterMeta] {
        &self.data.routers
    }

    /// Registration metadata, O(1).
    pub fn meta(&self, router: RouterId) -> Option<&RouterMeta> {
        self.meta.get(&router)
    }

    /// The router's country, if registered.
    pub fn country(&self, router: RouterId) -> Option<Country> {
        self.meta(router).map(|m| m.country)
    }

    /// The router's region, if registered.
    pub fn region(&self, router: RouterId) -> Option<Region> {
        self.meta(router).map(|m| m.country.region())
    }

    /// The router's UTC offset in hours (0 if unregistered).
    pub fn utc_offset(&self, router: RouterId) -> i32 {
        self.meta(router).map_or(0, |m| m.country.utc_offset_hours())
    }

    /// One router's uptime reports (empty if none).
    pub fn uptime(&self, router: RouterId) -> &'a [UptimeRecord] {
        self.uptime.get(&router).copied().unwrap_or(&[])
    }

    /// One router's capacity measurements.
    pub fn capacity(&self, router: RouterId) -> &'a [CapacityRecord] {
        self.capacity.get(&router).copied().unwrap_or(&[])
    }

    /// One router's device censuses.
    pub fn devices(&self, router: RouterId) -> &'a [DeviceCensusRecord] {
        self.devices.get(&router).copied().unwrap_or(&[])
    }

    /// One router's WiFi scans, decoded from the snapshot's columnar
    /// table (records yielded by value; spilled blocks stream in lazily).
    pub fn wifi(&self, router: RouterId) -> RouterWifi<'a> {
        self.data.wifi.router(router)
    }

    /// One router's per-minute packet statistics, decoded from the
    /// snapshot's columnar table (records yielded by value). For spilled
    /// snapshots this streams the router's on-disk block in, then chains
    /// the resident tail — the rest of the table stays on disk.
    pub fn packet_stats(&self, router: RouterId) -> RouterPacketStats<'a> {
        self.data.packet_stats.router(router)
    }

    /// One router's flow records, decoded from columns (streaming spilled
    /// blocks lazily; see [`DataIndex::packet_stats`]).
    pub fn flows(&self, router: RouterId) -> RouterFlows<'a> {
        self.data.flows.router(router)
    }

    /// One router's DNS samples, decoded from columns (streaming spilled
    /// blocks lazily; see [`DataIndex::packet_stats`]).
    pub fn dns(&self, router: RouterId) -> RouterDns<'a> {
        self.data.dns.router(router)
    }

    /// Bytes of Traffic data living in on-disk spill segments rather than
    /// RAM (0 for ordinary in-memory snapshots). Diagnostic: lets report
    /// code and tests confirm a bounded-memory run really stayed bounded.
    pub fn spilled_traffic_bytes(&self) -> u64 {
        self.data.spilled_bytes()
    }

    /// One router's association reports, decoded from columns (streaming
    /// spilled blocks lazily; see [`DataIndex::packet_stats`]).
    pub fn associations(&self, router: RouterId) -> RouterAssociations<'a> {
        self.data.associations.router(router)
    }

    /// One router's latency probes, decoded from columns (streaming
    /// spilled blocks lazily; see [`DataIndex::packet_stats`]).
    pub fn latency(&self, router: RouterId) -> RouterLatency<'a> {
        self.data.latency.router(router)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collector::Collector;
    use firmware::records::Record;
    use simnet::time::{SimDuration, SimTime};

    fn t(mins: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_mins(mins)
    }

    #[test]
    fn index_groups_contiguous_runs() {
        let collector = Collector::new();
        collector.register(RouterMeta {
            router: RouterId(1),
            country: Country::UnitedStates,
            traffic_consent: true,
        });
        collector.register(RouterMeta {
            router: RouterId(2),
            country: Country::India,
            traffic_consent: false,
        });
        for (router, at) in [(2u32, 4u64), (1, 9), (2, 1), (1, 3)] {
            collector.ingest(Record::Uptime(UptimeRecord {
                router: RouterId(router),
                at: t(at),
                uptime: SimDuration::ZERO,
            }));
        }
        let data = collector.snapshot();
        let idx = DataIndex::new(&data);
        assert_eq!(idx.uptime(RouterId(1)).len(), 2);
        assert_eq!(idx.uptime(RouterId(2)).len(), 2);
        assert_eq!(idx.uptime(RouterId(1))[0].at, t(3));
        assert!(idx.uptime(RouterId(3)).is_empty());
        assert_eq!(idx.region(RouterId(2)), Some(Region::Developing));
        assert_eq!(idx.utc_offset(RouterId(1)), Country::UnitedStates.utc_offset_hours());
        assert_eq!(idx.meta(RouterId(9)), None);
    }
}
