//! A shared per-router index over a [`Datasets`] snapshot.
//!
//! Snapshots keep every table sorted with the router ID as the leading
//! key, so each router's records form one contiguous run. [`DataIndex`]
//! finds those runs once (a handful of binary searches per router) and
//! hands the figures zero-copy slices plus O(1) registration lookups —
//! replacing the per-record `Datasets::meta` scans and whole-table
//! filters the analyses used to do.

use collector::columns::{RouterDns, RouterFlows, RouterPacketStats};
use collector::{Datasets, RouterMeta};
use firmware::latency::LatencyRecord;
use firmware::records::{
    AssociationRecord, CapacityRecord, DeviceCensusRecord, RouterId, UptimeRecord, WifiScanRecord,
};
use household::{Country, Region};
use std::collections::HashMap;

/// Split a router-sorted table into per-router contiguous slices.
fn slices_by_router<T>(
    table: &[T],
    router_of: impl Fn(&T) -> RouterId,
) -> HashMap<RouterId, &[T]> {
    let mut out = HashMap::new();
    let mut start = 0;
    while start < table.len() {
        let router = router_of(&table[start]);
        let len = table[start..].partition_point(|r| router_of(r) == router);
        out.insert(router, &table[start..start + len]);
        start += len;
    }
    out
}

/// Per-router slices into every sorted table of one snapshot, shared by
/// all figures of a report so each table is grouped exactly once.
#[derive(Debug)]
pub struct DataIndex<'a> {
    data: &'a Datasets,
    meta: HashMap<RouterId, RouterMeta>,
    uptime: HashMap<RouterId, &'a [UptimeRecord]>,
    capacity: HashMap<RouterId, &'a [CapacityRecord]>,
    devices: HashMap<RouterId, &'a [DeviceCensusRecord]>,
    wifi: HashMap<RouterId, &'a [WifiScanRecord]>,
    associations: HashMap<RouterId, &'a [AssociationRecord]>,
    latency: HashMap<RouterId, &'a [LatencyRecord]>,
}

impl<'a> DataIndex<'a> {
    /// Index a snapshot. Cost is O(routers · log records) — negligible next
    /// to a single full-table scan.
    pub fn new(data: &'a Datasets) -> DataIndex<'a> {
        DataIndex {
            meta: data.routers.iter().map(|m| (m.router, *m)).collect(),
            uptime: slices_by_router(&data.uptime, |r| r.router),
            capacity: slices_by_router(&data.capacity, |r| r.router),
            devices: slices_by_router(&data.devices, |r| r.router),
            wifi: slices_by_router(&data.wifi, |r| r.router),
            associations: slices_by_router(&data.associations, |r| r.router),
            latency: slices_by_router(&data.latency, |r| r.router),
            data,
        }
    }

    /// The underlying snapshot.
    pub fn data(&self) -> &'a Datasets {
        self.data
    }

    /// Registered routers, sorted by ID (the snapshot keeps them sorted),
    /// for deterministic per-router iteration.
    pub fn routers(&self) -> &'a [RouterMeta] {
        &self.data.routers
    }

    /// Registration metadata, O(1).
    pub fn meta(&self, router: RouterId) -> Option<&RouterMeta> {
        self.meta.get(&router)
    }

    /// The router's country, if registered.
    pub fn country(&self, router: RouterId) -> Option<Country> {
        self.meta(router).map(|m| m.country)
    }

    /// The router's region, if registered.
    pub fn region(&self, router: RouterId) -> Option<Region> {
        self.meta(router).map(|m| m.country.region())
    }

    /// The router's UTC offset in hours (0 if unregistered).
    pub fn utc_offset(&self, router: RouterId) -> i32 {
        self.meta(router).map_or(0, |m| m.country.utc_offset_hours())
    }

    /// One router's uptime reports (empty if none).
    pub fn uptime(&self, router: RouterId) -> &'a [UptimeRecord] {
        self.uptime.get(&router).copied().unwrap_or(&[])
    }

    /// One router's capacity measurements.
    pub fn capacity(&self, router: RouterId) -> &'a [CapacityRecord] {
        self.capacity.get(&router).copied().unwrap_or(&[])
    }

    /// One router's device censuses.
    pub fn devices(&self, router: RouterId) -> &'a [DeviceCensusRecord] {
        self.devices.get(&router).copied().unwrap_or(&[])
    }

    /// One router's WiFi scans.
    pub fn wifi(&self, router: RouterId) -> &'a [WifiScanRecord] {
        self.wifi.get(&router).copied().unwrap_or(&[])
    }

    /// One router's per-minute packet statistics, decoded from the
    /// snapshot's columnar table (records yielded by value).
    pub fn packet_stats(&self, router: RouterId) -> RouterPacketStats<'a> {
        self.data.packet_stats.router(router)
    }

    /// One router's flow records, decoded from columns.
    pub fn flows(&self, router: RouterId) -> RouterFlows<'a> {
        self.data.flows.router(router)
    }

    /// One router's DNS samples, decoded from columns.
    pub fn dns(&self, router: RouterId) -> RouterDns<'a> {
        self.data.dns.router(router)
    }

    /// One router's association reports.
    pub fn associations(&self, router: RouterId) -> &'a [AssociationRecord] {
        self.associations.get(&router).copied().unwrap_or(&[])
    }

    /// One router's latency probes.
    pub fn latency(&self, router: RouterId) -> &'a [LatencyRecord] {
        self.latency.get(&router).copied().unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collector::Collector;
    use firmware::records::Record;
    use simnet::time::{SimDuration, SimTime};

    fn t(mins: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_mins(mins)
    }

    #[test]
    fn index_groups_contiguous_runs() {
        let collector = Collector::new();
        collector.register(RouterMeta {
            router: RouterId(1),
            country: Country::UnitedStates,
            traffic_consent: true,
        });
        collector.register(RouterMeta {
            router: RouterId(2),
            country: Country::India,
            traffic_consent: false,
        });
        for (router, at) in [(2u32, 4u64), (1, 9), (2, 1), (1, 3)] {
            collector.ingest(Record::Uptime(UptimeRecord {
                router: RouterId(router),
                at: t(at),
                uptime: SimDuration::ZERO,
            }));
        }
        let data = collector.snapshot();
        let idx = DataIndex::new(&data);
        assert_eq!(idx.uptime(RouterId(1)).len(), 2);
        assert_eq!(idx.uptime(RouterId(2)).len(), 2);
        assert_eq!(idx.uptime(RouterId(1))[0].at, t(3));
        assert!(idx.uptime(RouterId(3)).is_empty());
        assert_eq!(idx.region(RouterId(2)), Some(Region::Developing));
        assert_eq!(idx.utc_offset(RouterId(1)), Country::UnitedStates.utc_offset_hours());
        assert_eq!(idx.meta(RouterId(9)), None);
    }
}
