//! §6 — Usage: diurnal patterns, link saturation, per-device consumption,
//! and domain popularity (Figs 13–20).

use crate::index::DataIndex;
use crate::stats::{mean, median, Cdf};
use collector::windows::Window;
use collector::Datasets;
use firmware::anonymize::{AnonMac, ReportedDomain};
use firmware::records::RouterId;
use household::VendorClass;
use simnet::time::SimTime;
use simnet::wifi::Band;
use std::collections::{BTreeMap, HashMap};

/// Figure 13: mean wireless stations per local hour of day, weekday vs
/// weekend, from the WiFi scans.
#[derive(Debug, Clone)]
pub struct Fig13 {
    /// Mean stations at local hour `h`, Monday–Friday.
    pub weekday: [f64; 24],
    /// Mean stations at local hour `h`, Saturday–Sunday.
    pub weekend: [f64; 24],
}

impl Fig13 {
    /// Peak-to-trough spread of one curve, the "diurnality" scalar.
    pub fn spread(curve: &[f64; 24]) -> f64 {
        let max = curve.iter().cloned().fold(f64::MIN, f64::max);
        let min = curve.iter().cloned().fold(f64::MAX, f64::min);
        max - min
    }
}

/// Compute Figure 13 from 2.4 GHz + 5 GHz scan-time station counts.
pub fn fig13(data: &Datasets, window: Window) -> Fig13 {
    fig13_with(&DataIndex::new(data), window)
}

/// [`fig13`] over a prebuilt index (UTC-offset lookups become O(1)).
pub fn fig13_with(idx: &DataIndex, window: Window) -> Fig13 {
    // Sum both bands per (router, scan instant), then bucket by local hour.
    // BTreeMap so the float accumulation below runs in key order — the
    // sums are exact (small integers) but ordered iteration keeps the
    // float-accum-order invariant by construction.
    let mut per_scan: BTreeMap<(RouterId, SimTime), u32> = BTreeMap::new();
    for scan in &idx.data().wifi {
        if window.contains(scan.at) {
            *per_scan.entry((scan.router, scan.at)).or_default() +=
                u32::from(scan.associated_stations);
        }
    }
    fig13_from_scans(idx, &per_scan)
}

/// [`fig13`] from an already-summed per-(router, instant) station map —
/// the batch path builds the map in one pass above; the incremental path
/// maintains it across stream windows and finalizes here.
pub(crate) fn fig13_from_scans(
    idx: &DataIndex,
    per_scan: &BTreeMap<(RouterId, SimTime), u32>,
) -> Fig13 {
    let mut weekday_sum = [0.0f64; 24];
    let mut weekday_n = [0u32; 24];
    let mut weekend_sum = [0.0f64; 24];
    let mut weekend_n = [0u32; 24];
    for (&(router, at), &stations) in per_scan {
        let local = at.to_local(idx.utc_offset(router));
        let h = local.hour_of_day() as usize;
        if local.weekday().is_weekend() {
            weekend_sum[h] += f64::from(stations);
            weekend_n[h] += 1;
        } else {
            weekday_sum[h] += f64::from(stations);
            weekday_n[h] += 1;
        }
    }
    let finish = |sum: [f64; 24], n: [u32; 24]| {
        let mut out = [0.0f64; 24];
        for h in 0..24 {
            if n[h] > 0 {
                out[h] = sum[h] / f64::from(n[h]);
            }
        }
        out
    };
    Fig13 { weekday: finish(weekday_sum, weekday_n), weekend: finish(weekend_sum, weekend_n) }
}

/// Figure 14: one home's utilization/capacity timeseries over the Traffic
/// window.
#[derive(Debug, Clone)]
pub struct Fig14 {
    /// The home shown.
    pub router: RouterId,
    /// `(minute, peak upstream bps)` samples.
    pub up_series: Vec<(SimTime, f64)>,
    /// `(minute, peak downstream bps)` samples.
    pub down_series: Vec<(SimTime, f64)>,
    /// Median measured upstream capacity (the dashed line).
    pub up_capacity_bps: f64,
    /// Median measured downstream capacity.
    pub down_capacity_bps: f64,
}

/// Median capacity estimates per router within `window`.
pub fn capacity_by_router(data: &Datasets, window: Window) -> HashMap<RouterId, (f64, f64)> {
    let mut samples: HashMap<RouterId, (Vec<f64>, Vec<f64>)> = HashMap::new();
    for rec in &data.capacity {
        if window.contains(rec.at) {
            let entry = samples.entry(rec.router).or_default();
            entry.0.push(rec.down_bps as f64);
            entry.1.push(rec.up_bps as f64);
        }
    }
    samples
        .into_iter()
        .map(|(router, (down, up))| (router, (median(&down), median(&up))))
        .collect()
}

/// Median capacity for one router within `window`, from its index slice.
pub(crate) fn capacity_of(idx: &DataIndex, window: Window, router: RouterId) -> Option<(f64, f64)> {
    let mut down = Vec::new();
    let mut up = Vec::new();
    for rec in idx.capacity(router) {
        if window.contains(rec.at) {
            down.push(rec.down_bps as f64);
            up.push(rec.up_bps as f64);
        }
    }
    if down.is_empty() {
        return None;
    }
    Some((median(&down), median(&up)))
}

/// Compute Figure 14 for `router` (typically a busy, ordinary home).
pub fn fig14(data: &Datasets, window: Window, router: RouterId) -> Option<Fig14> {
    fig14_with(&DataIndex::new(data), window, router)
}

/// [`fig14`] over a prebuilt index: touches only `router`'s capacity and
/// packet-stats slices instead of scanning whole tables.
pub fn fig14_with(idx: &DataIndex, window: Window, router: RouterId) -> Option<Fig14> {
    let (down_cap, up_cap) = capacity_of(idx, window, router)?;
    let mut up_series = Vec::new();
    let mut down_series = Vec::new();
    for stats in idx.packet_stats(router) {
        if window.contains(stats.at) {
            up_series.push((stats.at, stats.peak_up_bps() as f64));
            down_series.push((stats.at, stats.peak_down_bps() as f64));
        }
    }
    if up_series.is_empty() {
        return None;
    }
    Some(Fig14 {
        router,
        up_series,
        down_series,
        up_capacity_bps: up_cap,
        down_capacity_bps: down_cap,
    })
}

/// One home's point in Figure 15: capacity vs 95th-percentile utilization.
#[derive(Debug, Clone, Copy)]
pub struct Fig15Point {
    /// The home.
    pub router: RouterId,
    /// Median measured downstream capacity (bits/s).
    pub down_capacity_bps: f64,
    /// p95 of per-minute peak downstream throughput ÷ capacity.
    pub down_utilization: f64,
    /// Median measured upstream capacity (bits/s).
    pub up_capacity_bps: f64,
    /// p95 of per-minute peak upstream throughput ÷ capacity.
    pub up_utilization: f64,
}

/// Compute Figure 15 over all Traffic homes: only minutes with traffic
/// count ("we only consider instances when there is some device exchanging
/// traffic with the Internet").
pub fn fig15(data: &Datasets, window: Window) -> Vec<Fig15Point> {
    fig15_with(&DataIndex::new(data), window)
}

/// [`fig15`] over a prebuilt index: walks each registered router's
/// packet-stats slice in ID order, so the output needs no final sort and
/// the accumulation order is independent of hash layout.
pub fn fig15_with(idx: &DataIndex, window: Window) -> Vec<Fig15Point> {
    let mut out = Vec::new();
    for meta in idx.routers() {
        let router = meta.router;
        let mut down = Vec::new();
        let mut up = Vec::new();
        for stats in idx.packet_stats(router) {
            if window.contains(stats.at) {
                down.push(stats.peak_down_bps() as f64);
                up.push(stats.peak_up_bps() as f64);
            }
        }
        if down.len() < 10 {
            continue;
        }
        let Some((down_cap, up_cap)) = capacity_of(idx, window, router) else {
            continue;
        };
        if down_cap <= 0.0 || up_cap <= 0.0 {
            continue;
        }
        let p95_down = Cdf::from_samples(down).quantile(0.95);
        let p95_up = Cdf::from_samples(up).quantile(0.95);
        out.push(Fig15Point {
            router,
            down_capacity_bps: down_cap,
            down_utilization: p95_down / down_cap,
            up_capacity_bps: up_cap,
            up_utilization: p95_up / up_cap,
        });
    }
    out
}

/// Figure 16: the homes whose p95 uplink utilization exceeds measured
/// capacity, with their timeseries.
pub fn fig16(data: &Datasets, window: Window) -> Vec<Fig14> {
    let idx = DataIndex::new(data);
    let points = fig15_with(&idx, window);
    fig16_from(&idx, window, &points)
}

/// [`fig16`] when Figure 15's points are already computed — the report
/// shares one `fig15` result between Figures 14, 15, 16, and Table 6.
pub fn fig16_from(idx: &DataIndex, window: Window, points: &[Fig15Point]) -> Vec<Fig14> {
    points
        .iter()
        .filter(|p| p.up_utilization > 1.0)
        .filter_map(|p| fig14_with(idx, window, p.router))
        .collect()
}

/// Figure 17: per-home device shares of total traffic, ranked.
#[derive(Debug, Clone)]
pub struct Fig17 {
    /// Per home: shares of total home bytes by device rank (descending).
    pub per_home: Vec<(RouterId, Vec<f64>)>,
    /// Mean share of the top device across homes.
    pub mean_top_share: f64,
    /// Mean share of the second device.
    pub mean_second_share: f64,
}

/// Compute Figure 17 from flow records.
pub fn fig17(data: &Datasets, window: Window) -> Fig17 {
    let mut per_device: HashMap<(RouterId, AnonMac), u64> = HashMap::new();
    for flow in &data.flows {
        if window.contains(flow.ended) {
            *per_device.entry((flow.router, flow.device)).or_default() += flow.total_bytes();
        }
    }
    fig17_from_device_bytes(&per_device)
}

/// [`fig17`] from already-summed per-device byte totals (shared by the
/// batch pass above and the stream-mode incremental accumulator).
pub(crate) fn fig17_from_device_bytes(per_device: &HashMap<(RouterId, AnonMac), u64>) -> Fig17 {
    let mut per_home: HashMap<RouterId, Vec<u64>> = HashMap::new();
    for (&(router, _), &bytes) in per_device {
        per_home.entry(router).or_default().push(bytes);
    }
    let mut rows = Vec::new();
    for (router, mut volumes) in per_home {
        volumes.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = volumes.iter().sum();
        if total == 0 {
            continue;
        }
        rows.push((router, volumes.iter().map(|v| *v as f64 / total as f64).collect::<Vec<f64>>()));
    }
    rows.sort_by_key(|(router, _)| *router);
    let tops: Vec<f64> = rows.iter().filter_map(|(_, s)| s.first().copied()).collect();
    let seconds: Vec<f64> = rows.iter().filter_map(|(_, s)| s.get(1).copied()).collect();
    Fig17 { mean_top_share: mean(&tops), mean_second_share: mean(&seconds), per_home: rows }
}

/// Figure 18: for each whitelisted domain, in how many homes it ranks
/// top-5 / top-10 by volume.
#[derive(Debug, Clone)]
pub struct Fig18Row {
    /// The domain (named only when whitelisted).
    pub domain: String,
    /// Homes where it is top-5 by volume.
    pub top5_homes: usize,
    /// Homes where it is top-10 by volume.
    pub top10_homes: usize,
}

pub(crate) fn domain_key(d: &ReportedDomain) -> String {
    match d {
        ReportedDomain::Clear(name) => name.as_str().to_string(),
        ReportedDomain::Obfuscated(token) => format!("anon-{token:016x}"),
    }
}

/// Per-home domain volumes and connection counts, ordered by router so
/// every figure derived from them accumulates deterministically.
#[derive(Debug, Clone)]
pub struct DomainTallies {
    /// `(router, domain → (bytes, connections))`, sorted by router; homes
    /// with no flows in the window are absent. The inner map is ordered so
    /// the rank sorts below see ties in one deterministic order whether
    /// the tally was built in one batch pass or folded window by window.
    pub per_home: Vec<(RouterId, BTreeMap<String, (u64, u64)>)>,
}

/// Tally per-home domain volumes and connection counts once; Figures 18
/// and 19 and Table 6 all read from the same result.
pub fn domain_tallies(idx: &DataIndex, window: Window) -> DomainTallies {
    let mut per_home = Vec::new();
    for meta in idx.routers() {
        let mut tally: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for flow in idx.flows(meta.router) {
            if window.contains(flow.ended) {
                let entry = tally.entry(domain_key(&flow.domain)).or_default();
                entry.0 += flow.total_bytes();
                entry.1 += 1;
            }
        }
        if !tally.is_empty() {
            per_home.push((meta.router, tally));
        }
    }
    DomainTallies { per_home }
}

/// Compute Figure 18 (whitelisted names only, as the paper plots names).
pub fn fig18(data: &Datasets, window: Window) -> Vec<Fig18Row> {
    let idx = DataIndex::new(data);
    fig18_from(&domain_tallies(&idx, window))
}

/// [`fig18`] from precomputed domain tallies.
pub fn fig18_from(tallies: &DomainTallies) -> Vec<Fig18Row> {
    let mut top5: HashMap<String, usize> = HashMap::new();
    let mut top10: HashMap<String, usize> = HashMap::new();
    for (_, per_domain) in &tallies.per_home {
        let mut ranked: Vec<(&String, u64)> =
            per_domain.iter().map(|(d, (bytes, _))| (d, *bytes)).collect();
        ranked.sort_by_key(|(_, bytes)| std::cmp::Reverse(*bytes));
        for (i, (domain, _)) in ranked.iter().enumerate().take(10) {
            if domain.starts_with("anon-") {
                continue;
            }
            if i < 5 {
                *top5.entry((*domain).clone()).or_default() += 1;
            }
            *top10.entry((*domain).clone()).or_default() += 1;
        }
    }
    let mut rows: Vec<Fig18Row> = top10
        .into_iter()
        .map(|(domain, top10_homes)| Fig18Row {
            top5_homes: top5.get(&domain).copied().unwrap_or(0),
            domain,
            top10_homes,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.top5_homes
            .cmp(&a.top5_homes)
            .then(b.top10_homes.cmp(&a.top10_homes))
            .then(a.domain.cmp(&b.domain))
    });
    rows
}

/// Figure 19: domain-rank distributions of volume and connections.
#[derive(Debug, Clone)]
pub struct Fig19 {
    /// (a) mean fraction of home volume by volume-rank (index 0 = rank 1).
    pub volume_share_by_rank: Vec<f64>,
    /// (b) mean fraction of home connections by connection-rank.
    pub connection_share_by_rank: Vec<f64>,
    /// (c) mean fraction of home connections for domains ranked by volume.
    pub connections_of_volume_rank: Vec<f64>,
    /// Mean fraction of bytes that went to whitelisted domains ("Total" in
    /// the paper's plots, ≈ 65%).
    pub whitelisted_byte_fraction: f64,
}

/// Compute Figure 19, averaging per-home fractions over the first
/// `max_rank` ranks.
pub fn fig19(data: &Datasets, window: Window, max_rank: usize) -> Fig19 {
    let idx = DataIndex::new(data);
    fig19_from(&domain_tallies(&idx, window), max_rank)
}

/// [`fig19`] from precomputed domain tallies.
pub fn fig19_from(tallies: &DomainTallies, max_rank: usize) -> Fig19 {
    let mut vol_shares = vec![Vec::new(); max_rank];
    let mut conn_shares = vec![Vec::new(); max_rank];
    let mut conn_of_vol = vec![Vec::new(); max_rank];
    let mut whitelisted = Vec::new();
    for (_, per_domain) in &tallies.per_home {
        let total_bytes: u64 = per_domain.values().map(|(b, _)| *b).sum();
        let total_conns: u64 = per_domain.values().map(|(_, c)| *c).sum();
        if total_bytes == 0 || total_conns == 0 {
            continue;
        }
        let clear_bytes: u64 = per_domain
            .iter()
            .filter(|(d, _)| !d.starts_with("anon-"))
            .map(|(_, (b, _))| *b)
            .sum();
        whitelisted.push(clear_bytes as f64 / total_bytes as f64);
        let mut by_volume: Vec<(u64, u64)> = per_domain.values().copied().collect();
        by_volume.sort_by(|a, b| b.cmp(a));
        for (i, (bytes, conns)) in by_volume.iter().take(max_rank).enumerate() {
            vol_shares[i].push(*bytes as f64 / total_bytes as f64);
            conn_of_vol[i].push(*conns as f64 / total_conns as f64);
        }
        let mut by_conns: Vec<(u64, u64)> = per_domain.values().copied().collect();
        by_conns.sort_by_key(|&(bytes, conns)| std::cmp::Reverse((conns, bytes)));
        for (i, (_, conns)) in by_conns.iter().take(max_rank).enumerate() {
            conn_shares[i].push(*conns as f64 / total_conns as f64);
        }
    }
    Fig19 {
        volume_share_by_rank: vol_shares.iter().map(|v| mean(v)).collect(),
        connection_share_by_rank: conn_shares.iter().map(|v| mean(v)).collect(),
        connections_of_volume_rank: conn_of_vol.iter().map(|v| mean(v)).collect(),
        whitelisted_byte_fraction: mean(&whitelisted),
    }
}

/// Figure 20: a device's domain mix — top domains by share of that
/// device's bytes.
#[derive(Debug, Clone)]
pub struct Fig20Device {
    /// The home.
    pub router: RouterId,
    /// The device.
    pub device: AnonMac,
    /// Its manufacturer class, if the OUI is known.
    pub vendor: Option<VendorClass>,
    /// `(domain, share of device bytes)`, descending, top 8.
    pub domains: Vec<(String, f64)>,
    /// The device's total bytes.
    pub total_bytes: u64,
}

/// Compute the domain mix for every Traffic-home device above a volume
/// floor; callers pick exemplars (e.g. a streaming box vs a desktop).
pub fn fig20(data: &Datasets, window: Window, min_bytes: u64) -> Vec<Fig20Device> {
    let mut per_device: HashMap<(RouterId, AnonMac), HashMap<String, u64>> = HashMap::new();
    for flow in &data.flows {
        if window.contains(flow.ended) {
            *per_device
                .entry((flow.router, flow.device))
                .or_default()
                .entry(domain_key(&flow.domain))
                .or_default() += flow.total_bytes();
        }
    }
    fig20_from_device_domains(&per_device, min_bytes)
}

/// [`fig20`] from already-summed per-device domain volumes (shared by
/// the batch pass above and the stream-mode incremental accumulator).
pub(crate) fn fig20_from_device_domains(
    per_device: &HashMap<(RouterId, AnonMac), HashMap<String, u64>>,
    min_bytes: u64,
) -> Vec<Fig20Device> {
    let mut out = Vec::new();
    for (&(router, device), domains) in per_device {
        let total: u64 = domains.values().sum();
        if total < min_bytes {
            continue;
        }
        let mut ranked: Vec<(String, f64)> = domains
            .iter()
            .map(|(d, &b)| (d.clone(), b as f64 / total as f64))
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).expect("finite shares").then_with(|| a.0.cmp(&b.0))
        });
        ranked.truncate(8);
        out.push(Fig20Device {
            router,
            device,
            vendor: VendorClass::from_oui(device.oui),
            domains: ranked,
            total_bytes: total,
        });
    }
    // Tie-break by (router, device) so equal-volume devices keep a stable
    // order regardless of hash-map iteration.
    out.sort_by_key(|d| {
        (std::cmp::Reverse(d.total_bytes), d.router, d.device.oui, d.device.suffix_hash)
    });
    out
}

/// Find a streaming-box exemplar and a computer exemplar for Figure 20's
/// two panels.
pub fn fig20_exemplars(devices: &[Fig20Device]) -> (Option<&Fig20Device>, Option<&Fig20Device>) {
    let streamer = devices.iter().find(|d| d.vendor == Some(VendorClass::InternetTv));
    let computer = devices.iter().find(|d| {
        matches!(d.vendor, Some(VendorClass::Apple | VendorClass::Intel))
            && d.domains.iter().any(|(name, _)| name == "dropbox.com")
    });
    let computer = computer.or_else(|| {
        devices
            .iter()
            .find(|d| matches!(d.vendor, Some(VendorClass::Apple | VendorClass::Intel)))
    });
    (computer, streamer)
}

/// Hours of the day sorted by weekday activity, used in tests; exposed for
/// the report renderer.
pub fn band_label(band: Band) -> &'static str {
    match band {
        Band::Ghz24 => "2.4 GHz",
        Band::Ghz5 => "5 GHz",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collector::{Collector, RouterMeta};
    use firmware::records::{FlowRecord, PacketStatsRecord, Record, WifiScanRecord};
    use household::Country;
    use simnet::dns::DomainName;
    use simnet::packet::IpProtocol;
    use simnet::time::SimDuration;

    fn t(mins: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_mins(mins)
    }

    fn window(days: u64) -> Window {
        Window { start: SimTime::EPOCH, end: SimTime::EPOCH + SimDuration::from_days(days) }
    }

    fn mac(n: u32) -> AnonMac {
        AnonMac { oui: VendorClass::Apple.oui(), suffix_hash: n }
    }

    fn clear(name: &str) -> ReportedDomain {
        ReportedDomain::Clear(DomainName::new(name).unwrap())
    }

    fn flow(
        router: u32,
        device: AnonMac,
        domain: ReportedDomain,
        bytes: u64,
        end_min: u64,
    ) -> Record {
        Record::Flow(FlowRecord {
            router: RouterId(router),
            started: t(end_min.saturating_sub(1)),
            ended: t(end_min),
            device,
            remote_ip_hash: 1,
            remote_port: 443,
            proto: IpProtocol::Tcp,
            domain,
            bytes_down: bytes,
            bytes_up: bytes / 20,
        })
    }

    fn register(collector: &Collector, n: u32) {
        for i in 0..n {
            collector.register(RouterMeta {
                router: RouterId(i),
                country: Country::UnitedStates,
                traffic_consent: true,
            });
        }
    }

    #[test]
    fn fig13_buckets_by_local_hour() {
        let collector = Collector::new();
        register(&collector, 1);
        // US offset is -5: scans at UTC hour 1 land at local hour 20 of the
        // previous day. Day 1 (Tuesday) maps to Monday evening (weekday);
        // day 6 (Sunday) maps to Saturday evening (weekend).
        for (day, stations) in [(1u64, 4u8), (6, 2)] {
            collector.ingest(Record::WifiScan(WifiScanRecord {
                router: RouterId(0),
                at: t(day * 1440 + 60),
                band: Band::Ghz24,
                aps: vec![],
                associated_stations: stations,
            }));
        }
        let fig = fig13(&collector.snapshot(), window(7));
        assert_eq!(fig.weekday[20], 4.0);
        assert_eq!(fig.weekend[20], 2.0);
        assert_eq!(fig.weekday.iter().sum::<f64>(), 4.0);
        assert_eq!(fig.weekend.iter().sum::<f64>(), 2.0);
    }

    #[test]
    fn fig17_dominant_device() {
        let collector = Collector::new();
        register(&collector, 2);
        collector.ingest_batch(vec![
            flow(0, mac(1), clear("netflix.com"), 6_000, 10),
            flow(0, mac(2), clear("google.com"), 3_000, 11),
            flow(0, mac(3), clear("google.com"), 1_000, 12),
            flow(1, mac(4), clear("hulu.com"), 500, 13),
        ]);
        let fig = fig17(&collector.snapshot(), window(1));
        assert_eq!(fig.per_home.len(), 2);
        let home0 = &fig.per_home.iter().find(|(r, _)| *r == RouterId(0)).unwrap().1;
        assert!((home0[0] - 0.6).abs() < 0.01);
        assert!((home0[1] - 0.3).abs() < 0.01);
        assert_eq!(fig.per_home.iter().find(|(r, _)| *r == RouterId(1)).unwrap().1, vec![1.0]);
    }

    #[test]
    fn fig18_top5_counts() {
        let collector = Collector::new();
        register(&collector, 3);
        for router in 0..3 {
            collector.ingest(flow(router, mac(1), clear("google.com"), 1_000, 5));
            collector.ingest(flow(router, mac(1), clear("netflix.com"), 5_000, 6));
        }
        collector.ingest(flow(0, mac(1), ReportedDomain::Obfuscated(77), 9_000, 7));
        let rows = fig18(&collector.snapshot(), window(1));
        let netflix = rows.iter().find(|r| r.domain == "netflix.com").unwrap();
        assert_eq!(netflix.top5_homes, 3);
        assert!(rows.iter().all(|r| !r.domain.starts_with("anon-")));
    }

    #[test]
    fn fig19_shares() {
        let collector = Collector::new();
        register(&collector, 1);
        // One home: netflix 8000 bytes / 1 conn, google 2000 bytes / 3 conns.
        collector.ingest(flow(0, mac(1), clear("netflix.com"), 8_000, 5));
        for i in 0..3 {
            collector.ingest(flow(0, mac(1), clear("google.com"), 667, 6 + i));
        }
        let fig = fig19(&collector.snapshot(), window(1), 5);
        // Volume rank 1 = netflix: 8400/10401 ≈ 0.807 of bytes.
        assert!(fig.volume_share_by_rank[0] > 0.75);
        // Connection rank 1 = google with 3 of 4 connections.
        assert!((fig.connection_share_by_rank[0] - 0.75).abs() < 0.01);
        // Connections of the top-by-volume domain = netflix's 1 of 4.
        assert!((fig.connections_of_volume_rank[0] - 0.25).abs() < 0.01);
        assert!((fig.whitelisted_byte_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig15_utilization_and_fig16_oversaturation() {
        let collector = Collector::new();
        register(&collector, 2);
        for router in 0..2u32 {
            collector.ingest(Record::Capacity(firmware::records::CapacityRecord {
                router: RouterId(router),
                at: t(1),
                down_bps: 10_000_000,
                up_bps: 1_000_000,
                shaping_detected: false,
            }));
            for minute in 0..30 {
                let peak_up = if router == 1 { 160_000 } else { 20_000 }; // bytes/s
                collector.ingest(Record::PacketStats(PacketStatsRecord {
                    router: RouterId(router),
                    at: t(10 + minute),
                    bytes_down: 1_000_000,
                    bytes_up: peak_up * 60,
                    pkts_down: 700,
                    pkts_up: 100,
                    peak_down_1s: 250_000,
                    peak_up_1s: peak_up,
                }));
            }
        }
        let data = collector.snapshot();
        let points = fig15(&data, window(1));
        assert_eq!(points.len(), 2);
        let normal = points.iter().find(|p| p.router == RouterId(0)).unwrap();
        let uploader = points.iter().find(|p| p.router == RouterId(1)).unwrap();
        assert!((normal.down_utilization - 0.2).abs() < 0.01);
        assert!(normal.up_utilization < 0.2);
        assert!(uploader.up_utilization > 1.2, "uploader exceeds capacity");
        let over = fig16(&data, window(1));
        assert_eq!(over.len(), 1);
        assert_eq!(over[0].router, RouterId(1));
    }

    #[test]
    fn fig20_device_mixes() {
        let collector = Collector::new();
        register(&collector, 1);
        let roku = AnonMac { oui: VendorClass::InternetTv.oui(), suffix_hash: 9 };
        collector.ingest_batch(vec![
            flow(0, roku, clear("netflix.com"), 800_000, 5),
            flow(0, roku, clear("pandora.com"), 150_000, 6),
            flow(0, mac(1), clear("dropbox.com"), 500_000, 7),
            flow(0, mac(1), clear("google.com"), 200_000, 8),
        ]);
        let devices = fig20(&collector.snapshot(), window(1), 100_000);
        assert_eq!(devices.len(), 2);
        let (computer, streamer) = fig20_exemplars(&devices);
        let streamer = streamer.expect("roku found");
        assert_eq!(streamer.domains[0].0, "netflix.com");
        assert!(streamer.domains[0].1 > 0.7);
        let computer = computer.expect("desktop found");
        assert_eq!(computer.domains[0].0, "dropbox.com");
    }
}
