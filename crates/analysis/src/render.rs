//! Plain-text rendering of figures and tables, so the benchmark harness
//! and examples can print the same rows/series the paper plots.

use crate::stats::Cdf;

/// Render an ASCII CDF plot of one or more labeled series.
pub fn cdf_plot(title: &str, series: &[(&str, &Cdf)], width: usize, height: usize) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let non_empty: Vec<&(&str, &Cdf)> = series.iter().filter(|(_, c)| !c.is_empty()).collect();
    if non_empty.is_empty() {
        out.push_str("  (no data)\n");
        return out;
    }
    let lo = non_empty
        .iter()
        .map(|(_, c)| c.samples()[0])
        .fold(f64::MAX, f64::min);
    let hi = non_empty
        .iter()
        .map(|(_, c)| *c.samples().last().expect("non-empty"))
        .fold(f64::MIN, f64::max);
    let span = (hi - lo).max(1e-12);
    let mut grid = vec![vec![' '; width]; height];
    for (series_idx, (_, cdf)) in non_empty.iter().enumerate() {
        let glyph = [b'*', b'o', b'+', b'x'][series_idx % 4] as char;
        let columns: Vec<usize> = (0..width)
            .map(|col| {
                let x = lo + span * col as f64 / (width - 1).max(1) as f64;
                let f = cdf.fraction_at_or_below(x);
                (((1.0 - f) * (height - 1) as f64).round() as usize).min(height - 1)
            })
            .collect();
        for (col, row) in columns.into_iter().enumerate() {
            grid[row][col] = glyph;
        }
    }
    for (i, row) in grid.iter().enumerate() {
        let frac = 1.0 - i as f64 / (height - 1) as f64;
        out.push_str(&format!("{frac:5.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("      {}", "-".repeat(width)));
    out.push('\n');
    out.push_str(&format!("      {lo:<12.3}{:>width$.3}\n", hi, width = width - 12));
    for (series_idx, (label, cdf)) in non_empty.iter().enumerate() {
        let glyph = ['*', 'o', '+', 'x'][series_idx % 4];
        out.push_str(&format!(
            "      {glyph} {label}  (n={}, median={:.3})\n",
            cdf.len(),
            cdf.median()
        ));
    }
    out
}

/// Render a horizontal bar chart of labeled counts.
pub fn bar_chart(title: &str, rows: &[(String, f64)], width: usize) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let max = rows.iter().map(|(_, v)| *v).fold(0.0f64, f64::max).max(1e-12);
    let label_width = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, value) in rows {
        let bar_len = ((value / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "  {label:<label_width$} |{} {value:.1}\n",
            "#".repeat(bar_len),
        ));
    }
    out
}

/// Render an aligned text table.
pub fn table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        let mut line = String::from("  ");
        for (i, cell) in cells.iter().enumerate().take(cols) {
            line.push_str(&format!("{cell:<width$}  ", width = widths[i]));
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>()));
    out.push('\n');
    out.push_str(&format!("  {}\n", "-".repeat(widths.iter().sum::<usize>() + 2 * cols)));
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Render an hour-of-day curve pair (Fig 13 style).
pub fn diurnal_plot(title: &str, weekday: &[f64; 24], weekend: &[f64; 24]) -> String {
    let mut rows = Vec::new();
    for h in 0..24 {
        rows.push(vec![
            format!("{h:02}:00"),
            format!("{:.2}", weekday[h]),
            format!("{:.2}", weekend[h]),
        ]);
    }
    table(title, &["hour", "weekday", "weekend"], &rows)
}

/// Render an availability timeline (Fig 6 style): one row per day, `#` for
/// up, `.` for down, at hour resolution.
pub fn timeline(
    title: &str,
    up: &[(simnet::time::SimTime, simnet::time::SimTime)],
    window: collector::windows::Window,
) -> String {
    use simnet::time::SimDuration;
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let first_day = window.start.day_index();
    let last_day = window.end.day_index();
    for day in first_day..=last_day.min(first_day + 60) {
        let day_start = simnet::time::SimTime::from_micros(
            day * simnet::time::MICROS_PER_DAY,
        );
        if day_start >= window.end {
            break;
        }
        let mut line = format!("  d{day:03} ");
        for hour in 0..24 {
            let t0 = day_start + SimDuration::from_hours(hour);
            let t1 = t0 + SimDuration::from_hours(1);
            let covered = up.iter().any(|(s, e)| *s < t1 && *e > t0);
            line.push(if covered { '#' } else { '.' });
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Render a utilization timeseries (Fig 14/16 style): one row per day,
/// one glyph per hour showing that hour's peak utilization relative to
/// capacity (`.` idle through `@` at/above capacity).
pub fn utilization_strip(
    title: &str,
    series: &[(simnet::time::SimTime, f64)],
    capacity: f64,
    window: collector::windows::Window,
) -> String {
    use simnet::time::SimDuration;
    const GLYPHS: [char; 9] = ['.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if capacity <= 0.0 {
        out.push_str("  (no capacity estimate)\n");
        return out;
    }
    let first_day = window.start.day_index();
    let last_day = window.end.day_index();
    for day in first_day..=last_day.min(first_day + 30) {
        let day_start =
            simnet::time::SimTime::from_micros(day * simnet::time::MICROS_PER_DAY);
        if day_start >= window.end {
            break;
        }
        let mut line = format!("  d{day:03} ");
        for hour in 0..24u64 {
            let t0 = day_start + SimDuration::from_hours(hour);
            let t1 = t0 + SimDuration::from_hours(1);
            let peak = series
                .iter()
                .filter(|(at, _)| *at >= t0 && *at < t1)
                .map(|(_, v)| *v)
                .fold(0.0f64, f64::max);
            let level = ((peak / capacity) * (GLYPHS.len() - 1) as f64)
                .round()
                .min((GLYPHS.len() - 1) as f64) as usize;
            line.push(GLYPHS[level]);
        }
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str("  scale: '.'=idle ... '@'=at/above measured capacity, one column per hour\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_plot_contains_medians() {
        let a = Cdf::from_samples([1.0, 2.0, 3.0]);
        let b = Cdf::from_samples([10.0, 20.0]);
        let plot = cdf_plot("Fig X", &[("dev", &a), ("ding", &b)], 40, 10);
        assert!(plot.contains("Fig X"));
        assert!(plot.contains("median=2.000"));
        assert!(plot.contains("median=15.000"));
        assert!(plot.lines().count() > 10);
    }

    #[test]
    fn cdf_plot_handles_empty() {
        let empty = Cdf::from_samples(std::iter::empty());
        let plot = cdf_plot("E", &[("none", &empty)], 20, 5);
        assert!(plot.contains("(no data)"));
    }

    #[test]
    fn bar_chart_scales() {
        let rows = vec![("Apple".to_string(), 60.0), ("Intel".to_string(), 30.0)];
        let chart = bar_chart("Fig 12", &rows, 20);
        let apple_hashes = chart.lines().nth(1).unwrap().matches('#').count();
        let intel_hashes = chart.lines().nth(2).unwrap().matches('#').count();
        assert_eq!(apple_hashes, 20);
        assert_eq!(intel_hashes, 10);
    }

    #[test]
    fn table_aligns() {
        let rows = vec![
            vec!["US".to_string(), "63".to_string()],
            vec!["India".to_string(), "12".to_string()],
        ];
        let text = table("Table 1", &["country", "routers"], &rows);
        assert!(text.contains("country"));
        assert!(text.contains("India"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn utilization_strip_levels() {
        use collector::windows::Window;
        use simnet::time::{SimDuration, SimTime};
        let window = Window {
            start: SimTime::EPOCH,
            end: SimTime::EPOCH + SimDuration::from_days(1),
        };
        let series = vec![
            (SimTime::EPOCH + SimDuration::from_hours(2), 10.0e6), // at capacity
            (SimTime::EPOCH + SimDuration::from_hours(5), 5.0e6),  // half
        ];
        let strip = utilization_strip("u", &series, 10.0e6, window);
        let row = strip.lines().nth(1).unwrap();
        let glyphs: Vec<char> = row.chars().skip(7).collect();
        assert_eq!(glyphs[2], '@', "full-capacity hour");
        assert_eq!(glyphs[5], '+', "half-capacity hour");
        assert_eq!(glyphs[0], '.', "idle hour");
    }

    #[test]
    fn timeline_marks_up_hours() {
        use collector::windows::Window;
        use simnet::time::{SimDuration, SimTime};
        let window = Window {
            start: SimTime::EPOCH,
            end: SimTime::EPOCH + SimDuration::from_days(2),
        };
        let up = vec![(
            SimTime::EPOCH + SimDuration::from_hours(6),
            SimTime::EPOCH + SimDuration::from_hours(12),
        )];
        let text = timeline("Fig 6", &up, window);
        let day0 = text.lines().nth(1).unwrap();
        assert!(day0.contains("######"));
        assert!(day0.starts_with("  d000 ......#"));
    }
}
