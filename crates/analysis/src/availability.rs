//! §4 — Availability: downtime frequency and duration from the Heartbeats
//! data set, exactly as the paper defines them: a *downtime* is a gap of
//! ten minutes or more in a router's heartbeat log.

use crate::stats::Cdf;
use collector::windows::Window;
use collector::Datasets;
use firmware::records::RouterId;
use household::{Country, Region};
use simnet::time::{SimDuration, SimTime};

/// The paper's downtime threshold.
pub const DOWNTIME_THRESHOLD: SimDuration = SimDuration::from_mins(10);
/// Minimum observed fraction of the window for a router to be analyzed
/// (the paper required ≥ 25 days of the ~197-day window).
pub const MIN_OBSERVED_FRACTION: f64 = 25.0 / 197.0;

/// Per-router downtime summary.
#[derive(Debug, Clone)]
pub struct RouterAvailability {
    /// The router.
    pub router: RouterId,
    /// Its country.
    pub country: Country,
    /// Developed or developing.
    pub region: Region,
    /// Observation span: first to last heartbeat within the window.
    pub observed: SimDuration,
    /// Downtime events (gaps ≥ 10 min) within the observation span.
    pub downtimes: Vec<(SimTime, SimTime)>,
    /// Average downtimes per observed day.
    pub downtimes_per_day: f64,
    /// Fraction of the observation span covered by heartbeats (§4.2's
    /// "router on X% of the time").
    pub coverage: f64,
}

impl RouterAvailability {
    /// Downtime durations in seconds.
    pub fn durations_secs(&self) -> impl Iterator<Item = f64> + '_ {
        self.downtimes.iter().map(|(s, e)| e.since(*s).as_secs_f64())
    }
}

/// Compute per-router availability over `window`, applying the paper's
/// minimum-observation filter.
pub fn per_router(data: &Datasets, window: Window) -> Vec<RouterAvailability> {
    let mut out = Vec::new();
    for meta in &data.routers {
        let Some(log) = data.heartbeats.get(&meta.router) else {
            continue;
        };
        let Some((first, last)) = log.extent() else {
            continue;
        };
        let start = first.max(window.start);
        let end = last.min(window.end);
        if end <= start {
            continue;
        }
        let observed = end.since(start);
        if observed.as_secs_f64() < window.duration().as_secs_f64() * MIN_OBSERVED_FRACTION {
            continue;
        }
        let downtimes = log.downtimes(start, end, DOWNTIME_THRESHOLD);
        let days = observed.as_days_f64();
        out.push(RouterAvailability {
            router: meta.router,
            country: meta.country,
            region: meta.country.region(),
            observed,
            downtimes_per_day: downtimes.len() as f64 / days,
            coverage: log.coverage(start, end),
            downtimes,
        });
    }
    out
}

/// Figure 3: CDFs of average downtimes per day, by region.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// Developed-country distribution.
    pub developed: Cdf,
    /// Developing-country distribution.
    pub developing: Cdf,
}

/// Compute Figure 3.
pub fn fig3(routers: &[RouterAvailability]) -> Fig3 {
    let split = |region: Region| {
        Cdf::from_samples(
            routers.iter().filter(|r| r.region == region).map(|r| r.downtimes_per_day),
        )
    };
    Fig3 { developed: split(Region::Developed), developing: split(Region::Developing) }
}

/// Figure 4: CDFs of downtime duration (seconds), by region.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Developed-country distribution.
    pub developed: Cdf,
    /// Developing-country distribution.
    pub developing: Cdf,
}

/// Compute Figure 4.
pub fn fig4(routers: &[RouterAvailability]) -> Fig4 {
    let split = |region: Region| {
        Cdf::from_samples(
            routers
                .iter()
                .filter(|r| r.region == region)
                .flat_map(|r| r.durations_secs().collect::<Vec<_>>()),
        )
    };
    Fig4 { developed: split(Region::Developed), developing: split(Region::Developing) }
}

/// One country's point in Figure 5's scatter.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Point {
    /// ISO code, as the paper labels markers.
    pub code: &'static str,
    /// Per-capita GDP (PPP, international dollars).
    pub gdp: u32,
    /// Median over the country's routers of the number of downtimes.
    pub median_downtimes: f64,
    /// Median downtime duration in seconds (marker size in the paper).
    pub median_duration_secs: f64,
    /// Routers contributing.
    pub routers: usize,
    /// Region (the paper draws a dividing line).
    pub region: Region,
}

/// Figure 5: median downtime count vs per-capita GDP, for countries with
/// at least three analyzable routers.
pub fn fig5(routers: &[RouterAvailability]) -> Vec<Fig5Point> {
    let mut points = Vec::new();
    for country in Country::ALL {
        let group: Vec<&RouterAvailability> =
            routers.iter().filter(|r| r.country == country).collect();
        if group.len() < 3 {
            continue;
        }
        let counts: Vec<f64> = group.iter().map(|r| r.downtimes.len() as f64).collect();
        let durations: Vec<f64> =
            group.iter().flat_map(|r| r.durations_secs().collect::<Vec<_>>()).collect();
        points.push(Fig5Point {
            code: country.code(),
            gdp: country.gdp_ppp_per_capita(),
            median_downtimes: crate::stats::median(&counts),
            median_duration_secs: crate::stats::median(&durations),
            routers: group.len(),
            region: country.region(),
        });
    }
    points.sort_by_key(|p| p.gdp);
    points
}

/// Figure 6: an availability timeline for one router — the intervals when
/// heartbeats were arriving, for rendering as the paper's green bars.
pub fn fig6_timeline(data: &Datasets, router: RouterId, window: Window) -> Vec<(SimTime, SimTime)> {
    let Some(log) = data.heartbeats.get(&router) else {
        return Vec::new();
    };
    log.runs()
        .iter()
        .filter(|r| r.last > window.start && r.first < window.end)
        .map(|r| (r.first.max(window.start), r.last.min(window.end)))
        .collect()
}

/// Pick the three archetype homes of Figure 6 from the data alone:
/// (a) an always-on home (highest coverage), (b) an appliance-mode home
/// (lowest coverage with many distinct runs), (c) a flaky-connectivity
/// home (mid coverage, many downtimes, but whose Uptime reports prove the
/// router stayed powered).
pub fn fig6_archetypes(
    data: &Datasets,
    routers: &[RouterAvailability],
) -> (Option<RouterId>, Option<RouterId>, Option<RouterId>) {
    fig6_archetypes_with(&crate::index::DataIndex::new(data), routers)
}

/// [`fig6_archetypes`] over a prebuilt index: the flaky-home check reads
/// each candidate's own uptime slice instead of re-scanning the table.
pub fn fig6_archetypes_with(
    idx: &crate::index::DataIndex,
    routers: &[RouterAvailability],
) -> (Option<RouterId>, Option<RouterId>, Option<RouterId>) {
    let always_on = routers
        .iter()
        .max_by(|a, b| a.coverage.partial_cmp(&b.coverage).expect("finite"))
        .map(|r| r.router);
    let appliance = routers
        .iter()
        .filter(|r| r.coverage < 0.6 && r.downtimes.len() > 10)
        .min_by(|a, b| a.coverage.partial_cmp(&b.coverage).expect("finite"))
        .map(|r| r.router);
    // Flaky: many downtimes yet the router reports long uptimes (powered
    // through the outages).
    let flaky = routers
        .iter()
        .filter(|r| r.downtimes_per_day > 0.2 && r.coverage > 0.6)
        .filter(|r| {
            idx.uptime(r.router).iter().any(|u| u.uptime > SimDuration::from_days(7))
        })
        .max_by(|a, b| {
            a.downtimes_per_day.partial_cmp(&b.downtimes_per_day).expect("finite")
        })
        .map(|r| r.router);
    (always_on, appliance, flaky)
}

/// §4.2's coverage-by-country medians (e.g. "the median US user has his
/// router on 98.25% of the time").
pub fn median_coverage_by_country(routers: &[RouterAvailability]) -> Vec<(Country, f64, usize)> {
    let mut out = Vec::new();
    for country in Country::ALL {
        let cov: Vec<f64> =
            routers.iter().filter(|r| r.country == country).map(|r| r.coverage).collect();
        if !cov.is_empty() {
            out.push((country, crate::stats::median(&cov), cov.len()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use collector::{Collector, RouterMeta};
    use firmware::records::HeartbeatRecord;

    fn mins(m: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_mins(m)
    }

    /// Build a small synthetic dataset: router 0 (US) with one 30-minute
    /// gap; router 1 (IN) with gaps every few hours.
    fn synthetic() -> Datasets {
        let collector = Collector::new();
        collector.register(RouterMeta {
            router: RouterId(0),
            country: Country::UnitedStates,
            traffic_consent: false,
        });
        collector.register(RouterMeta {
            router: RouterId(1),
            country: Country::India,
            traffic_consent: false,
        });
        let total_mins = 10 * 24 * 60;
        for i in 0..total_mins {
            // US: continuous except minutes 1000..1030.
            if !(1_000..1_030).contains(&i) {
                collector
                    .ingest_heartbeat(HeartbeatRecord { router: RouterId(0), at: mins(i) });
            }
            // India: 20-minute outage at the top of every 6 hours.
            if i % 360 >= 20 {
                collector
                    .ingest_heartbeat(HeartbeatRecord { router: RouterId(1), at: mins(i) });
            }
        }
        collector.snapshot()
    }

    fn window() -> Window {
        Window { start: SimTime::EPOCH, end: mins(10 * 24 * 60) }
    }

    #[test]
    fn downtime_counting() {
        let data = synthetic();
        let routers = per_router(&data, window());
        assert_eq!(routers.len(), 2);
        let us = routers.iter().find(|r| r.country == Country::UnitedStates).unwrap();
        let india = routers.iter().find(|r| r.country == Country::India).unwrap();
        assert_eq!(us.downtimes.len(), 1);
        assert_eq!(india.downtimes.len(), 10 * 4 - 1, "one 20-min gap per 6h, minus the leading one");
        assert!(us.coverage > india.coverage);
        assert!(india.downtimes_per_day > 3.0);
        assert!(us.downtimes_per_day < 0.2);
    }

    #[test]
    fn fig3_separates_regions() {
        let data = synthetic();
        let routers = per_router(&data, window());
        let fig = fig3(&routers);
        assert!(fig.developing.median() > 10.0 * fig.developed.median().max(0.01));
    }

    #[test]
    fn fig4_durations() {
        let data = synthetic();
        let routers = per_router(&data, window());
        let fig = fig4(&routers);
        // US gap: 30 minutes plus the heartbeat spacing on each side.
        assert!((fig.developed.median() - 30.0 * 60.0).abs() < 120.0);
        assert!((fig.developing.median() - 20.0 * 60.0).abs() < 120.0);
    }

    #[test]
    fn fig5_requires_three_routers() {
        let data = synthetic();
        let routers = per_router(&data, window());
        assert!(fig5(&routers).is_empty(), "no country reaches three routers");
    }

    #[test]
    fn short_lived_routers_filtered() {
        let collector = Collector::new();
        collector.register(RouterMeta {
            router: RouterId(5),
            country: Country::Brazil,
            traffic_consent: false,
        });
        // Only 10 minutes of heartbeats in a 10-day window.
        for i in 0..10 {
            collector.ingest_heartbeat(HeartbeatRecord { router: RouterId(5), at: mins(i) });
        }
        let data = collector.snapshot();
        assert!(per_router(&data, window()).is_empty());
    }

    #[test]
    fn timeline_matches_runs() {
        let data = synthetic();
        let tl = fig6_timeline(&data, RouterId(0), window());
        assert_eq!(tl.len(), 2, "one gap splits the timeline in two");
        assert_eq!(tl[0].0, mins(0));
        assert_eq!(tl[1].0, mins(1_030));
    }

    #[test]
    fn coverage_by_country_ordering() {
        let data = synthetic();
        let routers = per_router(&data, window());
        let cov = median_coverage_by_country(&routers);
        let us = cov.iter().find(|(c, ..)| *c == Country::UnitedStates).unwrap().1;
        let india = cov.iter().find(|(c, ..)| *c == Country::India).unwrap().1;
        assert!(us > 0.99);
        assert!(india < 0.96);
    }
}
