//! # analysis — every figure and table of the paper, recomputed
//!
//! One function per artifact, each consuming only the collected
//! [`collector::Datasets`] (never simulator ground truth):
//!
//! * [`availability`] — §4: Figs 3–6, downtime extraction;
//! * [`infrastructure`] — §5: Figs 7–12, Table 5;
//! * [`usage`] — §6: Figs 13–20;
//! * [`highlights`] — Tables 1–4 and 6;
//! * [`index`] — the shared per-router [`DataIndex`] the figures read
//!   through instead of re-scanning whole tables;
//! * [`incremental`] — stream-mode [`incremental::IncrementalReport`]:
//!   per-figure partial state folded window by window, finalized to the
//!   byte-identical batch report;
//! * [`stats`] — CDFs, quantiles, moments;
//! * [`artifacts`] — correlated-gap detection separating collector-side
//!   failures from genuine home downtime (§3.3's limitation, auditable);
//! * [`caps`] — the uCap usage-cap manager (paper ref [24]);
//! * [`natchar`] — NAT-type characterization and CGN detection from the
//!   firmware's STUN-style probe tables;
//! * [`fingerprint`] — §7's device-fingerprinting future work, implemented;
//! * [`render`] — plain-text plots and tables;
//! * [`report`] — [`report::StudyReport`], the whole paper in one struct.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
pub mod availability;
pub mod caps;
pub mod fingerprint;
pub mod highlights;
pub mod incremental;
pub mod index;
pub mod latency;
pub mod infrastructure;
pub mod natchar;
pub mod render;
pub mod report;
pub mod stats;
pub mod usage;

pub use incremental::IncrementalReport;
pub use index::DataIndex;
pub use report::{ReportWindows, StudyReport};
pub use stats::Cdf;
