//! Shared helpers for the benchmark harness live in the bench library.
#![forbid(unsafe_code)]
pub mod shared;
