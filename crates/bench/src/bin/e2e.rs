//! `e2e` — the end-to-end simulation benchmark.
//!
//! Runs a fixed-seed quick study, reports per-phase wall-clock timings and
//! the aggregate ingestion rate (records/sec over the simulate phase), and
//! appends the measurement to `BENCH_simulate.json` at the repository root.
//! The committed file carries before/after entries across optimization
//! work, and `scripts/bench.sh` diffs a fresh run against it to catch
//! regressions.
//!
//! ```text
//! e2e [--seed N] [--days D] [--threads T] [--label STR]
//!     [--output FILE] [--dry-run]
//! ```

use bismark::study::{run_study, StudyConfig};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// One benchmark measurement, as stored in `BENCH_simulate.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Free-form tag: "before", "after", a commit subject, ...
    pub label: String,
    /// Study seed.
    pub seed: u64,
    /// Virtual days simulated.
    pub days: u64,
    /// Worker threads used.
    pub threads: u64,
    /// Total records across all data sets.
    pub records: u64,
    /// Wall-clock seconds simulating and ingesting.
    pub simulate_secs: f64,
    /// Wall-clock seconds merging shards into sorted data sets.
    pub snapshot_secs: f64,
    /// Wall-clock seconds computing and rendering the full report.
    pub analyze_secs: f64,
    /// records / simulate_secs — the headline throughput number.
    pub records_per_sec: f64,
}

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn default_output() -> PathBuf {
    // crates/bench -> repository root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_simulate.json")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = arg_value(&args, "--seed").map_or(7, |v| v.parse().expect("--seed N"));
    let days: u64 = arg_value(&args, "--days").map_or(20, |v| v.parse().expect("--days D"));
    let threads: usize =
        arg_value(&args, "--threads").map_or(1, |v| v.parse().expect("--threads T"));
    let label = arg_value(&args, "--label").unwrap_or_else(|| String::from("after"));
    let output = arg_value(&args, "--output").map_or_else(default_output, PathBuf::from);
    let dry_run = args.iter().any(|a| a == "--dry-run");

    let mut config = StudyConfig::quick(seed, days);
    config.threads = threads;
    eprintln!(
        "e2e bench: seed {seed}, {days} virtual days, {threads} thread{}",
        if threads == 1 { "" } else { "s" }
    );

    let study = run_study(&config);
    let analyze_started = std::time::Instant::now();
    let report = study.report();
    let rendered = report.render(&study.datasets);
    let analyze = analyze_started.elapsed();
    assert!(!rendered.is_empty(), "report must render");

    let records = study.datasets.record_count() as u64;
    let simulate_secs = study.timings.simulate.as_secs_f64();
    let entry = BenchEntry {
        label,
        seed,
        days,
        threads: threads as u64,
        records,
        simulate_secs,
        snapshot_secs: study.timings.snapshot.as_secs_f64(),
        analyze_secs: analyze.as_secs_f64(),
        records_per_sec: records as f64 / simulate_secs,
    };
    eprintln!(
        "simulate {:.2}s / snapshot {:.2}s / analyze {:.2}s — {} records, {:.0} records/sec",
        entry.simulate_secs,
        entry.snapshot_secs,
        entry.analyze_secs,
        entry.records,
        entry.records_per_sec
    );

    if dry_run {
        println!("{}", serde_json::to_string_pretty(&entry).expect("entry serializes"));
        return;
    }
    let mut entries: Vec<BenchEntry> = match std::fs::read_to_string(&output) {
        Ok(text) => serde_json::from_str(&text).expect("BENCH_simulate.json parses"),
        Err(_) => Vec::new(),
    };
    entries.push(entry);
    let json = serde_json::to_string_pretty(&entries).expect("entries serialize");
    std::fs::write(&output, json + "\n").expect("write benchmark file");
    eprintln!("appended to {}", output.display());
}
