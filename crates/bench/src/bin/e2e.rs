//! `e2e` — the end-to-end simulation benchmark.
//!
//! Runs a fixed-seed quick study, reports per-phase wall-clock timings and
//! the aggregate ingestion rate (records/sec over the simulate phase), and
//! appends the measurement to `BENCH_simulate.json` at the repository root.
//! The committed file carries before/after entries across optimization
//! work, and `scripts/bench.sh` diffs a fresh run against it to catch
//! regressions.
//!
//! ```text
//! e2e [--seed N] [--days D] [--homes H] [--threads T] [--label STR]
//!     [--spill-budget BYTES[KiB|MiB|GiB]] [--faults SCENARIO]
//!     [--cgn SCENARIO] [--stream CADENCE] [--output FILE] [--dry-run]
//! ```
//!
//! With `--faults` the study runs under a faultlab scenario: the reliable
//! upload queue engages and the entry records the scenario name, so the
//! committed file can carry fault-free vs faulted pairs demonstrating the
//! pipeline's throughput cost. `--cgn` does the same for the carrier-grade
//! NAT tier (second translation hop plus the STUN probe and hole-punch
//! experiments); entries carry a `cgn` key the regression gate skips.
//!
//! With `--stream CADENCE` (`90m`, `36h`, `1d`) the study runs in
//! continuous-operation mode: the entry additionally records the mean
//! per-window incremental update cost next to `analyze_secs` (here the
//! cost of one *full* recompute on the final datasets), pricing the
//! steady-state saving of the incremental path. Stream entries carry a
//! `stream` key the regression gate skips.

use bismark::study::{run_study, run_study_stream, StudyConfig};
use faultlab::FaultScenario;
use serde::value::Value;
use simnet::time::SimDuration;
use std::path::PathBuf;

/// One benchmark measurement, as stored in `BENCH_simulate.json`.
///
/// Serialization is hand-written: `faults` must be *absent* (not `null`)
/// in fault-free entries, and entries committed before the field existed
/// must keep parsing.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Free-form tag: "before", "after", a commit subject, ...
    pub label: String,
    /// Study seed.
    pub seed: u64,
    /// Virtual days simulated.
    pub days: u64,
    /// Worker threads used.
    pub threads: u64,
    /// Total records across all data sets.
    pub records: u64,
    /// Wall-clock seconds simulating and ingesting.
    pub simulate_secs: f64,
    /// Wall-clock seconds merging shards into sorted data sets.
    pub snapshot_secs: f64,
    /// Wall-clock seconds computing and rendering the full report.
    pub analyze_secs: f64,
    /// records / simulate_secs — the headline throughput number.
    pub records_per_sec: f64,
    /// Faultlab scenario active during the run, if any. Absent in
    /// fault-free entries (including all entries predating faultlab).
    pub faults: Option<String>,
    /// CGN scenario active during the run, if any. Absent in CGN-free
    /// entries (including all entries predating the CGN tier).
    pub cgn: Option<String>,
    /// Deployment size when scaled past the paper's 126 homes. Absent for
    /// the calibrated Table 1 deployment (including pre-scaling entries).
    pub homes: Option<u64>,
    /// Out-of-core memory budget active during the run (the raw
    /// `--spill-budget` string, e.g. `"64MiB"`). Absent for unbounded
    /// in-memory runs — `bench.sh`'s baseline gate skips spilled entries.
    pub spill: Option<String>,
    /// Stream-mode window cadence (the raw `--stream` string, e.g.
    /// `"1d"`). Absent for batch runs — `bench.sh`'s baseline gate skips
    /// stream entries.
    pub stream: Option<String>,
    /// Stream windows run. Present only with `stream`.
    pub windows: Option<u64>,
    /// Mean per-window incremental cost in seconds (delta fold plus
    /// rolling-report finalize). Present only with `stream`; compare
    /// against `analyze_secs`, which for stream entries times one full
    /// recompute of the report on the final datasets.
    pub window_update_secs: Option<f64>,
}

impl serde::Serialize for BenchEntry {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            (String::from("label"), serde::Serialize::to_value(&self.label)),
            (String::from("seed"), serde::Serialize::to_value(&self.seed)),
            (String::from("days"), serde::Serialize::to_value(&self.days)),
            (String::from("threads"), serde::Serialize::to_value(&self.threads)),
            (String::from("records"), serde::Serialize::to_value(&self.records)),
            (String::from("simulate_secs"), serde::Serialize::to_value(&self.simulate_secs)),
            (String::from("snapshot_secs"), serde::Serialize::to_value(&self.snapshot_secs)),
            (String::from("analyze_secs"), serde::Serialize::to_value(&self.analyze_secs)),
            (String::from("records_per_sec"), serde::Serialize::to_value(&self.records_per_sec)),
        ];
        if let Some(faults) = &self.faults {
            entries.push((String::from("faults"), serde::Serialize::to_value(faults)));
        }
        if let Some(cgn) = &self.cgn {
            entries.push((String::from("cgn"), serde::Serialize::to_value(cgn)));
        }
        if let Some(homes) = &self.homes {
            entries.push((String::from("homes"), serde::Serialize::to_value(homes)));
        }
        if let Some(spill) = &self.spill {
            entries.push((String::from("spill"), serde::Serialize::to_value(spill)));
        }
        if let Some(stream) = &self.stream {
            entries.push((String::from("stream"), serde::Serialize::to_value(stream)));
        }
        if let Some(windows) = &self.windows {
            entries.push((String::from("windows"), serde::Serialize::to_value(windows)));
        }
        if let Some(cost) = &self.window_update_secs {
            entries.push((String::from("window_update_secs"), serde::Serialize::to_value(cost)));
        }
        Value::Map(entries)
    }
}

impl<'de> serde::Deserialize<'de> for BenchEntry {
    fn from_value(v: &Value) -> Result<BenchEntry, serde::de::Error> {
        let entries =
            v.as_map().ok_or_else(|| serde::de::Error::expected("map", "BenchEntry", v))?;
        let faults = match entries.iter().find(|(k, _)| k == "faults") {
            Some((_, v)) => serde::Deserialize::from_value(v)?,
            None => None,
        };
        let cgn = match entries.iter().find(|(k, _)| k == "cgn") {
            Some((_, v)) => serde::Deserialize::from_value(v)?,
            None => None,
        };
        let homes = match entries.iter().find(|(k, _)| k == "homes") {
            Some((_, v)) => serde::Deserialize::from_value(v)?,
            None => None,
        };
        let spill = match entries.iter().find(|(k, _)| k == "spill") {
            Some((_, v)) => serde::Deserialize::from_value(v)?,
            None => None,
        };
        let stream = match entries.iter().find(|(k, _)| k == "stream") {
            Some((_, v)) => serde::Deserialize::from_value(v)?,
            None => None,
        };
        let windows = match entries.iter().find(|(k, _)| k == "windows") {
            Some((_, v)) => serde::Deserialize::from_value(v)?,
            None => None,
        };
        let window_update_secs = match entries.iter().find(|(k, _)| k == "window_update_secs") {
            Some((_, v)) => serde::Deserialize::from_value(v)?,
            None => None,
        };
        Ok(BenchEntry {
            label: serde::de::field(entries, "label", "BenchEntry")?,
            seed: serde::de::field(entries, "seed", "BenchEntry")?,
            days: serde::de::field(entries, "days", "BenchEntry")?,
            threads: serde::de::field(entries, "threads", "BenchEntry")?,
            records: serde::de::field(entries, "records", "BenchEntry")?,
            simulate_secs: serde::de::field(entries, "simulate_secs", "BenchEntry")?,
            snapshot_secs: serde::de::field(entries, "snapshot_secs", "BenchEntry")?,
            analyze_secs: serde::de::field(entries, "analyze_secs", "BenchEntry")?,
            records_per_sec: serde::de::field(entries, "records_per_sec", "BenchEntry")?,
            faults,
            cgn,
            homes,
            spill,
            stream,
            windows,
            window_update_secs,
        })
    }
}

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

/// `4GiB` / `512MiB` / `64KiB` / plain bytes → byte count.
fn parse_bytes(raw: &str) -> Option<u64> {
    let split = raw.find(|c: char| !c.is_ascii_digit()).unwrap_or(raw.len());
    let (digits, unit) = raw.split_at(split);
    let n: u64 = digits.parse().ok()?;
    let scale: u64 = match unit {
        "" | "B" => 1,
        "KiB" => 1 << 10,
        "MiB" => 1 << 20,
        "GiB" => 1 << 30,
        _ => return None,
    };
    n.checked_mul(scale)
}

/// `90m` / `36h` / `2d` → virtual-time cadence.
fn parse_cadence(raw: &str) -> Option<SimDuration> {
    let split = raw.find(|c: char| !c.is_ascii_digit())?;
    let (digits, unit) = raw.split_at(split);
    let n: u64 = digits.parse().ok()?;
    let dur = match unit {
        "m" => SimDuration::from_mins(n),
        "h" => SimDuration::from_hours(n),
        "d" => SimDuration::from_days(n),
        _ => return None,
    };
    (!dur.is_zero()).then_some(dur)
}

fn default_output() -> PathBuf {
    // crates/bench -> repository root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_simulate.json")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = arg_value(&args, "--seed").map_or(7, |v| v.parse().expect("--seed N"));
    let days: u64 = arg_value(&args, "--days").map_or(20, |v| v.parse().expect("--days D"));
    let threads: usize =
        arg_value(&args, "--threads").map_or(1, |v| v.parse().expect("--threads T"));
    let homes: Option<u32> = arg_value(&args, "--homes").map(|v| v.parse().expect("--homes H"));
    let label = arg_value(&args, "--label").unwrap_or_else(|| String::from("after"));
    let output = arg_value(&args, "--output").map_or_else(default_output, PathBuf::from);
    let dry_run = args.iter().any(|a| a == "--dry-run");
    let faults: Option<FaultScenario> = arg_value(&args, "--faults").map(|v| {
        v.parse().unwrap_or_else(|err| {
            eprintln!("e2e: {err}");
            std::process::exit(2);
        })
    });
    let cgn: Option<cgn::CgnScenario> = arg_value(&args, "--cgn").map(|v| {
        v.parse().unwrap_or_else(|err| {
            eprintln!("e2e: {err}");
            std::process::exit(2);
        })
    });
    // Raw strings kept verbatim for the JSON entry; parsed for the run.
    let stream = arg_value(&args, "--stream");
    let cadence = stream.as_deref().map(|raw| {
        parse_cadence(raw).unwrap_or_else(|| {
            eprintln!("e2e: --stream expects a cadence like 90m, 36h, or 1d, got {raw:?}");
            std::process::exit(2);
        })
    });
    let spill = arg_value(&args, "--spill-budget");
    let spill_budget = spill.as_deref().map(|raw| {
        parse_bytes(raw).unwrap_or_else(|| {
            eprintln!("e2e: --spill-budget expects BYTES with optional KiB/MiB/GiB, got {raw:?}");
            std::process::exit(2);
        })
    });

    let mut config = StudyConfig::quick(seed, days);
    if let Some(homes) = homes {
        config.homes = homes;
    }
    config.threads = threads;
    config.faults = faults;
    config.cgn = cgn;
    if let Some(budget_bytes) = spill_budget {
        config.spill = Some(collector::SpillConfig { budget_bytes, dir: None });
    }
    eprintln!(
        "e2e bench: seed {seed}, {days} virtual days, {} homes, {threads} thread{}{}{}{}{}",
        config.homes,
        if threads == 1 { "" } else { "s" },
        faults.map_or_else(String::new, |f| format!(", faults: {f}")),
        cgn.map_or_else(String::new, |c| format!(", cgn: {c}")),
        spill.as_deref().map_or_else(String::new, |s| format!(", spill budget: {s}")),
        stream.as_deref().map_or_else(String::new, |s| format!(", stream cadence: {s}"))
    );

    // In stream mode, tally the per-window incremental cost (delta fold +
    // rolling-report finalize) as the study runs; the analyze phase below
    // then times a *full* recompute on the final datasets, so the entry
    // carries both sides of the steady-state comparison.
    let mut incremental = std::time::Duration::ZERO;
    let mut windows_run: u64 = 0;
    let study = match cadence {
        Some(cadence) => {
            let out = run_study_stream(&config, cadence, |w| {
                incremental += w.update_cost + w.finalize_cost;
                windows_run += 1;
            });
            out.study
        }
        None => run_study(&config),
    };
    let analyze_started = std::time::Instant::now();
    let report = study.report();
    let rendered = report.render(&study.datasets);
    let analyze = analyze_started.elapsed();
    assert!(!rendered.is_empty(), "report must render");

    let records = study.datasets.record_count() as u64;
    let simulate_secs = study.timings.simulate.as_secs_f64();
    let entry = BenchEntry {
        label,
        seed,
        days,
        threads: threads as u64,
        records,
        simulate_secs,
        snapshot_secs: study.timings.snapshot.as_secs_f64(),
        analyze_secs: analyze.as_secs_f64(),
        records_per_sec: records as f64 / simulate_secs,
        faults: faults.map(|f| f.to_string()),
        cgn: cgn.map(|c| c.to_string()),
        homes: homes.filter(|&h| h != 126).map(u64::from),
        spill,
        stream,
        windows: (windows_run > 0).then_some(windows_run),
        window_update_secs: (windows_run > 0)
            .then(|| incremental.as_secs_f64() / windows_run as f64),
    };
    if let (Some(mean), analyze_secs) = (entry.window_update_secs, analyze.as_secs_f64()) {
        eprintln!(
            "steady-state: {} windows, mean incremental {:.1} ms/window vs full recompute \
             {:.1} ms ({:.1}x cheaper)",
            windows_run,
            mean * 1_000.0,
            analyze_secs * 1_000.0,
            analyze_secs / mean
        );
    }
    if let Some(stats) = &study.spill {
        eprintln!(
            "spill: {} segments, {:.1} MiB written",
            stats.segments,
            stats.bytes_written as f64 / (1024.0 * 1024.0)
        );
        assert!(stats.error.is_none(), "spill I/O failed: {:?}", stats.error);
    }
    eprintln!(
        "simulate {:.2}s / snapshot {:.2}s / analyze {:.2}s — {} records, {:.0} records/sec",
        entry.simulate_secs,
        entry.snapshot_secs,
        entry.analyze_secs,
        entry.records,
        entry.records_per_sec
    );

    if dry_run {
        println!("{}", serde_json::to_string_pretty(&entry).expect("entry serializes"));
        return;
    }
    let mut entries: Vec<BenchEntry> = match std::fs::read_to_string(&output) {
        Ok(text) => serde_json::from_str(&text).expect("BENCH_simulate.json parses"),
        Err(_) => Vec::new(),
    };
    entries.push(entry);
    let json = serde_json::to_string_pretty(&entries).expect("entries serialize");
    std::fs::write(&output, json + "\n").expect("write benchmark file");
    eprintln!("appended to {}", output.display());
}
