//! One study, shared by every figure/table bench so the harness measures
//! the analysis (the part that regenerates each artifact) without
//! re-simulating the world per iteration. The study itself is benchmarked
//! separately in `benches/study.rs`.

use analysis::{ReportWindows, StudyReport};
use bismark::study::{run_study, StudyConfig, StudyOutput};
use std::sync::OnceLock;

/// The shared reduced study: the full 126-home deployment over 20 virtual
/// days, seed 2013.
pub fn study() -> &'static StudyOutput {
    static STUDY: OnceLock<StudyOutput> = OnceLock::new();
    STUDY.get_or_init(|| run_study(&StudyConfig::quick(2013, 20)))
}

/// The analysis windows for the shared study.
pub fn windows() -> ReportWindows {
    study().windows.report_windows()
}

/// A fully computed report over the shared study (for render benches).
pub fn report() -> &'static StudyReport {
    static REPORT: OnceLock<StudyReport> = OnceLock::new();
    REPORT.get_or_init(|| study().report())
}

/// Print a figure's regenerated content once (criterion runs closures many
/// times; the artifact only needs to be shown once per bench run).
pub fn print_once(tag: &str, body: impl FnOnce() -> String) {
    use std::collections::HashSet;
    use std::sync::Mutex;
    static PRINTED: OnceLock<Mutex<HashSet<String>>> = OnceLock::new();
    let printed = PRINTED.get_or_init(|| Mutex::new(HashSet::new()));
    let mut guard = printed.lock().expect("print lock");
    if guard.insert(tag.to_string()) {
        println!("\n===== {tag} =====\n{}", body());
    }
}
