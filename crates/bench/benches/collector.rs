//! Collector ingestion and merge benches: the sharded server's hot paths —
//! per-record vs batched uploads, contended multi-thread ingestion, and
//! snapshot/merge throughput over a deployment-sized dataset.

use collector::{Collector, RouterMeta};
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use firmware::records::{HeartbeatRecord, Record, RouterId, UptimeRecord};
use household::Country;
use simnet::time::{SimDuration, SimTime};

fn mins(m: u64) -> SimTime {
    SimTime::EPOCH + SimDuration::from_mins(m)
}

fn uptime_records(router: RouterId, n: u64) -> Vec<Record> {
    (0..n)
        .map(|m| {
            Record::Uptime(UptimeRecord {
                router,
                at: mins(m),
                uptime: SimDuration::from_mins(m),
            })
        })
        .collect()
}

fn registered(routers: u32) -> Collector {
    let collector = Collector::new();
    for r in 0..routers {
        collector.register(RouterMeta {
            router: RouterId(r),
            country: Country::UnitedStates,
            traffic_consent: false,
        });
    }
    collector
}

const RECORDS_PER_HOME: u64 = 5_000;

/// One home's upload, record-at-a-time vs batched vs through a shard handle.
fn bench_ingest_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("collector_ingest_5k");
    group.sample_size(20);
    group.bench_function("single_records", |b| {
        b.iter_batched(
            || uptime_records(RouterId(7), RECORDS_PER_HOME),
            |records| {
                let collector = registered(1);
                for record in records {
                    collector.ingest(record);
                }
                black_box(collector.snapshot().record_count())
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("batch", |b| {
        b.iter_batched(
            || uptime_records(RouterId(7), RECORDS_PER_HOME),
            |records| {
                let collector = registered(1);
                collector.ingest_batch(records);
                black_box(collector.snapshot().record_count())
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("shard_handle_batch", |b| {
        b.iter_batched(
            || uptime_records(RouterId(7), RECORDS_PER_HOME),
            |records| {
                let collector = registered(1);
                collector.shard_handle(RouterId(7)).ingest_batch(records);
                black_box(collector.snapshot().record_count())
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// Eight upload threads hammering the collector at once, deployment-style:
/// each thread owns a slice of the 126 routers and interleaves heartbeats
/// with small record batches through its routers' shard handles.
fn bench_contended_ingest(c: &mut Criterion) {
    const THREADS: u32 = 8;
    const ROUTERS: u32 = 126;
    const HEARTBEATS: u64 = 500;
    let mut group = c.benchmark_group("collector_contended");
    group.sample_size(10);
    group.bench_function("8_threads_126_homes", |b| {
        b.iter(|| {
            let collector = registered(ROUTERS);
            std::thread::scope(|scope| {
                for t in 0..THREADS {
                    let collector = &collector;
                    scope.spawn(move || {
                        for r in (t..ROUTERS).step_by(THREADS as usize) {
                            let router = RouterId(r);
                            let shard = collector.shard_handle(router);
                            for m in 0..HEARTBEATS {
                                shard.ingest_heartbeat(HeartbeatRecord { router, at: mins(m) });
                                if m % 100 == 99 {
                                    shard.ingest_batch(uptime_records(router, 50));
                                }
                            }
                        }
                    });
                }
            });
            black_box(collector.into_datasets().record_count())
        })
    });
    group.finish();
}

/// Snapshot (clone + merge) vs consuming merge over a full-deployment-sized
/// collector: 126 homes, 5k records each, spread over all shards.
fn bench_snapshot_merge(c: &mut Criterion) {
    const ROUTERS: u32 = 126;
    let filled = || {
        let collector = registered(ROUTERS);
        for r in 0..ROUTERS {
            let router = RouterId(r);
            let shard = collector.shard_handle(router);
            shard.ingest_batch(uptime_records(router, RECORDS_PER_HOME));
            for m in (0..RECORDS_PER_HOME).step_by(10) {
                shard.ingest_heartbeat(HeartbeatRecord { router, at: mins(m) });
            }
        }
        collector
    };
    let mut group = c.benchmark_group("collector_merge_126x5k");
    group.sample_size(10);
    let live = filled();
    group.bench_function("snapshot", |b| {
        b.iter(|| black_box(live.snapshot().record_count()))
    });
    group.bench_function("into_datasets", |b| {
        b.iter_batched(
            filled,
            |collector| black_box(collector.into_datasets().record_count()),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_ingest_paths, bench_contended_ingest, bench_snapshot_merge);
criterion_main!(benches);
