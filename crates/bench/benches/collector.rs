//! Collector ingestion and merge benches: the sharded server's hot paths —
//! per-record vs batched uploads, contended multi-thread ingestion, and
//! snapshot/merge throughput over a deployment-sized dataset.

use analysis::DataIndex;
use collector::{Collector, FlowTable, PacketStatsTable, RouterMeta};
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use firmware::anonymize::{AnonMac, ReportedDomain};
use firmware::records::{
    FlowRecord, HeartbeatRecord, PacketStatsRecord, Record, RouterId, UptimeRecord,
};
use household::Country;
use simnet::packet::IpProtocol;
use simnet::time::{SimDuration, SimTime};

fn mins(m: u64) -> SimTime {
    SimTime::EPOCH + SimDuration::from_mins(m)
}

fn uptime_records(router: RouterId, n: u64) -> Vec<Record> {
    (0..n)
        .map(|m| {
            Record::Uptime(UptimeRecord {
                router,
                at: mins(m),
                uptime: SimDuration::from_mins(m),
            })
        })
        .collect()
}

fn registered(routers: u32) -> Collector {
    let collector = Collector::new();
    for r in 0..routers {
        collector.register(RouterMeta {
            router: RouterId(r),
            country: Country::UnitedStates,
            traffic_consent: false,
        });
    }
    collector
}

const RECORDS_PER_HOME: u64 = 5_000;

/// One home's upload, record-at-a-time vs batched vs through a shard handle.
fn bench_ingest_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("collector_ingest_5k");
    group.sample_size(20);
    group.bench_function("single_records", |b| {
        b.iter_batched(
            || uptime_records(RouterId(7), RECORDS_PER_HOME),
            |records| {
                let collector = registered(1);
                for record in records {
                    collector.ingest(record);
                }
                black_box(collector.snapshot().record_count())
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("batch", |b| {
        b.iter_batched(
            || uptime_records(RouterId(7), RECORDS_PER_HOME),
            |records| {
                let collector = registered(1);
                collector.ingest_batch(records);
                black_box(collector.snapshot().record_count())
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("shard_handle_batch", |b| {
        b.iter_batched(
            || uptime_records(RouterId(7), RECORDS_PER_HOME),
            |records| {
                let collector = registered(1);
                collector.shard_handle(RouterId(7)).ingest_batch(records);
                black_box(collector.snapshot().record_count())
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// Eight upload threads hammering the collector at once, deployment-style:
/// each thread owns a slice of the 126 routers and interleaves heartbeats
/// with small record batches through its routers' shard handles.
fn bench_contended_ingest(c: &mut Criterion) {
    const THREADS: u32 = 8;
    const ROUTERS: u32 = 126;
    const HEARTBEATS: u64 = 500;
    let mut group = c.benchmark_group("collector_contended");
    group.sample_size(10);
    group.bench_function("8_threads_126_homes", |b| {
        b.iter(|| {
            let collector = registered(ROUTERS);
            std::thread::scope(|scope| {
                for t in 0..THREADS {
                    let collector = &collector;
                    scope.spawn(move || {
                        for r in (t..ROUTERS).step_by(THREADS as usize) {
                            let router = RouterId(r);
                            let shard = collector.shard_handle(router);
                            for m in 0..HEARTBEATS {
                                shard.ingest_heartbeat(HeartbeatRecord { router, at: mins(m) });
                                if m % 100 == 99 {
                                    shard.ingest_batch(uptime_records(router, 50));
                                }
                            }
                        }
                    });
                }
            });
            black_box(collector.into_datasets().record_count())
        })
    });
    group.finish();
}

/// Snapshot (clone + merge) vs consuming merge over a full-deployment-sized
/// collector: 126 homes, 5k records each, spread over all shards.
fn bench_snapshot_merge(c: &mut Criterion) {
    const ROUTERS: u32 = 126;
    let filled = || {
        let collector = registered(ROUTERS);
        for r in 0..ROUTERS {
            let router = RouterId(r);
            let shard = collector.shard_handle(router);
            shard.ingest_batch(uptime_records(router, RECORDS_PER_HOME));
            for m in (0..RECORDS_PER_HOME).step_by(10) {
                shard.ingest_heartbeat(HeartbeatRecord { router, at: mins(m) });
            }
        }
        collector
    };
    let mut group = c.benchmark_group("collector_merge_126x5k");
    group.sample_size(10);
    let live = filled();
    group.bench_function("snapshot", |b| {
        b.iter(|| black_box(live.snapshot().record_count()))
    });
    group.bench_function("into_datasets", |b| {
        b.iter_batched(
            filled,
            |collector| black_box(collector.into_datasets().record_count()),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn stats_record(router: RouterId, m: u64) -> PacketStatsRecord {
    PacketStatsRecord {
        router,
        at: mins(m),
        bytes_down: m * 1500,
        bytes_up: m * 400,
        pkts_down: m,
        pkts_up: m / 2,
        peak_down_1s: 40_000,
        peak_up_1s: 9_000,
    }
}

fn flow_record(router: RouterId, m: u64) -> FlowRecord {
    FlowRecord {
        router,
        started: mins(m),
        ended: mins(m) + SimDuration::from_secs(30),
        device: AnonMac { oui: 0x0001_02, suffix_hash: (m % 7) as u32 },
        remote_ip_hash: m.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        remote_port: 443,
        proto: IpProtocol::Tcp,
        // A small rotating set so interning hits both lanes: repeats and
        // first sightings.
        domain: ReportedDomain::Obfuscated(m % 50),
        bytes_down: m * 900,
        bytes_up: m * 120,
    }
}

/// The columnar append hot path: pushing high-volume records straight into
/// the struct-of-arrays tables (delta time encoding, narrow columns, and
/// domain interning all exercised).
fn bench_columnar_append(c: &mut Criterion) {
    const N: u64 = 50_000;
    let mut group = c.benchmark_group("columnar_append_50k");
    group.sample_size(20);
    group.bench_function("packet_stats", |b| {
        b.iter(|| {
            let mut table = PacketStatsTable::default();
            for m in 0..N {
                table.push(stats_record(RouterId((m % 126) as u32), m));
            }
            black_box(table.len())
        })
    });
    group.bench_function("flows", |b| {
        b.iter(|| {
            let mut table = FlowTable::default();
            for m in 0..N {
                table.push(flow_record(RouterId((m % 126) as u32), m));
            }
            black_box(table.len())
        })
    });
    group.finish();
}

/// DataIndex construction over columnar datasets, plus a full per-router
/// column scan — the analysis-side read path over the encoded columns.
fn bench_index_from_columns(c: &mut Criterion) {
    const ROUTERS: u32 = 126;
    const PER_ROUTER: u64 = 2_000;
    let collector = registered(ROUTERS);
    for r in 0..ROUTERS {
        let router = RouterId(r);
        let shard = collector.shard_handle(router);
        for m in 0..PER_ROUTER {
            shard.ingest(Record::PacketStats(stats_record(router, m)));
            shard.ingest(Record::Flow(flow_record(router, m)));
        }
    }
    let datasets = collector.into_datasets();
    let mut group = c.benchmark_group("columnar_index_126x4k");
    group.sample_size(20);
    group.bench_function("data_index_new", |b| {
        b.iter(|| black_box(DataIndex::new(&datasets).routers().len()))
    });
    group.bench_function("scan_all_columns", |b| {
        b.iter(|| {
            let idx = DataIndex::new(&datasets);
            let mut bytes = 0u64;
            for r in 0..ROUTERS {
                for s in idx.packet_stats(RouterId(r)) {
                    bytes = bytes.wrapping_add(s.bytes_down);
                }
                for f in idx.flows(RouterId(r)) {
                    bytes = bytes.wrapping_add(f.bytes_down);
                }
            }
            black_box(bytes)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ingest_paths,
    bench_contended_ingest,
    bench_snapshot_merge,
    bench_columnar_append,
    bench_index_from_columns
);
criterion_main!(benches);
