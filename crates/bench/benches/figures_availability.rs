//! §4 figure regeneration benches: Figures 3–6 and Table 3, each computed
//! from the shared study's data sets exactly as the paper computed them
//! from the deployment's. Each bench prints its regenerated artifact once.

use analysis::availability;
use analysis::render;
use bench::shared::{print_once, report, study, windows};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_fig3(c: &mut Criterion) {
    let data = &study().datasets;
    let w = windows();
    print_once("Figure 3: downtimes per day (CDF)", || {
        let r = report();
        render::cdf_plot(
            "avg downtimes/day, >=10 min",
            &[("developed", &r.fig3.developed), ("developing", &r.fig3.developing)],
            60,
            12,
        )
    });
    c.bench_function("fig03_downtime_frequency", |b| {
        b.iter(|| {
            let routers = availability::per_router(data, w.heartbeats);
            black_box(availability::fig3(&routers))
        })
    });
}

fn bench_fig4(c: &mut Criterion) {
    let data = &study().datasets;
    let w = windows();
    print_once("Figure 4: downtime durations (CDF)", || {
        let r = report();
        render::cdf_plot(
            "downtime duration (s)",
            &[("developed", &r.fig4.developed), ("developing", &r.fig4.developing)],
            60,
            12,
        )
    });
    let routers = availability::per_router(data, w.heartbeats);
    c.bench_function("fig04_downtime_duration", |b| {
        b.iter(|| black_box(availability::fig4(&routers)))
    });
}

fn bench_fig5(c: &mut Criterion) {
    let data = &study().datasets;
    let w = windows();
    print_once("Figure 5: median downtimes vs GDP", || {
        let r = report();
        r.fig5
            .iter()
            .map(|p| {
                format!(
                    "  {} (${}): median {:.1} downtimes, median duration {:.0} min, {} routers\n",
                    p.code,
                    p.gdp,
                    p.median_downtimes,
                    p.median_duration_secs / 60.0,
                    p.routers
                )
            })
            .collect()
    });
    let routers = availability::per_router(data, w.heartbeats);
    c.bench_function("fig05_downtimes_vs_gdp", |b| {
        b.iter(|| black_box(availability::fig5(&routers)))
    });
}

fn bench_fig6(c: &mut Criterion) {
    let data = &study().datasets;
    let w = windows();
    let routers = availability::per_router(data, w.heartbeats);
    print_once("Figure 6: availability archetypes", || {
        let (a, b_, c_) = availability::fig6_archetypes(data, &routers);
        format!("always-on {a:?}, appliance {b_:?}, flaky {c_:?}")
    });
    c.bench_function("fig06_archetypes_and_timeline", |b| {
        b.iter(|| {
            let (a, _, _) = availability::fig6_archetypes(data, &routers);
            let tl = a.map(|r| availability::fig6_timeline(data, r, w.heartbeats));
            black_box(tl)
        })
    });
}

fn bench_table3(c: &mut Criterion) {
    let data = &study().datasets;
    let w = windows();
    let routers = availability::per_router(data, w.heartbeats);
    print_once("Table 3: availability highlights", || {
        let t3 = analysis::highlights::table3(&routers);
        format!(
            "  time between downtimes: developed {}, developing {}; worst {} {}\n",
            t3.developed_median_time_between,
            t3.developing_median_time_between,
            t3.worst_two[0],
            t3.worst_two[1]
        )
    });
    c.bench_function("table3_highlights", |b| {
        b.iter(|| black_box(analysis::highlights::table3(&routers)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fig3, bench_fig4, bench_fig5, bench_fig6, bench_table3
);
criterion_main!(benches);
