//! §6 figure regeneration benches: Figures 13–20 and Table 6.

use analysis::render;
use analysis::usage;
use bench::shared::{print_once, report, study, windows};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_fig13(c: &mut Criterion) {
    let data = &study().datasets;
    let w = windows();
    print_once("Figure 13: diurnal station counts", || {
        let f = &report().fig13;
        render::diurnal_plot("mean wireless stations by local hour", &f.weekday, &f.weekend)
    });
    c.bench_function("fig13_diurnal", |b| b.iter(|| black_box(usage::fig13(data, w.wifi))));
}

fn bench_fig14(c: &mut Criterion) {
    let data = &study().datasets;
    let w = windows();
    print_once("Figure 14: one home's utilization vs capacity", || {
        match &report().fig14 {
            Some(f) => format!(
                "  {}: capacity down {:.1} / up {:.1} Mbps, {} busy minutes\n",
                f.router,
                f.down_capacity_bps / 1e6,
                f.up_capacity_bps / 1e6,
                f.down_series.len()
            ),
            None => "  (no exemplar home)".to_string(),
        }
    });
    let exemplar = report().fig14.as_ref().map(|f| f.router);
    c.bench_function("fig14_home_timeseries", |b| {
        b.iter(|| exemplar.and_then(|r| black_box(usage::fig14(data, w.traffic, r))))
    });
}

fn bench_fig15_16(c: &mut Criterion) {
    let data = &study().datasets;
    let w = windows();
    print_once("Figure 15/16: utilization scatter + oversaturators", || {
        let r = report();
        let mut out = String::new();
        for p in &r.fig15 {
            out.push_str(&format!(
                "  {}: down {:.2} of {:.1} Mbps, up {:.2} of {:.2} Mbps\n",
                p.router,
                p.down_utilization,
                p.down_capacity_bps / 1e6,
                p.up_utilization,
                p.up_capacity_bps / 1e6
            ));
        }
        out.push_str(&format!("  oversaturating: {}\n", r.fig16.len()));
        out
    });
    c.bench_function("fig15_utilization_scatter", |b| {
        b.iter(|| black_box(usage::fig15(data, w.traffic)))
    });
    c.bench_function("fig16_oversaturators", |b| {
        b.iter(|| black_box(usage::fig16(data, w.traffic)))
    });
}

fn bench_fig17(c: &mut Criterion) {
    let data = &study().datasets;
    let w = windows();
    print_once("Figure 17: device dominance", || {
        let f = &report().fig17;
        format!(
            "  top device {:.0}%, second {:.0}% (over {} homes)\n",
            f.mean_top_share * 100.0,
            f.mean_second_share * 100.0,
            f.per_home.len()
        )
    });
    c.bench_function("fig17_device_shares", |b| {
        b.iter(|| black_box(usage::fig17(data, w.traffic)))
    });
}

fn bench_fig18(c: &mut Criterion) {
    let data = &study().datasets;
    let w = windows();
    print_once("Figure 18: top-5/top-10 domains", || {
        report()
            .fig18
            .iter()
            .take(10)
            .map(|r| format!("  {:<16} top5 {:>3}  top10 {:>3}\n", r.domain, r.top5_homes, r.top10_homes))
            .collect()
    });
    c.bench_function("fig18_domain_popularity", |b| {
        b.iter(|| black_box(usage::fig18(data, w.traffic)))
    });
}

fn bench_fig19(c: &mut Criterion) {
    let data = &study().datasets;
    let w = windows();
    print_once("Figure 19: domain-rank shares", || {
        let f = &report().fig19;
        format!(
            "  rank-1: volume {:.2}, connections {:.2}, connections-of-top-volume {:.2}; whitelist {:.2}\n",
            f.volume_share_by_rank[0],
            f.connection_share_by_rank[0],
            f.connections_of_volume_rank[0],
            f.whitelisted_byte_fraction
        )
    });
    c.bench_function("fig19_domain_shares", |b| {
        b.iter(|| black_box(usage::fig19(data, w.traffic, 15)))
    });
}

fn bench_fig20(c: &mut Criterion) {
    let data = &study().datasets;
    let w = windows();
    print_once("Figure 20: device fingerprints", || {
        let devices = &report().fig20;
        let (computer, streamer) = usage::fig20_exemplars(devices);
        let mut out = String::new();
        for (label, dev) in [("computer", computer), ("streamer", streamer)] {
            if let Some(dev) = dev {
                out.push_str(&format!("  {label} ({}):\n", dev.device));
                for (domain, share) in dev.domains.iter().take(5) {
                    out.push_str(&format!("    {domain:<20} {share:.2}\n"));
                }
            }
        }
        out
    });
    c.bench_function("fig20_device_domain_mixes", |b| {
        b.iter(|| black_box(usage::fig20(data, w.traffic, 100 * 1024)))
    });
}

fn bench_table6(c: &mut Criterion) {
    let data = &study().datasets;
    let w = windows();
    print_once("Table 6: usage highlights", || {
        let t = &report().table6;
        format!(
            "  diurnal spread {:.2}/{:.2}; oversaturating {}; dominant device {:.0}%; top domain {:.0}%/{:.0}%; whitelist {:.0}%\n",
            t.weekday_spread,
            t.weekend_spread,
            t.oversaturating_homes,
            t.dominant_device_share * 100.0,
            t.top_domain_volume_share * 100.0,
            t.top_domain_connection_share * 100.0,
            t.whitelisted_byte_fraction * 100.0
        )
    });
    c.bench_function("table6_highlights", |b| {
        b.iter(|| black_box(analysis::highlights::table6(data, w.traffic, w.wifi)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fig13, bench_fig14, bench_fig15_16, bench_fig17, bench_fig18, bench_fig19,
        bench_fig20, bench_table6
);
criterion_main!(benches);
