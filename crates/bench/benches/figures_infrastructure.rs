//! §5 figure regeneration benches: Figures 7–12 and Tables 4–5.

use analysis::infrastructure;
use analysis::render;
use bench::shared::{print_once, report, study, windows};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_fig7(c: &mut Criterion) {
    let data = &study().datasets;
    let w = windows();
    print_once("Figure 7: devices per home", || {
        render::cdf_plot("unique devices per home", &[("all", &report().fig7)], 60, 12)
    });
    c.bench_function("fig07_devices_per_home", |b| {
        b.iter(|| black_box(infrastructure::fig7(data, w.devices)))
    });
}

fn bench_fig8(c: &mut Criterion) {
    let data = &study().datasets;
    let w = windows();
    print_once("Figure 8: wired vs wireless by region", || {
        let f = &report().fig8;
        format!(
            "  developed: wired {:.2}±{:.2}, wireless {:.2}±{:.2}\n  developing: wired {:.2}±{:.2}, wireless {:.2}±{:.2}\n",
            f.developed.0.mean, f.developed.0.std, f.developed.1.mean, f.developed.1.std,
            f.developing.0.mean, f.developing.0.std, f.developing.1.mean, f.developing.1.std,
        )
    });
    c.bench_function("fig08_wired_wireless_region", |b| {
        b.iter(|| black_box(infrastructure::fig8(data, w.devices)))
    });
}

fn bench_fig9(c: &mut Criterion) {
    let data = &study().datasets;
    let w = windows();
    print_once("Figure 9: stations per band", || {
        let f = &report().fig9;
        format!(
            "  2.4 GHz {:.2}±{:.2}, 5 GHz {:.2}±{:.2}\n",
            f.ghz24.mean, f.ghz24.std, f.ghz5.mean, f.ghz5.std
        )
    });
    c.bench_function("fig09_stations_per_band", |b| {
        b.iter(|| black_box(infrastructure::fig9(data, w.devices)))
    });
}

fn bench_fig10(c: &mut Criterion) {
    let data = &study().datasets;
    let w = windows();
    print_once("Figure 10: unique devices per band", || {
        let f = &report().fig10;
        render::cdf_plot(
            "unique devices per band",
            &[("2.4 GHz", &f.ghz24), ("5 GHz", &f.ghz5)],
            60,
            12,
        )
    });
    c.bench_function("fig10_unique_devices_per_band", |b| {
        b.iter(|| black_box(infrastructure::fig10(data, w.devices)))
    });
}

fn bench_fig11(c: &mut Criterion) {
    let data = &study().datasets;
    let w = windows();
    print_once("Figure 11: visible APs", || {
        let f = &report().fig11;
        render::cdf_plot(
            "unique 2.4 GHz APs per home",
            &[("developed", &f.developed), ("developing", &f.developing)],
            60,
            12,
        )
    });
    c.bench_function("fig11_visible_aps", |b| {
        b.iter(|| black_box(infrastructure::fig11(data, w.wifi)))
    });
}

fn bench_fig12(c: &mut Criterion) {
    let data = &study().datasets;
    print_once("Figure 12: vendors", || {
        render::bar_chart(
            "devices by manufacturer (>=100 KB)",
            &report()
                .fig12
                .iter()
                .map(|(v, n)| (v.label().to_string(), *n as f64))
                .collect::<Vec<_>>(),
            40,
        )
    });
    c.bench_function("fig12_vendor_histogram", |b| {
        b.iter(|| black_box(infrastructure::fig12(data)))
    });
}

fn bench_tables(c: &mut Criterion) {
    let data = &study().datasets;
    let w = windows();
    print_once("Table 5: always-connected devices", || {
        report()
            .table5
            .iter()
            .map(|r| {
                format!("  {}: {} homes, wired {}, wireless {}\n", r.region, r.total, r.wired, r.wireless)
            })
            .collect()
    });
    c.bench_function("table5_always_connected", |b| {
        b.iter(|| black_box(infrastructure::table5(data, w.devices)))
    });
    c.bench_function("table4_highlights", |b| {
        b.iter(|| black_box(analysis::highlights::table4(data, w.devices, w.wifi)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fig7, bench_fig8, bench_fig9, bench_fig10, bench_fig11, bench_fig12, bench_tables
);
criterion_main!(benches);
