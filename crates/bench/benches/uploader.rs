//! Microbenchmarks for the reliable-delivery pipeline: the firmware
//! store-and-forward queue's steady-state cycle, the collector's
//! sequence-checked batch ingestion, and fault-plan compilation. The
//! steady-state numbers bound what a fault scenario can cost the
//! simulation — `BENCH_simulate.json` carries the end-to-end check.

use collector::windows::Window;
use collector::{Collector, RouterMeta};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use firmware::records::{Record, RouterId, UptimeRecord};
use firmware::uploader::{Uploader, UploaderConfig};
use household::Country;
use simnet::rng::DetRng;
use simnet::time::{SimDuration, SimTime};

const BATCH: usize = 4_000;

fn fill(out: &mut Vec<Record>, round: u64) {
    for i in 0..BATCH as u64 {
        out.push(Record::Uptime(UptimeRecord {
            router: RouterId(3),
            at: SimTime::EPOCH + SimDuration::from_mins(round * 10_000 + i),
            uptime: SimDuration::from_mins(i),
        }));
    }
}

/// One full queue cycle per iteration: fill the accumulation buffer, seal
/// it, fail the first offer (drawing a backoff delay), then ack. This is
/// the worst realistic per-batch path — a clean run skips the failure.
fn bench_uploader_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("uploader");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("seal_fail_ack_cycle", |b| {
        let mut up = Uploader::new(UploaderConfig::default());
        let mut rng = DetRng::new(17).derive("bench");
        let mut out: Vec<Record> = Vec::with_capacity(BATCH);
        let mut round = 0u64;
        b.iter(|| {
            fill(&mut out, round);
            round += 1;
            up.seal(&mut out);
            let _ = up.fail_front(&mut rng);
            let a = up.attempt().expect("failed batch stays at the front");
            a.records.clear(); // the collector drains the buffer on accept
            up.ack_front();
        });
    });
    group.finish();
}

/// A sealed batch offered to the collector and accepted in sequence:
/// the single-lock shard path, watermark check included.
fn bench_collector_ingest_upload(c: &mut Criterion) {
    let mut group = c.benchmark_group("collector");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("ingest_upload_in_order", |b| {
        let collector = Collector::new();
        collector.register(RouterMeta {
            router: RouterId(3),
            country: Country::UnitedStates,
            traffic_consent: false,
        });
        let shard = collector.shard_handle(RouterId(3));
        let mut seq = 0u64;
        b.iter_batched(
            || {
                let mut records = Vec::with_capacity(BATCH);
                fill(&mut records, seq);
                seq += 1;
                (seq, records)
            },
            |(seq, mut records)| {
                let outcome = shard.ingest_upload(
                    SimTime::EPOCH + SimDuration::from_mins(seq * 10_000),
                    RouterId(3),
                    seq,
                    0,
                    &[],
                    &mut records,
                );
                assert!(outcome.is_ack());
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

/// Compiling a scenario into a concrete per-router fault plan — runs once
/// per study, so milliseconds here are invisible, but keep it honest.
fn bench_plan_compile(c: &mut Criterion) {
    let span = Window {
        start: SimTime::EPOCH,
        end: SimTime::EPOCH + SimDuration::from_days(20),
    };
    let routers: Vec<RouterId> = (0..64u32).map(RouterId).collect();
    c.bench_function("faultlab/compile_collector_flap_64_routers", |b| {
        b.iter(|| {
            faultlab::FaultPlan::scenario(
                faultlab::FaultScenario::CollectorFlap,
                criterion::black_box(11),
                span,
                &routers,
            )
        });
    });
}

criterion_group!(
    benches,
    bench_uploader_cycle,
    bench_collector_ingest_upload,
    bench_plan_compile
);
criterion_main!(benches);
