//! End-to-end simulation benches: deployment construction and home/study
//! simulation throughput — the cost of regenerating the data sets
//! themselves.

use bismark::homesim::{HomeSim, SimParams};
use bismark::study::{run_study, StudyConfig, StudyWindows};
use collector::windows::Window;
use collector::{Collector, RouterMeta};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use firmware::records::RouterId;
use household::domains::DomainUniverse;
use household::{build_deployment, Country, HomeConfig, HomeId};
use simnet::rng::DetRng;
use simnet::time::{SimDuration, SimTime};

fn bench_deployment_build(c: &mut Criterion) {
    c.bench_function("build_deployment_126_homes", |b| {
        b.iter(|| black_box(build_deployment(2013)))
    });
}

fn bench_single_home(c: &mut Criterion) {
    let span = Window {
        start: SimTime::EPOCH,
        end: SimTime::EPOCH + SimDuration::from_days(7),
    };
    let windows = StudyWindows::scaled(span);
    let universe = DomainUniverse::standard();
    let zone = universe.build_zone();
    let root = DetRng::new(11);
    let us_home = HomeConfig::sample(HomeId(0), Country::UnitedStates, &root.derive("us"));
    let in_home = HomeConfig::sample(HomeId(1), Country::India, &root.derive("in"));

    let mut group = c.benchmark_group("home_simulation_7days");
    group.sample_size(10);
    for (label, home) in [("us_home", &us_home), ("india_home", &in_home)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let collector = Collector::new();
                collector.register(RouterMeta {
                    router: RouterId(home.id.0),
                    country: home.country,
                    traffic_consent: home.traffic_consent,
                });
                HomeSim::new(SimParams {
                    cfg: home,
                    universe: &universe,
                    zone: &zone,
                    windows: &windows,
                    seed: 11,
                    reliable_upload: false,
                    faults: None,
                    cgn: None,
                })
                .run(&collector);
                black_box(collector.snapshot().record_count())
            })
        });
    }
    group.finish();
}

fn bench_scaled_study(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_deployment");
    group.sample_size(10);
    group.bench_function("study_126_homes_3_days", |b| {
        b.iter(|| {
            let output = run_study(&StudyConfig::quick(2013, 3));
            black_box(output.datasets.record_count())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_deployment_build, bench_single_home, bench_scaled_study);
criterion_main!(benches);
