//! Deployment tables (1–2) and the full-report render path.

use bench::shared::{print_once, report, study, windows};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_table1(c: &mut Criterion) {
    let data = &study().datasets;
    print_once("Table 1: country classification", || {
        report()
            .table1
            .iter()
            .map(|r| format!("  {:<16} {:<11} {}\n", r.country.name(), r.region.to_string(), r.routers))
            .collect()
    });
    c.bench_function("table1_countries", |b| {
        b.iter(|| black_box(analysis::highlights::table1(data)))
    });
}

fn bench_table2(c: &mut Criterion) {
    let data = &study().datasets;
    let w = windows();
    print_once("Table 2: data sets", || {
        report()
            .table2
            .iter()
            .map(|r| format!("  {:<10} {:>4} routers  {:>3} countries\n", r.dataset, r.routers, r.countries))
            .collect()
    });
    let spec = [
        ("Heartbeats", w.heartbeats),
        ("Capacity", w.capacity),
        ("Uptime", w.uptime),
        ("Devices", w.devices),
        ("WiFi", w.wifi),
        ("Traffic", w.traffic),
    ];
    c.bench_function("table2_dataset_summary", |b| {
        b.iter(|| black_box(analysis::highlights::table2(data, &spec)))
    });
}

fn bench_full_report(c: &mut Criterion) {
    let data = &study().datasets;
    let w = windows();
    c.bench_function("full_report_compute", |b| {
        b.iter(|| black_box(analysis::StudyReport::compute(data, w)))
    });
    c.bench_function("full_report_render", |b| {
        b.iter(|| black_box(report().render(data).len()))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_table1, bench_table2, bench_full_report
);
criterion_main!(benches);
