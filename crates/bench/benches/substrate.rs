//! Microbenchmarks of the simulation substrate: the hot paths every study
//! run exercises millions of times.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use simnet::dns::{DnsQuery, DomainName};
use simnet::event::EventQueue;
use simnet::link::{Link, LinkConfig};
use simnet::nat::Nat;
use simnet::packet::{Endpoint, FiveTuple, IpProtocol, Ipv4Packet};
use simnet::rng::{DetRng, ZipfTable};
use simnet::time::{SimDuration, SimTime};
use std::net::Ipv4Addr;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_micros((i * 7919) % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
    group.bench_function("schedule_cancel_half_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let ids: Vec<_> = (0..10_000u64)
                .map(|i| q.schedule(SimTime::from_micros(i), i))
                .collect();
            for id in ids.iter().step_by(2) {
                q.cancel(*id);
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
    group.finish();
}

fn bench_packets(c: &mut Criterion) {
    let mut group = c.benchmark_group("packets");
    let pkt = Ipv4Packet::new(
        Ipv4Addr::new(192, 168, 1, 7),
        Ipv4Addr::new(23, 64, 1, 10),
        IpProtocol::Tcp,
        vec![0xAB; 1_400],
    );
    let wire = pkt.emit();
    group.throughput(Throughput::Bytes(wire.len() as u64));
    group.bench_function("ipv4_emit_1400B", |b| b.iter(|| black_box(pkt.emit())));
    group.bench_function("ipv4_parse_1400B", |b| {
        b.iter(|| black_box(Ipv4Packet::parse(&wire).expect("valid")))
    });
    let hb = firmware::Heartbeat { router: firmware::RouterId(7), seq: 42 };
    let hb_wire = hb.emit(Ipv4Addr::new(100, 64, 0, 7));
    group.bench_function("heartbeat_emit", |b| {
        b.iter(|| black_box(hb.emit(Ipv4Addr::new(100, 64, 0, 7))))
    });
    group.bench_function("heartbeat_emit_into", |b| {
        // The zero-allocation path the simulation hot loop uses.
        let mut buf = [0u8; firmware::Heartbeat::WIRE_LEN];
        b.iter(|| {
            hb.emit_into(Ipv4Addr::new(100, 64, 0, 7), &mut buf);
            black_box(buf[43])
        })
    });
    group.bench_function("heartbeat_parse", |b| {
        b.iter(|| black_box(firmware::Heartbeat::parse(&hb_wire).expect("valid")))
    });
    let q = DnsQuery { id: 9, name: DomainName::new("www.netflix.com").unwrap() };
    let q_wire = q.emit();
    group.bench_function("dns_query_roundtrip", |b| {
        b.iter(|| black_box(DnsQuery::parse(&q_wire).expect("valid")))
    });
    group.finish();
}

fn bench_dns_resolve(c: &mut Criterion) {
    use simnet::dns::{CachingResolver, ZoneDb};
    let mut group = c.benchmark_group("dns_resolve");
    // A zone with a CNAME chain, like the CDN-backed domains in the
    // standard universe: www.example.com -> cdn.example.net -> A.
    let mut zone = ZoneDb::new();
    let www = DomainName::new("www.example.com").unwrap();
    let cdn = DomainName::new("cdn.example.net").unwrap();
    let edge = DomainName::new("edge7.example.net").unwrap();
    zone.insert_cname(www.clone(), cdn.clone(), SimDuration::from_secs(300));
    zone.insert_cname(cdn, edge.clone(), SimDuration::from_secs(300));
    zone.insert_a(edge, Ipv4Addr::new(23, 64, 1, 10), SimDuration::from_secs(60));
    group.bench_function("zonedb_cname_chain", |b| {
        let query = DnsQuery { id: 1, name: www.clone() };
        b.iter(|| black_box(zone.resolve(&query)))
    });
    group.bench_function("caching_resolver_hit", |b| {
        let mut resolver = CachingResolver::new();
        resolver.lookup(SimTime::EPOCH, &zone, 1, &www);
        b.iter(|| black_box(resolver.lookup(SimTime::EPOCH, &zone, 2, &www)))
    });
    group.finish();
}

fn bench_nat(c: &mut Criterion) {
    c.bench_function("nat_translate_outbound_hit", |b| {
        let mut nat = Nat::new(Ipv4Addr::new(203, 0, 113, 9));
        let flow = FiveTuple {
            proto: IpProtocol::Tcp,
            src: Endpoint::new(Ipv4Addr::new(192, 168, 1, 10), 40_000),
            dst: Endpoint::new(Ipv4Addr::new(23, 64, 1, 10), 443),
        };
        nat.translate_outbound(SimTime::EPOCH, flow).expect("maps");
        b.iter(|| black_box(nat.translate_outbound(SimTime::EPOCH, flow).expect("hit")))
    });
    c.bench_function("nat_mapping_churn_1k", |b| {
        b.iter(|| {
            let mut nat = Nat::new(Ipv4Addr::new(203, 0, 113, 9));
            for i in 0..1_000u16 {
                let flow = FiveTuple {
                    proto: IpProtocol::Udp,
                    src: Endpoint::new(Ipv4Addr::new(192, 168, 1, 10), 10_000 + i),
                    dst: Endpoint::new(Ipv4Addr::new(8, 8, 8, 8), 53),
                };
                black_box(nat.translate_outbound(SimTime::EPOCH, flow).expect("maps"));
            }
        })
    });
}

fn bench_link(c: &mut Criterion) {
    c.bench_function("link_transmit_train_512", |b| {
        let cfg = LinkConfig::simple(20_000_000, SimDuration::from_millis(10), 1 << 22);
        b.iter(|| {
            let mut link = Link::new(cfg);
            for _ in 0..512 {
                black_box(link.transmit(SimTime::EPOCH, 1_500));
            }
        })
    });
    c.bench_function("shaperprobe_full", |b| {
        let cfg = LinkConfig::shaped(
            10_000_000,
            20_000_000,
            192 * 1024,
            SimDuration::from_millis(8),
            256 * 1024,
        );
        let mut rng = DetRng::new(5);
        b.iter(|| {
            let mut link = Link::new(cfg);
            black_box(firmware::probe_link(&mut link, SimTime::EPOCH, &mut rng))
        })
    });
}

fn bench_rng_and_fair(c: &mut Criterion) {
    c.bench_function("zipf_sample", |b| {
        let table = ZipfTable::new(200, 1.9);
        let mut rng = DetRng::new(3);
        b.iter(|| black_box(rng.zipf(&table)))
    });
    c.bench_function("max_min_fair_16_flows", |b| {
        let demands: Vec<netstack::fair::Demand> = (0..16)
            .map(|i| netstack::fair::Demand {
                rate_cap_bps: if i % 3 == 0 { f64::INFINITY } else { 1e6 * (i + 1) as f64 },
            })
            .collect();
        b.iter(|| black_box(netstack::fair::max_min_fair(50e6, &demands)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_event_queue, bench_packets, bench_dns_resolve, bench_nat, bench_link, bench_rng_and_fair
);
criterion_main!(benches);
