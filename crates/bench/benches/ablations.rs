//! Ablation benches for the design choices DESIGN.md calls out. Each group
//! sweeps one mechanism and prints the measured effect once, so the bench
//! run doubles as the ablation study:
//!
//! * **bufferbloat**: CPE queue depth vs probe accuracy and queueing delay;
//! * **scan throttle**: client-protection factor vs scan completeness and
//!   disassociation disruptions;
//! * **heartbeat interval**: sampling period vs downtime-detection
//!   resolution;
//! * **probe train length**: ShaperProbe accuracy vs cost on shaped links.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use simnet::link::{Link, LinkConfig, TxOutcome};
use simnet::rng::DetRng;
use simnet::time::{SimDuration, SimTime};
use simnet::wifi::{Band, NeighborAp, Radio};

fn bench_bufferbloat_queue_sweep(c: &mut Criterion) {
    // A 1 Mbps uplink with increasingly bloated queues: the queueing delay
    // a saturating sender inflicts grows linearly with depth.
    let mut summary = String::new();
    for queue_kb in [16u64, 64, 256, 1024] {
        let cfg = LinkConfig::simple(1_000_000, SimDuration::from_millis(10), queue_kb * 1024);
        let mut link = Link::new(cfg);
        let mut sent = 0u64;
        while matches!(link.transmit(SimTime::EPOCH, 1_500), TxOutcome::Delivered { .. }) {
            sent += 1;
            if sent > 10_000 {
                break;
            }
        }
        let delay = link.queueing_delay(SimTime::EPOCH);
        summary.push_str(&format!(
            "  queue {queue_kb:>5} KB -> standing delay {delay} ({sent} packets buffered)\n"
        ));
    }
    println!("\n===== Ablation: bufferbloat queue depth =====\n{summary}");

    let mut group = c.benchmark_group("ablation_bufferbloat");
    for queue_kb in [16u64, 256, 1024] {
        let cfg = LinkConfig::simple(1_000_000, SimDuration::from_millis(10), queue_kb * 1024);
        group.bench_function(&format!("fill_queue_{queue_kb}kb"), |b| {
            b.iter(|| {
                let mut link = Link::new(cfg);
                let mut accepted = 0;
                while matches!(link.transmit(SimTime::EPOCH, 1_500), TxOutcome::Delivered { .. })
                {
                    accepted += 1;
                }
                black_box(accepted)
            })
        });
    }
    group.finish();
}

fn bench_scan_throttle_sweep(c: &mut Criterion) {
    // Scan policy ablation: without throttling, scans run 3x as often and
    // knock clients off proportionally more.
    let hood = vec![NeighborAp {
        bssid: simnet::packet::MacAddr::from_oui_nic(0xF8_1A_67, 7),
        channel: Band::Ghz24.default_channel(),
        signal_dbm: -55,
        airtime_load: 0.1,
    }];
    let mut summary = String::new();
    for throttle in [1u64, 3, 6] {
        let mut radio = Radio::new(Band::Ghz24);
        let mut rng = DetRng::new(42);
        let mac = simnet::packet::MacAddr::from_oui_nic(0x00_17_F2, 1);
        let mut scans = 0u32;
        let mut drops = 0u32;
        let mut sightings = 0u32;
        for slot in 0..1_000u64 {
            radio.associate(mac);
            if slot % throttle == 0 {
                scans += 1;
                let outcome = radio.scan(&hood, &mut rng);
                drops += outcome.dropped_stations.len() as u32;
                sightings += outcome.visible.len() as u32;
            }
        }
        summary.push_str(&format!(
            "  throttle 1/{throttle}: {scans} scans, {sightings} AP sightings, {drops} client drops\n"
        ));
    }
    println!("\n===== Ablation: scan throttle =====\n{summary}");

    c.bench_function("ablation_scan_slot", |b| {
        let mut radio = Radio::new(Band::Ghz24);
        let mut rng = DetRng::new(1);
        b.iter(|| black_box(radio.scan(&hood, &mut rng).visible.len()))
    });
}

fn bench_heartbeat_interval_sweep(c: &mut Criterion) {
    // Downtime detection resolution: with a 1-minute heartbeat the 10-min
    // threshold sees a 12-minute outage; with a 10-minute heartbeat the
    // run tolerance swallows it entirely.
    let mut summary = String::new();
    for interval_mins in [1u64, 5, 10] {
        let mut log = collector::RunLog::new();
        let outage_start = 100;
        let outage_end = 112; // a 12-minute outage
        let mut t = 0;
        while t < 300 {
            if !(outage_start..outage_end).contains(&t) {
                log.push(SimTime::EPOCH + SimDuration::from_mins(t));
            }
            t += interval_mins;
        }
        let gaps = log.downtimes(
            SimTime::EPOCH,
            SimTime::EPOCH + SimDuration::from_mins(300),
            SimDuration::from_mins(10),
        );
        summary.push_str(&format!(
            "  heartbeat every {interval_mins:>2} min -> {} downtime(s) detected for a 12-min outage\n",
            gaps.len()
        ));
    }
    println!("\n===== Ablation: heartbeat interval =====\n{summary}");

    c.bench_function("ablation_runlog_ingest_10k", |b| {
        b.iter(|| {
            let mut log = collector::RunLog::new();
            for i in 0..10_000u64 {
                log.push(SimTime::EPOCH + SimDuration::from_mins(i));
            }
            black_box(log.runs().len())
        })
    });
}

fn bench_probe_train_sweep(c: &mut Criterion) {
    // ShaperProbe train length vs shaped-link accuracy: short trains never
    // leave the burst phase and report the peak rate as capacity.
    let cfg = LinkConfig::shaped(
        10_000_000,
        20_000_000,
        192 * 1024,
        SimDuration::from_millis(8),
        1 << 22,
    );
    let mut summary = String::new();
    for train in [64usize, 128, 256, 512] {
        let mut link = Link::new(cfg);
        let mut rng = DetRng::new(9);
        // Re-implement the estimator core at the given length.
        let mut arrivals = Vec::with_capacity(train);
        for _ in 0..train {
            if let TxOutcome::Delivered { at } = link.transmit(SimTime::EPOCH, 1_500) {
                arrivals.push(at + SimDuration::from_micros(rng.uniform_int(0, 60)));
            }
        }
        arrivals.sort();
        let tail_n = (arrivals.len() / 4).max(8);
        let tail = &arrivals[arrivals.len() - tail_n..];
        let span = tail.last().unwrap().since(tail[0]).as_secs_f64();
        let rate = (tail_n as f64 - 1.0) * 1_500.0 * 8.0 / span;
        summary.push_str(&format!(
            "  train {train:>3} packets -> tail-estimated {:.1} Mbps (true sustained 10.0)\n",
            rate / 1e6
        ));
    }
    println!("\n===== Ablation: probe train length =====\n{summary}");

    c.bench_function("ablation_probe_512", |b| {
        let mut rng = DetRng::new(10);
        b.iter(|| {
            let mut link = Link::new(cfg);
            black_box(firmware::probe_link(&mut link, SimTime::EPOCH, &mut rng))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_bufferbloat_queue_sweep, bench_scan_throttle_sweep,
        bench_heartbeat_interval_sweep, bench_probe_train_sweep
);
criterion_main!(benches);
