//! Deterministic observability for the BISmark reproduction.
//!
//! The deployment the paper describes lived or died on platform telemetry:
//! BISmark's operators watched per-router upload health, outages, and
//! dataset freshness to produce Tables 1–2 and the §3 availability
//! analysis. This crate is that telemetry layer for the reproduction, with
//! one extra obligation the real platform never had: **instrumentation must
//! not perturb results**. Concretely:
//!
//! * Metrics never feed back into simulation state. A handle is a write-only
//!   sink; nothing in the simulation reads one.
//! * Every exported value is an **order-independent aggregate** (atomic sums,
//!   bucket counts, maxima), so parallel home threads produce the same
//!   export regardless of interleaving or thread count.
//! * Export order is fixed: the registry keys metrics by name in `BTreeMap`s,
//!   so `metrics.json` is byte-identical across repeat runs of the same
//!   seeded study.
//! * Durations recorded by simulation code are **sim-time** (microseconds of
//!   virtual time). Wall-clock exists only as [`WallSpan`] host-side phase
//!   profiling, which is deliberately excluded from `metrics.json` and
//!   appears only in the human text summary, clearly marked.
//! * Hot-path increments are allocation-free: handles are `&'static`
//!   references handed out once at registration ([`counter`], [`histogram`]),
//!   and [`Counter::add`] / [`Histogram::record`] are a relaxed atomic op
//!   each — no `format!`, no boxing, no locking. The counting-allocator test
//!   in `crates/firmware/tests/alloc.rs` pins this.
//!
//! The registry is process-global (metric names are `&'static str`, handles
//! are leaked once). Callers that want per-run numbers — the CLI's
//! `--metrics` path and the observer-effect test suite — call [`reset`]
//! before the run and [`snapshot`] after it.

pub mod manifest;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A monotonically increasing event count.
///
/// Increments are relaxed atomic adds: allocation-free, lock-free, and
/// commutative, so totals are deterministic whatever the thread schedule.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n` events.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one event.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-written scalar (record counts, deployment sizes).
///
/// Unlike counters, concurrent `set`s race by design — gauges must only be
/// written from single-threaded phases (study setup, post-merge accounting)
/// so the exported value stays deterministic.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Cumulative histogram over `u64` samples (sim-time microseconds, byte
/// sizes, ...) with fixed bucket bounds.
///
/// A sample lands in the first bucket whose upper bound is `>=` the value;
/// values above the last bound land in the overflow bucket. Bucket counts,
/// the running sum, the sample count, and the maximum are all
/// order-independent, so merged or multi-threaded recording is
/// deterministic.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample. Allocation-free: a partition-point over the fixed
    /// bounds plus four relaxed atomic ops.
    pub fn record(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// The bucket upper bounds this histogram was registered with.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn freeze(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    fn zero(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Host-side wall-clock phase profiling (simulate / snapshot / per-figure
/// analysis). Callers measure with their own `Instant` (behind a justified
/// `simlint: allow(wall-clock)`) and hand the elapsed microseconds in; this
/// type never touches the host clock itself.
///
/// Wall spans appear in the human text summary only — never in
/// `metrics.json`, which must stay byte-identical across repeat runs.
#[derive(Debug, Default)]
pub struct WallSpan {
    total_micros: AtomicU64,
    count: AtomicU64,
}

impl WallSpan {
    /// Record one measured phase duration.
    pub fn record_micros(&self, micros: u64) {
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

/// Frozen histogram state, as exported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (inclusive).
    pub bounds: Vec<u64>,
    /// Per-bucket sample counts; one longer than `bounds` (overflow last).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample (0 if empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Fold another snapshot with identical bounds into this one. Bucket
    /// counts, totals, and maxima all combine commutatively, so merging
    /// per-shard or per-run snapshots is order-independent.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(self.bounds, other.bounds, "cannot merge histograms with different bounds");
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Mean sample value, rounded down (0 if empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 { 0 } else { self.sum / self.count }
    }
}

/// Frozen wall-span state (text summary only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WallSnapshot {
    /// Accumulated wall time across all recordings.
    pub total_micros: u64,
    /// Number of recordings.
    pub count: u64,
}

/// A frozen, fixed-order view of every registered metric.
///
/// All maps are `BTreeMap`s keyed by metric name, so iteration — and
/// therefore the JSON and text renderings — is byte-stable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram states.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Wall-clock phase spans — excluded from [`Snapshot::to_json`].
    pub wall: BTreeMap<String, WallSnapshot>,
}

impl Snapshot {
    /// Render the deterministic sections as JSON: `counters`, `gauges`, and
    /// `histograms`, each an object sorted by metric name. Wall-clock spans
    /// are deliberately absent — they are host profiling, not results.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        json_u64_map(&mut out, "counters", &self.counters);
        out.push(',');
        json_u64_map(&mut out, "gauges", &self.gauges);
        out.push(',');
        json_key(&mut out, "histograms");
        out.push('{');
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_key(&mut out, name);
            out.push('{');
            json_key(&mut out, "bounds");
            json_u64_array(&mut out, &h.bounds);
            out.push(',');
            json_key(&mut out, "buckets");
            json_u64_array(&mut out, &h.buckets);
            out.push(',');
            for (k, v) in [("count", h.count), ("sum", h.sum), ("max", h.max)] {
                json_key(&mut out, k);
                out.push_str(&v.to_string());
                if k != "max" {
                    out.push(',');
                }
            }
            out.push('}');
        }
        out.push('}');
        out.push('}');
        out
    }
}

fn json_key(out: &mut String, key: &str) {
    out.push('"');
    json_escape_into(out, key);
    out.push_str("\":");
}

fn json_u64_map(out: &mut String, key: &str, map: &BTreeMap<String, u64>) {
    json_key(out, key);
    out.push('{');
    for (i, (name, value)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_key(out, name);
        out.push_str(&value.to_string());
    }
    out.push('}');
}

fn json_u64_array(out: &mut String, values: &[u64]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

/// Minimal JSON string escaping (quotes, backslash, control characters).
pub(crate) fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<&'static str, &'static Counter>,
    gauges: BTreeMap<&'static str, &'static Gauge>,
    histograms: BTreeMap<&'static str, &'static Histogram>,
    wall: BTreeMap<&'static str, &'static WallSpan>,
}

static REGISTRY: Mutex<Option<Inner>> = Mutex::new(None);

fn with_registry<T>(f: impl FnOnce(&mut Inner) -> T) -> T {
    let mut guard = REGISTRY.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    f(guard.get_or_insert_with(Inner::default))
}

fn assert_valid_name(name: &str) {
    assert!(
        !name.is_empty()
            && name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
        "metric name {name:?} must be non-empty lowercase snake_case"
    );
}

/// Register (or fetch) the counter named `name`. Registration happens once
/// per process; the handle is `&'static` and free to cache, clone, and
/// increment from any thread.
pub fn counter(name: &'static str) -> &'static Counter {
    assert_valid_name(name);
    with_registry(|r| {
        *r.counters.entry(name).or_insert_with(|| Box::leak(Box::new(Counter::default())))
    })
}

/// Register (or fetch) the gauge named `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    assert_valid_name(name);
    with_registry(|r| {
        *r.gauges.entry(name).or_insert_with(|| Box::leak(Box::new(Gauge::default())))
    })
}

/// Register (or fetch) the histogram named `name` with the given bucket
/// upper bounds. Re-registering with different bounds is a bug and panics.
pub fn histogram(name: &'static str, bounds: &[u64]) -> &'static Histogram {
    assert_valid_name(name);
    with_registry(|r| {
        let h =
            *r.histograms.entry(name).or_insert_with(|| Box::leak(Box::new(Histogram::new(bounds))));
        assert_eq!(
            h.bounds(),
            bounds,
            "histogram {name} re-registered with different bounds"
        );
        h
    })
}

/// Register (or fetch) the wall-clock span named `name`.
pub fn wall_span(name: &'static str) -> &'static WallSpan {
    assert_valid_name(name);
    with_registry(|r| {
        *r.wall.entry(name).or_insert_with(|| Box::leak(Box::new(WallSpan::default())))
    })
}

/// Bucket bounds for sim-time durations, in microseconds: 1 ms up to one
/// day, one decade-ish step at a time. Shared by every duration histogram
/// so their snapshots are mergeable.
pub const DURATION_BOUNDS_MICROS: [u64; 10] = [
    1_000,          // 1 ms
    10_000,         // 10 ms
    100_000,        // 100 ms
    1_000_000,      // 1 s
    10_000_000,     // 10 s
    60_000_000,     // 1 min
    600_000_000,    // 10 min
    3_600_000_000,  // 1 h
    21_600_000_000, // 6 h
    86_400_000_000, // 1 day
];

/// Freeze every registered metric into a fixed-order [`Snapshot`].
pub fn snapshot() -> Snapshot {
    with_registry(|r| Snapshot {
        counters: r.counters.iter().map(|(&k, c)| (k.to_string(), c.get())).collect(),
        gauges: r.gauges.iter().map(|(&k, g)| (k.to_string(), g.get())).collect(),
        histograms: r.histograms.iter().map(|(&k, h)| (k.to_string(), h.freeze())).collect(),
        wall: r
            .wall
            .iter()
            .map(|(&k, w)| {
                (
                    k.to_string(),
                    WallSnapshot {
                        total_micros: w.total_micros.load(Ordering::Relaxed),
                        count: w.count.load(Ordering::Relaxed),
                    },
                )
            })
            .collect(),
    })
}

/// Zero every registered metric (registrations survive, so the exported
/// key set is unchanged). The CLI calls this before an instrumented run;
/// tests call it to isolate per-run numbers in a shared process.
pub fn reset() {
    with_registry(|r| {
        for c in r.counters.values() {
            c.0.store(0, Ordering::Relaxed);
        }
        for g in r.gauges.values() {
            g.0.store(0, Ordering::Relaxed);
        }
        for h in r.histograms.values() {
            h.zero();
        }
        for w in r.wall.values() {
            w.total_micros.store(0, Ordering::Relaxed);
            w.count.store(0, Ordering::Relaxed);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests share the process-global registry; each uses unique metric
    // names so parallel execution cannot interfere.

    #[test]
    fn counter_accumulates_and_survives_in_snapshot() {
        let c = counter("test_counter_basic_total");
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let snap = snapshot();
        assert_eq!(snap.counters["test_counter_basic_total"], 42);
    }

    #[test]
    fn counter_handle_is_idempotent() {
        let a = counter("test_counter_idem_total");
        let b = counter("test_counter_idem_total");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert!(std::ptr::eq(a, b), "same name must yield the same handle");
    }

    #[test]
    fn gauge_takes_last_write() {
        let g = gauge("test_gauge_value");
        g.set(7);
        g.set(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    #[should_panic(expected = "snake_case")]
    fn bad_metric_names_are_rejected() {
        counter("Bad-Name");
    }

    #[test]
    fn histogram_bucketing_places_samples_on_bound_edges() {
        let h = histogram("test_hist_bucketing_micros", &[10, 100, 1_000]);
        // On-edge values belong to the bucket they bound (inclusive upper).
        for v in [1, 10, 11, 100, 1_000, 1_001] {
            h.record(v);
        }
        let snap = snapshot();
        let hs = &snap.histograms["test_hist_bucketing_micros"];
        assert_eq!(hs.bounds, vec![10, 100, 1_000]);
        assert_eq!(hs.buckets, vec![2, 2, 1, 1], "<=10, <=100, <=1000, overflow");
        assert_eq!(hs.count, 6);
        assert_eq!(hs.sum, 1 + 10 + 11 + 100 + 1_000 + 1_001);
        assert_eq!(hs.max, 1_001);
        assert_eq!(hs.mean(), hs.sum / 6);
    }

    #[test]
    fn histogram_merge_is_commutative_and_exact() {
        let mut a = HistogramSnapshot {
            bounds: vec![10, 100],
            buckets: vec![1, 2, 3],
            count: 6,
            sum: 500,
            max: 400,
        };
        let b = HistogramSnapshot {
            bounds: vec![10, 100],
            buckets: vec![4, 0, 1],
            count: 5,
            sum: 120,
            max: 110,
        };
        let mut ba = b.clone();
        ba.merge(&a);
        a.merge(&b);
        assert_eq!(a, ba, "merge must be commutative");
        assert_eq!(a.buckets, vec![5, 2, 4]);
        assert_eq!((a.count, a.sum, a.max), (11, 620, 400));
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn histogram_merge_rejects_mismatched_bounds() {
        let mut a = HistogramSnapshot {
            bounds: vec![10],
            buckets: vec![0, 0],
            count: 0,
            sum: 0,
            max: 0,
        };
        let b = HistogramSnapshot {
            bounds: vec![20],
            buckets: vec![0, 0],
            count: 0,
            sum: 0,
            max: 0,
        };
        a.merge(&b);
    }

    #[test]
    fn snapshot_keys_are_sorted() {
        counter("test_order_zzz_total").inc();
        counter("test_order_aaa_total").inc();
        counter("test_order_mmm_total").inc();
        let snap = snapshot();
        let keys: Vec<&String> = snap.counters.keys().collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "export order must be name-sorted, not registration-sorted");
    }

    #[test]
    fn json_is_fixed_order_and_excludes_wall_spans() {
        let mut snap = Snapshot::default();
        snap.counters.insert("b_total".into(), 2);
        snap.counters.insert("a_total".into(), 1);
        snap.gauges.insert("g".into(), 7);
        snap.histograms.insert(
            "h_micros".into(),
            HistogramSnapshot {
                bounds: vec![10],
                buckets: vec![1, 0],
                count: 1,
                sum: 3,
                max: 3,
            },
        );
        snap.wall.insert("host_phase".into(), WallSnapshot { total_micros: 5, count: 1 });
        let json = snap.to_json();
        assert_eq!(
            json,
            "{\"counters\":{\"a_total\":1,\"b_total\":2},\"gauges\":{\"g\":7},\
             \"histograms\":{\"h_micros\":{\"bounds\":[10],\"buckets\":[1,0],\
             \"count\":1,\"sum\":3,\"max\":3}}}"
        );
        assert!(!json.contains("host_phase"), "wall spans must not reach the JSON export");
    }

    #[test]
    fn reset_zeroes_values_but_keeps_registrations() {
        let c = counter("test_reset_keeps_keys_total");
        let h = histogram("test_reset_hist_micros", &DURATION_BOUNDS_MICROS);
        c.add(5);
        h.record(123);
        reset();
        assert_eq!(c.get(), 0);
        let snap = snapshot();
        assert_eq!(snap.counters["test_reset_keeps_keys_total"], 0);
        let hs = &snap.histograms["test_reset_hist_micros"];
        assert_eq!((hs.count, hs.sum, hs.max), (0, 0, 0));
        assert!(hs.buckets.iter().all(|&b| b == 0));
    }

    #[test]
    fn duration_bounds_are_strictly_increasing() {
        assert!(DURATION_BOUNDS_MICROS.windows(2).all(|w| w[0] < w[1]));
    }
}
