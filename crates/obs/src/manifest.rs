//! End-of-study run manifest: `metrics.json` plus a human text summary.
//!
//! The JSON side is the machine artifact the acceptance tests pin: it holds
//! the run metadata (strings chosen by the caller — seed, days, scenario;
//! never timestamps or hostnames) and the deterministic metric sections of a
//! [`Snapshot`]. The text side is for people at the end of a run: the same
//! metrics plus the wall-clock host profile, which is explicitly labelled
//! non-deterministic and kept out of the JSON.

use std::collections::BTreeMap;

use crate::{json_escape_into, Snapshot};

/// A finished run's metadata + frozen metrics, ready to serialize.
#[derive(Debug, Clone, Default)]
pub struct RunManifest {
    /// Free-form run metadata (seed, days, homes, scenario...). Callers must
    /// only put run-describing, deterministic values here — a timestamp or
    /// hostname would break the byte-identical-across-runs guarantee.
    pub meta: BTreeMap<String, String>,
    /// Host-side facts that vary between machines and runs (peak RSS, CPU
    /// count...). Rendered only in the text summary, never in the JSON, so
    /// recording them cannot break byte-identity of `metrics.json`.
    pub host: BTreeMap<String, String>,
    /// Frozen metric state at end of study.
    pub snapshot: Snapshot,
}

impl RunManifest {
    /// Start a manifest from a snapshot; add metadata with [`RunManifest::set_meta`].
    pub fn new(snapshot: Snapshot) -> RunManifest {
        RunManifest { meta: BTreeMap::new(), host: BTreeMap::new(), snapshot }
    }

    /// Attach one metadata key/value pair.
    pub fn set_meta(&mut self, key: &str, value: impl Into<String>) {
        self.meta.insert(key.to_string(), value.into());
    }

    /// Attach one host-side fact (text summary only; kept out of the JSON).
    pub fn set_host(&mut self, key: &str, value: impl Into<String>) {
        self.host.insert(key.to_string(), value.into());
    }

    /// Render `metrics.json`: `{"meta":{...},"counters":{...},"gauges":{...},
    /// "histograms":{...}}`, every object sorted by key, no whitespace, and
    /// no wall-clock content — byte-identical across repeat runs.
    pub fn to_json(&self) -> String {
        let body = self.snapshot.to_json();
        let mut out = String::with_capacity(body.len() + 256);
        out.push_str("{\"meta\":{");
        for (i, (k, v)) in self.meta.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape_into(&mut out, k);
            out.push_str("\":\"");
            json_escape_into(&mut out, v);
            out.push('"');
        }
        out.push_str("},");
        // Splice the snapshot's sections into ours: drop its outer braces.
        out.push_str(&body[1..body.len() - 1]);
        out.push('}');
        out.push('\n');
        out
    }

    /// Render the human summary: metadata, counters, gauges, histograms,
    /// then the wall-clock host profile (labelled non-deterministic).
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("# run manifest\n");
        if !self.meta.is_empty() {
            out.push_str("\n## meta\n");
            for (k, v) in &self.meta {
                out.push_str(&format!("{k} = {v}\n"));
            }
        }
        if !self.snapshot.counters.is_empty() {
            out.push_str("\n## counters\n");
            let width = self.snapshot.counters.keys().map(|k| k.len()).max().unwrap_or(0);
            for (k, v) in &self.snapshot.counters {
                out.push_str(&format!("{k:width$}  {v}\n"));
            }
        }
        if !self.snapshot.gauges.is_empty() {
            out.push_str("\n## gauges\n");
            let width = self.snapshot.gauges.keys().map(|k| k.len()).max().unwrap_or(0);
            for (k, v) in &self.snapshot.gauges {
                out.push_str(&format!("{k:width$}  {v}\n"));
            }
        }
        if !self.snapshot.histograms.is_empty() {
            out.push_str("\n## histograms (sim-time)\n");
            for (k, h) in &self.snapshot.histograms {
                out.push_str(&format!(
                    "{k}: count={} sum={} mean={} max={}\n",
                    h.count,
                    h.sum,
                    h.mean(),
                    h.max
                ));
                for (i, &n) in h.buckets.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    match h.bounds.get(i) {
                        Some(b) => out.push_str(&format!("  <= {b:>14}  {n}\n")),
                        None => out.push_str(&format!("   > {:>14}  {n}\n", h.bounds.last().unwrap_or(&0))),
                    }
                }
            }
        }
        if !self.snapshot.wall.is_empty() {
            out.push_str("\n## wall-clock host profile (non-deterministic; excluded from metrics.json)\n");
            let width = self.snapshot.wall.keys().map(|k| k.len()).max().unwrap_or(0);
            for (k, w) in &self.snapshot.wall {
                out.push_str(&format!(
                    "{k:width$}  {:>10.3} ms  ({} span{})\n",
                    w.total_micros as f64 / 1_000.0,
                    w.count,
                    if w.count == 1 { "" } else { "s" }
                ));
            }
        }
        if !self.host.is_empty() {
            out.push_str("\n## host (non-deterministic; excluded from metrics.json)\n");
            let width = self.host.keys().map(|k| k.len()).max().unwrap_or(0);
            for (k, v) in &self.host {
                out.push_str(&format!("{k:width$}  {v}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistogramSnapshot, WallSnapshot};

    fn sample_manifest() -> RunManifest {
        let mut snap = Snapshot::default();
        snap.counters.insert("b_total".into(), 2);
        snap.counters.insert("a_total".into(), 1);
        snap.gauges.insert("study_homes".into(), 30);
        snap.histograms.insert(
            "flow_duration_micros".into(),
            HistogramSnapshot {
                bounds: vec![10, 100],
                buckets: vec![1, 0, 2],
                count: 3,
                sum: 450,
                max: 300,
            },
        );
        snap.wall.insert("study_simulate".into(), WallSnapshot { total_micros: 1500, count: 1 });
        let mut m = RunManifest::new(snap);
        m.set_meta("seed", "7");
        m.set_meta("days", "20");
        m.set_host("peak_rss_bytes", "12345678");
        m
    }

    #[test]
    fn json_has_meta_first_and_no_wall_section() {
        let json = sample_manifest().to_json();
        assert!(json.starts_with("{\"meta\":{\"days\":\"20\",\"seed\":\"7\"},\"counters\":"));
        assert!(json.ends_with("}\n"));
        assert!(!json.contains("study_simulate"), "wall spans must stay out of metrics.json");
        assert!(!json.contains("wall"));
        assert!(!json.contains("peak_rss_bytes"), "host facts must stay out of metrics.json");
    }

    #[test]
    fn json_escapes_meta_strings() {
        let mut m = RunManifest::new(Snapshot::default());
        m.set_meta("note", "line\"one\"\nline\\two");
        let json = m.to_json();
        assert!(json.contains("\"note\":\"line\\\"one\\\"\\nline\\\\two\""));
    }

    #[test]
    fn text_summary_labels_wall_clock_as_nondeterministic() {
        let text = sample_manifest().to_text();
        assert!(text.contains("## counters"));
        assert!(text.contains("a_total"));
        assert!(text.contains("flow_duration_micros: count=3 sum=450 mean=150 max=300"));
        assert!(text.contains("non-deterministic"));
        assert!(text.contains("study_simulate"));
        assert!(text.contains("## host (non-deterministic; excluded from metrics.json)"));
        assert!(text.contains("peak_rss_bytes  12345678"));
    }

    #[test]
    fn text_histogram_rows_skip_empty_buckets_and_mark_overflow() {
        let text = sample_manifest().to_text();
        assert!(text.contains("<="), "populated bounded bucket shown");
        assert!(text.contains(" > "), "overflow bucket shown");
        // Middle bucket (<=100) is empty and must be omitted.
        assert!(!text.lines().any(|l| l.trim_start().starts_with("<= ") && l.contains("100 ") && l.ends_with(" 0")));
    }
}
