//! # simnet — deterministic network-simulation substrate
//!
//! The foundation of the BISmark reproduction: everything the other crates
//! build on, with **no wall-clock time and no global state**, so that an
//! entire six-month, 126-home study replays bit-identically from one seed.
//!
//! Modules:
//!
//! * [`time`] — virtual instants/durations and calendar helpers (the study
//!   epoch is Monday 2012-10-01 UTC, matching the paper's Heartbeats window).
//! * [`rng`] — labeled, independently derivable random streams plus the
//!   distribution samplers the behavioral models need.
//! * [`event`] — the discrete-event queue with FIFO tie-breaking and
//!   cancellation.
//! * [`packet`] — Ethernet/IPv4/UDP/TCP wire formats with checksums, in the
//!   explicit parse/emit style of small event-driven TCP/IP stacks.
//! * [`link`] — access links: serialization, token-bucket shaping,
//!   drop-tail queues (the bufferbloat mechanism), and lossy WAN paths.
//! * [`impair`] — scheduled link/collector impairment windows (loss and
//!   latency spikes, total outages) that fault plans compile into.
//! * [`metrics`] — `obs` handles for the world-layer counters (published
//!   once at end of run; the substrate itself stays observability-free).
//! * [`nat`] — the address/port translator the paper peeks behind.
//! * [`arp`] — neighbor discovery and the gateway's neighbor table.
//! * [`icmp`] — echo request/reply for latency probing.
//! * [`dhcp`] — LAN address leases keyed by MAC.
//! * [`dns`] — A/CNAME records, RFC 1035 wire images, zone database, and a
//!   caching stub resolver.
//! * [`wifi`] — bands, channels, radios, neighbor APs, scanning, and
//!   contention.
//!
//! Design note: this crate deliberately avoids an async runtime. The
//! simulation is CPU-bound and must be deterministic; an event queue driven
//! in virtual time is both simpler and reproducible, while parallelism
//! across independent homes is layered on top by `bismark-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arp;
pub mod dhcp;
pub mod dns;
pub mod event;
pub mod icmp;
pub mod impair;
pub mod link;
pub mod metrics;
pub mod nat;
pub mod packet;
pub mod rng;
pub mod time;
pub mod wifi;

pub use event::{EventId, EventQueue};
pub use rng::DetRng;
pub use time::{SimDuration, SimTime};
