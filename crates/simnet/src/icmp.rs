//! ICMP echo (ping): wire format with checksum, for the firmware's
//! last-mile latency probes.
//!
//! The paper's platform (BISmark) continuously measured access-link RTT in
//! its companion performance study; this reproduction carries that
//! capability as well (the `firmware::latency` module), and the echo
//! packets are real wire images like everything else the instrument sends.

use crate::packet::{checksum, ParseError};

/// ICMP header length (echo).
pub const ICMP_HEADER_LEN: usize = 8;

/// An ICMP echo request or reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcmpEcho {
    /// True for replies (type 0), false for requests (type 8).
    pub is_reply: bool,
    /// Identifier (per probing process).
    pub ident: u16,
    /// Sequence number within the train.
    pub seq: u16,
    /// Payload (typically a timestamp cookie).
    pub payload: Vec<u8>,
}

impl IcmpEcho {
    /// A request with the given identity and payload.
    pub fn request(ident: u16, seq: u16, payload: Vec<u8>) -> IcmpEcho {
        IcmpEcho { is_reply: false, ident, seq, payload }
    }

    /// The reply echoing this request.
    pub fn reply_to(&self) -> IcmpEcho {
        IcmpEcho { is_reply: true, ident: self.ident, seq: self.seq, payload: self.payload.clone() }
    }

    /// Length on the wire.
    pub fn wire_len(&self) -> usize {
        ICMP_HEADER_LEN + self.payload.len()
    }

    /// Serialize with checksum.
    pub fn emit(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_len());
        buf.push(if self.is_reply { 0 } else { 8 });
        buf.push(0); // code
        buf.extend_from_slice(&[0, 0]); // checksum placeholder
        buf.extend_from_slice(&self.ident.to_be_bytes());
        buf.extend_from_slice(&self.seq.to_be_bytes());
        buf.extend_from_slice(&self.payload);
        let c = checksum::checksum(&buf);
        buf[2..4].copy_from_slice(&c.to_be_bytes());
        buf
    }

    /// Parse and verify a wire image.
    pub fn parse(data: &[u8]) -> Result<IcmpEcho, ParseError> {
        if data.len() < ICMP_HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let is_reply = match data[0] {
            0 => true,
            8 => false,
            _ => return Err(ParseError::Unsupported),
        };
        if data[1] != 0 {
            return Err(ParseError::Unsupported);
        }
        if !checksum::verify(data) {
            return Err(ParseError::BadChecksum);
        }
        Ok(IcmpEcho {
            is_reply,
            ident: u16::from_be_bytes([data[4], data[5]]),
            seq: u16::from_be_bytes([data[6], data[7]]),
            payload: data[ICMP_HEADER_LEN..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let req = IcmpEcho::request(0xBEEF, 3, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        let parsed = IcmpEcho::parse(&req.emit()).unwrap();
        assert_eq!(parsed, req);
        let rep = req.reply_to();
        assert!(rep.is_reply);
        assert_eq!(IcmpEcho::parse(&rep.emit()).unwrap(), rep);
    }

    #[test]
    fn corruption_detected() {
        let mut wire = IcmpEcho::request(1, 1, vec![9; 16]).emit();
        wire[10] ^= 0xFF;
        assert_eq!(IcmpEcho::parse(&wire), Err(ParseError::BadChecksum));
    }

    #[test]
    fn unknown_type_rejected() {
        let mut wire = IcmpEcho::request(1, 1, vec![]).emit();
        wire[0] = 3; // destination unreachable
        assert_eq!(IcmpEcho::parse(&wire), Err(ParseError::Unsupported));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(IcmpEcho::parse(&[8, 0, 0]), Err(ParseError::Truncated));
    }
}
