//! The discrete-event core: a time-ordered event queue with stable tie
//! ordering and O(log n) cancellation.
//!
//! Following the event-driven style of small embedded TCP/IP stacks, the
//! queue does not own a run loop or callbacks. A simulation owns an
//! [`EventQueue`] plus its state, and drives itself:
//!
//! ```
//! use simnet::event::EventQueue;
//! use simnet::time::{SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Tick }
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_micros(10), Ev::Tick);
//! let end = SimTime::from_micros(100);
//! while let Some((t, ev)) = q.pop_if_before(end) {
//!     assert_eq!(ev, Ev::Tick);
//!     // A handler may schedule follow-up events here: `q.schedule(...)`.
//!     let _ = t;
//! }
//! assert!(q.is_empty());
//! ```
//!
//! Two events at the same instant are delivered in the order they were
//! scheduled (FIFO tie-break via a sequence number), which keeps runs
//! deterministic regardless of heap internals.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Opaque handle for a scheduled event, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

// Ordering is by (time, sequence); the payload never participates.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic future-event list.
///
/// The queue tracks the current virtual time ([`EventQueue::now`]), which
/// advances to each event's timestamp as it is popped. Scheduling strictly
/// in the past panics — that is always a simulation bug, not a recoverable
/// condition.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    /// Ids of events that are scheduled and not yet delivered or cancelled.
    /// Entries in `heap` whose id is absent here are tombstones to skip.
    live: HashSet<u64>,
    next_seq: u64,
    now: SimTime,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue positioned at the study epoch.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            next_seq: 0,
            now: SimTime::EPOCH,
            processed: 0,
        }
    }

    /// Current virtual time: the timestamp of the most recently popped
    /// event, or the epoch before any event has run.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events delivered so far (cancelled events excluded).
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of live (not cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `event` at the absolute instant `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current virtual time.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        assert!(at >= self.now, "scheduling into the past: {} < {}", at, self.now);
        let id = EventId(self.next_seq);
        self.heap.push(Reverse(Entry { at, seq: self.next_seq, event }));
        self.live.insert(self.next_seq);
        self.next_seq += 1;
        id
    }

    /// Schedule `event` at `now + delay`.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> EventId {
        self.schedule(self.now + delay, event)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (it will now never be delivered), `false` if it had
    /// already fired, been cancelled, or never existed.
    pub fn cancel(&mut self, id: EventId) -> bool {
        // Lazy deletion: drop the id from the live set now; the heap entry
        // becomes a tombstone discarded when it surfaces. Clearing dead
        // heads here keeps the invariant that the heap head, if any, is
        // always live — which is what lets `peek_time` take `&self`.
        let was_live = self.live.remove(&id.0);
        if was_live {
            self.drop_dead_heads();
        }
        was_live
    }

    /// Discard tombstones sitting at the heap head. Called after every
    /// mutation that can expose one, so the head is live between calls.
    fn drop_dead_heads(&mut self) {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.live.contains(&entry.seq) {
                break;
            }
            self.heap.pop();
        }
    }

    /// Pop the next event if its timestamp is strictly before `end`,
    /// advancing the virtual clock to it. Returns `None` — leaving the event
    /// queued — when the next event is at or after `end`, or the queue is
    /// empty. On `None` the clock does not move.
    pub fn pop_if_before(&mut self, end: SimTime) -> Option<(SimTime, E)> {
        // The head is live by invariant (see `drop_dead_heads`).
        let head_at = match self.heap.peek() {
            Some(Reverse(entry)) => entry.at,
            None => return None,
        };
        if head_at >= end {
            return None;
        }
        let Reverse(entry) = self.heap.pop().expect("peeked entry exists");
        self.live.remove(&entry.seq);
        debug_assert!(entry.at >= self.now, "event queue time went backwards");
        self.now = entry.at;
        self.processed += 1;
        // Popping may expose buried tombstones; restore the invariant.
        self.drop_dead_heads();
        Some((entry.at, entry.event))
    }

    /// Pop the next event unconditionally (if any).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_if_before(SimTime::from_micros(u64::MAX))
    }

    /// Timestamp of the next live event without popping it. Read-only:
    /// cancellation tombstones are cleared from the heap head eagerly by
    /// `cancel` and `pop_if_before`, so the head is always live here.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(entry)| {
            debug_assert!(
                self.live.contains(&entry.seq),
                "heap head must never be a tombstone"
            );
            entry.at
        })
    }

    /// Advance the clock to `to` without delivering anything.
    ///
    /// # Panics
    /// Panics if `to` is in the past or if a live event is pending before
    /// `to` (skipping scheduled work is a simulation bug).
    pub fn fast_forward(&mut self, to: SimTime) {
        assert!(to >= self.now, "fast_forward into the past");
        if let Some(at) = self.peek_time() {
            assert!(at >= to, "fast_forward would skip a pending event at {}", at);
        }
        self.now = to;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Ev {
        A,
        B,
        C,
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), Ev::C);
        q.schedule(t(10), Ev::A);
        q.schedule(t(20), Ev::B);
        let order: Vec<Ev> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![Ev::A, Ev::B, Ev::C]);
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn fifo_tie_break_at_same_instant() {
        let mut q = EventQueue::new();
        q.schedule(t(5), Ev::A);
        q.schedule(t(5), Ev::B);
        q.schedule(t(5), Ev::C);
        let order: Vec<Ev> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![Ev::A, Ev::B, Ev::C]);
    }

    #[test]
    fn pop_if_before_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(t(10), Ev::A);
        q.schedule(t(50), Ev::B);
        assert_eq!(q.pop_if_before(t(50)), Some((t(10), Ev::A)));
        assert_eq!(q.pop_if_before(t(50)), None);
        assert_eq!(q.len(), 1, "event at the horizon stays queued");
        assert_eq!(q.pop_if_before(t(51)), Some((t(50), Ev::B)));
    }

    #[test]
    fn clock_advances_with_pops_only() {
        let mut q = EventQueue::new();
        q.schedule(t(40), Ev::A);
        assert_eq!(q.now(), SimTime::EPOCH);
        assert_eq!(q.pop_if_before(t(30)), None);
        assert_eq!(q.now(), SimTime::EPOCH);
        q.pop().unwrap();
        assert_eq!(q.now(), t(40));
    }

    #[test]
    fn cancellation_suppresses_delivery() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), Ev::A);
        q.schedule(t(20), Ev::B);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(20), Ev::B)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<Ev> = EventQueue::new();
        assert!(!q.cancel(EventId(999)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), Ev::A);
        q.schedule(t(20), Ev::B);
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(20)));
    }

    #[test]
    fn peek_time_is_read_only() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), Ev::A);
        q.schedule(t(20), Ev::B);
        q.cancel(a);
        // peek_time takes &self: observable through a shared reference.
        let shared: &EventQueue<Ev> = &q;
        assert_eq!(shared.peek_time(), Some(t(20)));
        assert_eq!(shared.peek_time(), Some(t(20)));
    }

    #[test]
    fn buried_tombstone_cleared_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), Ev::A);
        let b = q.schedule(t(20), Ev::B);
        q.schedule(t(30), Ev::C);
        q.cancel(b); // not at the head yet: becomes a buried tombstone
        assert_eq!(q.pop(), Some((t(10), Ev::A)));
        // Popping A exposed B's tombstone; the head must already be live.
        assert_eq!((&q).peek_time(), Some(t(30)));
        assert_eq!(q.pop(), Some((t(30), Ev::C)));
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule(t(100), Ev::A);
        q.pop().unwrap();
        q.schedule_after(SimDuration::from_micros(5), Ev::B);
        assert_eq!(q.pop(), Some((t(105), Ev::B)));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(t(100), Ev::A);
        q.pop().unwrap();
        q.schedule(t(50), Ev::B);
    }

    #[test]
    fn fast_forward_moves_clock() {
        let mut q: EventQueue<Ev> = EventQueue::new();
        q.fast_forward(t(500));
        assert_eq!(q.now(), t(500));
    }

    #[test]
    #[should_panic(expected = "would skip a pending event")]
    fn fast_forward_cannot_skip_events() {
        let mut q = EventQueue::new();
        q.schedule(t(10), Ev::A);
        q.fast_forward(t(20));
    }

    #[test]
    fn handler_reschedule_pattern() {
        // The idiomatic driver loop: pop, then handle (handler may schedule).
        let mut q = EventQueue::new();
        q.schedule(t(0), Ev::A);
        let end = t(100);
        let mut ticks = 0;
        while let Some((at, Ev::A)) = q.pop_if_before(end) {
            ticks += 1;
            q.schedule(at + SimDuration::from_micros(10), Ev::A);
        }
        assert_eq!(ticks, 10);
        assert_eq!(q.len(), 1, "next tick remains queued past the horizon");
    }
}
