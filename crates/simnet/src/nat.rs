//! Network address and port translation — the device the paper is titled
//! after.
//!
//! The NAT is why home networks are opaque from outside: every LAN flow is
//! rewritten to the single WAN address, so an external observer sees one
//! host. The BISmark gateway sits *at* the NAT and can attribute flows to
//! LAN devices before the translation erases that information; this module
//! implements the translation so that the firmware's vantage point is real
//! rather than asserted.
//!
//! The table implements endpoint-independent mapping (full-cone style) with
//! idle expiry and LRU eviction under port pressure, which matches consumer
//! gateway behavior closely enough for this study.

use crate::packet::{Endpoint, FiveTuple, IpProtocol};
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Default idle timeout for UDP mappings (typical CPE value).
pub const UDP_IDLE_TIMEOUT: SimDuration = SimDuration::from_secs(120);
/// Default idle timeout for TCP mappings.
pub const TCP_IDLE_TIMEOUT: SimDuration = SimDuration::from_secs(1_800);

/// First WAN port the allocator hands out.
const PORT_RANGE_START: u16 = 1_024;

#[derive(Debug, Clone)]
struct Mapping {
    wan_port: u16,
    last_used: SimTime,
}

/// Outcome of translating an outbound packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutboundXlate {
    /// The flow as it appears on the WAN side.
    pub wan_flow: FiveTuple,
    /// True when this packet created a new mapping (a "new connection" from
    /// the firmware's perspective).
    pub created: bool,
}

/// Errors from translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NatError {
    /// No mapping matches an inbound packet; consumer NATs drop these.
    NoMapping,
    /// All WAN ports for this protocol are in use and none is evictable.
    PortsExhausted,
}

impl std::fmt::Display for NatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NatError::NoMapping => write!(f, "no NAT mapping for inbound packet"),
            NatError::PortsExhausted => write!(f, "NAT port range exhausted"),
        }
    }
}

impl std::error::Error for NatError {}

/// The translation table for one gateway.
///
/// ```
/// use simnet::nat::Nat;
/// use simnet::packet::{Endpoint, FiveTuple, IpProtocol};
/// use simnet::time::SimTime;
/// use std::net::Ipv4Addr;
///
/// let mut nat = Nat::new(Ipv4Addr::new(203, 0, 113, 7));
/// let flow = FiveTuple {
///     proto: IpProtocol::Tcp,
///     src: Endpoint::new(Ipv4Addr::new(192, 168, 1, 10), 40_000),
///     dst: Endpoint::new(Ipv4Addr::new(23, 64, 1, 10), 443),
/// };
/// let out = nat.translate_outbound(SimTime::EPOCH, flow).unwrap();
/// assert_eq!(out.wan_flow.src.addr, nat.wan_addr());
/// // The reply finds its way back to the LAN host.
/// let back = nat.translate_inbound(SimTime::EPOCH, out.wan_flow.reversed()).unwrap();
/// assert_eq!(back.dst, flow.src);
/// ```
#[derive(Debug)]
pub struct Nat {
    wan_addr: Ipv4Addr,
    /// (proto, LAN endpoint) -> mapping. Endpoint-independent: one WAN port
    /// per LAN endpoint regardless of destination.
    by_lan: BTreeMap<(IpProtocol, Endpoint), Mapping>,
    /// (proto, WAN port) -> LAN endpoint, the inbound direction.
    by_wan: BTreeMap<(IpProtocol, u16), Endpoint>,
    next_port: u16,
    udp_timeout: SimDuration,
    tcp_timeout: SimDuration,
    /// Upper bound on simultaneous mappings (memory limit of the CPE).
    capacity: usize,
    /// Cumulative LRU evictions (table pressure or port exhaustion); never
    /// reset, read by the observability layer at end of run.
    evictions: u64,
}

impl Nat {
    /// A NAT translating to `wan_addr` with default timeouts and a typical
    /// CPE table capacity.
    pub fn new(wan_addr: Ipv4Addr) -> Self {
        Nat::with_limits(wan_addr, UDP_IDLE_TIMEOUT, TCP_IDLE_TIMEOUT, 4_096)
    }

    /// Full control over timeouts and table capacity.
    pub fn with_limits(
        wan_addr: Ipv4Addr,
        udp_timeout: SimDuration,
        tcp_timeout: SimDuration,
        capacity: usize,
    ) -> Self {
        assert!(capacity > 0);
        Nat {
            wan_addr,
            by_lan: BTreeMap::new(),
            by_wan: BTreeMap::new(),
            next_port: PORT_RANGE_START,
            udp_timeout,
            tcp_timeout,
            capacity,
            evictions: 0,
        }
    }

    /// The public address of this gateway.
    pub fn wan_addr(&self) -> Ipv4Addr {
        self.wan_addr
    }

    /// Number of live mappings.
    pub fn mapping_count(&self) -> usize {
        self.by_lan.len()
    }

    /// Cumulative count of mappings evicted under pressure (LRU victim
    /// chosen because the table or port space was full).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn timeout_for(&self, proto: IpProtocol) -> SimDuration {
        match proto {
            IpProtocol::Udp => self.udp_timeout,
            _ => self.tcp_timeout,
        }
    }

    /// Drop mappings idle longer than their protocol timeout.
    pub fn expire(&mut self, now: SimTime) {
        let udp_t = self.udp_timeout;
        let tcp_t = self.tcp_timeout;
        let by_wan = &mut self.by_wan;
        self.by_lan.retain(|(proto, _), m| {
            let timeout = if *proto == IpProtocol::Udp { udp_t } else { tcp_t };
            let live = now.saturating_since(m.last_used) < timeout;
            if !live {
                by_wan.remove(&(*proto, m.wan_port));
            }
            live
        });
    }

    fn allocate_port(&mut self, proto: IpProtocol, now: SimTime) -> Result<u16, NatError> {
        // Scan the circular port space once for a free port.
        let span = u16::MAX - PORT_RANGE_START;
        for _ in 0..=span {
            let candidate = self.next_port;
            self.next_port =
                if self.next_port == u16::MAX { PORT_RANGE_START } else { self.next_port + 1 };
            if !self.by_wan.contains_key(&(proto, candidate)) {
                return Ok(candidate);
            }
        }
        // No free port: evict the least recently used mapping of this proto.
        self.evict_lru(proto, now)
    }

    fn evict_lru(&mut self, proto: IpProtocol, _now: SimTime) -> Result<u16, NatError> {
        let victim = self
            .by_lan
            .iter()
            .filter(|((p, _), _)| *p == proto)
            .min_by_key(|(_, m)| m.last_used)
            .map(|((_, lan), m)| (*lan, m.wan_port));
        match victim {
            Some((lan, port)) => {
                self.by_lan.remove(&(proto, lan));
                self.by_wan.remove(&(proto, port));
                self.evictions += 1;
                Ok(port)
            }
            None => Err(NatError::PortsExhausted),
        }
    }

    /// Translate an outbound (LAN→WAN) flow, creating a mapping if needed.
    pub fn translate_outbound(
        &mut self,
        now: SimTime,
        flow: FiveTuple,
    ) -> Result<OutboundXlate, NatError> {
        let key = (flow.proto, flow.src);
        if let Some(m) = self.by_lan.get_mut(&key) {
            m.last_used = now;
            let wan_src = Endpoint::new(self.wan_addr, m.wan_port);
            return Ok(OutboundXlate {
                wan_flow: FiveTuple { proto: flow.proto, src: wan_src, dst: flow.dst },
                created: false,
            });
        }
        if self.by_lan.len() >= self.capacity {
            // Table pressure: expire first, then evict LRU of this proto.
            self.expire(now);
            if self.by_lan.len() >= self.capacity {
                self.evict_lru(flow.proto, now)?;
            }
        }
        let wan_port = self.allocate_port(flow.proto, now)?;
        self.by_lan.insert(key, Mapping { wan_port, last_used: now });
        self.by_wan.insert((flow.proto, wan_port), flow.src);
        let wan_src = Endpoint::new(self.wan_addr, wan_port);
        Ok(OutboundXlate {
            wan_flow: FiveTuple { proto: flow.proto, src: wan_src, dst: flow.dst },
            created: true,
        })
    }

    /// Translate an inbound (WAN→LAN) flow addressed to our WAN address.
    /// Returns the flow as seen on the LAN, or `NoMapping` (dropped).
    pub fn translate_inbound(
        &mut self,
        now: SimTime,
        flow: FiveTuple,
    ) -> Result<FiveTuple, NatError> {
        debug_assert_eq!(flow.dst.addr, self.wan_addr, "inbound packet not for us");
        let lan = *self
            .by_wan
            .get(&(flow.proto, flow.dst.port))
            .ok_or(NatError::NoMapping)?;
        // Refresh the mapping: inbound traffic keeps it alive.
        let timeout = self.timeout_for(flow.proto);
        if let Some(m) = self.by_lan.get_mut(&(flow.proto, lan)) {
            // Stale entries past their timeout are treated as gone even if
            // not yet swept by `expire`.
            if now.saturating_since(m.last_used) >= timeout {
                self.by_lan.remove(&(flow.proto, lan));
                self.by_wan.remove(&(flow.proto, flow.dst.port));
                return Err(NatError::NoMapping);
            }
            m.last_used = now;
        }
        Ok(FiveTuple { proto: flow.proto, src: flow.src, dst: lan })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WAN: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 7);

    fn t(secs: u64) -> SimTime {
        SimTime::from_micros(secs * 1_000_000)
    }

    fn lan_flow(host: u8, sport: u16) -> FiveTuple {
        FiveTuple {
            proto: IpProtocol::Udp,
            src: Endpoint::new(Ipv4Addr::new(192, 168, 1, host), sport),
            dst: Endpoint::new(Ipv4Addr::new(8, 8, 8, 8), 53),
        }
    }

    #[test]
    fn outbound_rewrites_to_wan_addr() {
        let mut nat = Nat::new(WAN);
        let x = nat.translate_outbound(t(0), lan_flow(10, 5555)).unwrap();
        assert!(x.created);
        assert_eq!(x.wan_flow.src.addr, WAN);
        assert_ne!(x.wan_flow.src.port, 5555 /* not guaranteed, but allocator starts at 1024 */);
        assert_eq!(x.wan_flow.dst, lan_flow(10, 5555).dst);
    }

    #[test]
    fn mapping_is_stable_and_reused() {
        let mut nat = Nat::new(WAN);
        let a = nat.translate_outbound(t(0), lan_flow(10, 5555)).unwrap();
        let b = nat.translate_outbound(t(1), lan_flow(10, 5555)).unwrap();
        assert!(!b.created);
        assert_eq!(a.wan_flow.src, b.wan_flow.src);
        assert_eq!(nat.mapping_count(), 1);
    }

    #[test]
    fn distinct_lan_endpoints_get_distinct_ports() {
        let mut nat = Nat::new(WAN);
        let a = nat.translate_outbound(t(0), lan_flow(10, 5555)).unwrap();
        let b = nat.translate_outbound(t(0), lan_flow(11, 5555)).unwrap();
        let c = nat.translate_outbound(t(0), lan_flow(10, 5556)).unwrap();
        assert_ne!(a.wan_flow.src.port, b.wan_flow.src.port);
        assert_ne!(a.wan_flow.src.port, c.wan_flow.src.port);
    }

    #[test]
    fn inbound_reverses_mapping() {
        let mut nat = Nat::new(WAN);
        let out = nat.translate_outbound(t(0), lan_flow(10, 5555)).unwrap();
        let inbound = FiveTuple {
            proto: IpProtocol::Udp,
            src: out.wan_flow.dst,
            dst: out.wan_flow.src,
        };
        let lan = nat.translate_inbound(t(1), inbound).unwrap();
        assert_eq!(lan.dst, lan_flow(10, 5555).src);
    }

    #[test]
    fn unsolicited_inbound_dropped() {
        let mut nat = Nat::new(WAN);
        let inbound = FiveTuple {
            proto: IpProtocol::Udp,
            src: Endpoint::new(Ipv4Addr::new(198, 51, 100, 1), 4000),
            dst: Endpoint::new(WAN, 2000),
        };
        assert_eq!(nat.translate_inbound(t(0), inbound), Err(NatError::NoMapping));
    }

    #[test]
    fn idle_mappings_expire() {
        let mut nat = Nat::new(WAN);
        nat.translate_outbound(t(0), lan_flow(10, 5555)).unwrap();
        nat.expire(t(0) + UDP_IDLE_TIMEOUT);
        assert_eq!(nat.mapping_count(), 0);
    }

    #[test]
    fn traffic_refreshes_mapping() {
        let mut nat = Nat::new(WAN);
        nat.translate_outbound(t(0), lan_flow(10, 5555)).unwrap();
        nat.translate_outbound(t(100), lan_flow(10, 5555)).unwrap();
        nat.expire(t(130));
        assert_eq!(nat.mapping_count(), 1, "refreshed mapping survives");
        nat.expire(t(100) + UDP_IDLE_TIMEOUT);
        assert_eq!(nat.mapping_count(), 0);
    }

    #[test]
    fn stale_inbound_rejected_without_sweep() {
        let mut nat = Nat::new(WAN);
        let out = nat.translate_outbound(t(0), lan_flow(10, 5555)).unwrap();
        let inbound = FiveTuple {
            proto: IpProtocol::Udp,
            src: out.wan_flow.dst,
            dst: out.wan_flow.src,
        };
        let late = t(0) + UDP_IDLE_TIMEOUT + SimDuration::from_secs(1);
        assert_eq!(nat.translate_inbound(late, inbound), Err(NatError::NoMapping));
    }

    #[test]
    fn capacity_pressure_evicts_lru() {
        let mut nat = Nat::with_limits(WAN, UDP_IDLE_TIMEOUT, TCP_IDLE_TIMEOUT, 2);
        nat.translate_outbound(t(0), lan_flow(1, 1000)).unwrap();
        nat.translate_outbound(t(1), lan_flow(2, 1000)).unwrap();
        nat.translate_outbound(t(2), lan_flow(3, 1000)).unwrap();
        assert_eq!(nat.mapping_count(), 2);
        // The oldest (host 1) must be gone; host 3 must be mapped.
        let x = nat.translate_outbound(t(3), lan_flow(3, 1000)).unwrap();
        assert!(!x.created);
        let y = nat.translate_outbound(t(4), lan_flow(1, 1000)).unwrap();
        assert!(y.created, "evicted mapping must be recreated");
    }

    #[test]
    fn tcp_and_udp_port_spaces_independent() {
        let mut nat = Nat::new(WAN);
        let udp = nat.translate_outbound(t(0), lan_flow(10, 5555)).unwrap();
        let mut tcp_flow = lan_flow(10, 5555);
        tcp_flow.proto = IpProtocol::Tcp;
        let tcp = nat.translate_outbound(t(0), tcp_flow).unwrap();
        // Both may hold the same numeric port because the spaces are keyed
        // by protocol; at minimum both mappings coexist.
        assert_eq!(nat.mapping_count(), 2);
        assert_eq!(udp.wan_flow.src.addr, tcp.wan_flow.src.addr);
    }
}
