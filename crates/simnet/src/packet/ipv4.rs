//! IPv4 header handling: emit with a valid header checksum, parse with
//! verification. Options are not supported (IHL must be 5), matching the
//! traffic the simulation generates.

use super::checksum;
use super::ParseError;
use std::net::Ipv4Addr;

/// Length of an option-less IPv4 header.
pub const IPV4_HEADER_LEN: usize = 20;

/// IP protocol numbers used in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub enum IpProtocol {
    /// ICMP (protocol 1).
    Icmp,
    /// TCP (protocol 6).
    Tcp,
    /// UDP (protocol 17).
    Udp,
    /// Any other protocol number, carried verbatim.
    Other(u8),
}

impl From<u8> for IpProtocol {
    fn from(v: u8) -> Self {
        match v {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }
}

impl From<IpProtocol> for u8 {
    fn from(p: IpProtocol) -> u8 {
        match p {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(v) => v,
        }
    }
}

/// A parsed or to-be-emitted IPv4 packet (no options).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Packet {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Transport protocol of the payload.
    pub protocol: IpProtocol,
    /// Time to live.
    pub ttl: u8,
    /// Identification field (fragmentation is not used).
    pub identification: u16,
    /// Differentiated services byte; zero for normal traffic.
    pub dscp_ecn: u8,
    /// Transport payload bytes.
    pub payload: Vec<u8>,
}

impl Ipv4Packet {
    /// Build a packet with the default TTL of 64.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol, payload: Vec<u8>) -> Self {
        Ipv4Packet { src, dst, protocol, ttl: 64, identification: 0, dscp_ecn: 0, payload }
    }

    /// Total length on the wire.
    pub fn wire_len(&self) -> usize {
        IPV4_HEADER_LEN + self.payload.len()
    }

    /// A borrowed view over this packet, for allocation-free emission.
    pub fn view(&self) -> Ipv4View<'_> {
        Ipv4View {
            src: self.src,
            dst: self.dst,
            protocol: self.protocol,
            ttl: self.ttl,
            identification: self.identification,
            dscp_ecn: self.dscp_ecn,
            payload: &self.payload,
        }
    }

    /// Serialize, computing the header checksum.
    pub fn emit(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_len());
        self.emit_into(&mut buf);
        buf
    }

    /// Append the wire image to `out`, reusing its capacity.
    pub fn emit_into(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.resize(start + self.wire_len(), 0);
        self.view().emit_into(&mut out[start..]);
    }

    /// Parse and verify a wire image.
    pub fn parse(data: &[u8]) -> Result<Ipv4Packet, ParseError> {
        Ipv4View::parse(data).map(|v| v.to_owned())
    }

    /// Decrement TTL, returning `false` when the packet must be dropped.
    pub fn decrement_ttl(&mut self) -> bool {
        if self.ttl <= 1 {
            false
        } else {
            self.ttl -= 1;
            true
        }
    }
}

/// A borrowed IPv4 packet: the header fields plus a payload slice. This is
/// the allocation-free counterpart of [`Ipv4Packet`] — `parse` borrows the
/// payload from the wire image and `emit_into` writes into a caller-owned
/// buffer, so hot paths (heartbeats, probes) touch no heap at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4View<'a> {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Transport protocol of the payload.
    pub protocol: IpProtocol,
    /// Time to live.
    pub ttl: u8,
    /// Identification field (fragmentation is not used).
    pub identification: u16,
    /// Differentiated services byte; zero for normal traffic.
    pub dscp_ecn: u8,
    /// Transport payload bytes.
    pub payload: &'a [u8],
}

impl<'a> Ipv4View<'a> {
    /// Total length on the wire.
    pub fn wire_len(&self) -> usize {
        IPV4_HEADER_LEN + self.payload.len()
    }

    /// Write the wire image into `out[..self.wire_len()]`, computing the
    /// header checksum. Returns the number of bytes written.
    pub fn emit_into(&self, out: &mut [u8]) -> usize {
        let total_len = self.wire_len();
        self.emit_header_into(out);
        out[IPV4_HEADER_LEN..total_len].copy_from_slice(self.payload);
        total_len
    }

    /// Write only the 20-byte header (checksum included) into
    /// `out[..IPV4_HEADER_LEN]`, for callers that have already placed the
    /// payload after the header in the same buffer. The header's total
    /// length field still covers `self.payload.len()` payload bytes.
    pub fn emit_header_into(&self, out: &mut [u8]) -> usize {
        let total_len = self.wire_len();
        assert!(total_len <= u16::MAX as usize, "IPv4 packet too large");
        out[0] = 0x45; // version 4, IHL 5
        out[1] = self.dscp_ecn;
        out[2..4].copy_from_slice(&(total_len as u16).to_be_bytes());
        out[4..6].copy_from_slice(&self.identification.to_be_bytes());
        out[6..8].copy_from_slice(&[0x40, 0x00]); // flags: don't fragment
        out[8] = self.ttl;
        out[9] = self.protocol.into();
        out[10..12].copy_from_slice(&[0, 0]); // checksum placeholder
        out[12..16].copy_from_slice(&self.src.octets());
        out[16..20].copy_from_slice(&self.dst.octets());
        let c = checksum::checksum(&out[..IPV4_HEADER_LEN]);
        out[10..12].copy_from_slice(&c.to_be_bytes());
        IPV4_HEADER_LEN
    }

    /// Parse and verify a wire image, borrowing the payload.
    pub fn parse(data: &'a [u8]) -> Result<Ipv4View<'a>, ParseError> {
        if data.len() < IPV4_HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let version = data[0] >> 4;
        let ihl = (data[0] & 0x0F) as usize * 4;
        if version != 4 || ihl != IPV4_HEADER_LEN {
            return Err(ParseError::Unsupported);
        }
        let total_len = u16::from_be_bytes([data[2], data[3]]) as usize;
        if total_len < IPV4_HEADER_LEN || total_len > data.len() {
            return Err(ParseError::BadLength);
        }
        if !checksum::verify(&data[..IPV4_HEADER_LEN]) {
            return Err(ParseError::BadChecksum);
        }
        Ok(Ipv4View {
            src: Ipv4Addr::new(data[12], data[13], data[14], data[15]),
            dst: Ipv4Addr::new(data[16], data[17], data[18], data[19]),
            protocol: data[9].into(),
            ttl: data[8],
            identification: u16::from_be_bytes([data[4], data[5]]),
            dscp_ecn: data[1],
            payload: &data[IPV4_HEADER_LEN..total_len],
        })
    }

    /// Copy into an owning [`Ipv4Packet`].
    pub fn to_owned(&self) -> Ipv4Packet {
        Ipv4Packet {
            src: self.src,
            dst: self.dst,
            protocol: self.protocol,
            ttl: self.ttl,
            identification: self.identification,
            dscp_ecn: self.dscp_ecn,
            payload: self.payload.to_vec(),
        }
    }
}

/// True for RFC 1918 private addresses — what sits behind the NAT.
pub fn is_private(addr: Ipv4Addr) -> bool {
    let o = addr.octets();
    o[0] == 10 || (o[0] == 172 && (16..=31).contains(&o[1])) || (o[0] == 192 && o[1] == 168)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Packet {
        Ipv4Packet::new(
            Ipv4Addr::new(192, 168, 1, 10),
            Ipv4Addr::new(8, 8, 8, 8),
            IpProtocol::Udp,
            vec![0xAA; 32],
        )
    }

    #[test]
    fn round_trip() {
        let pkt = sample();
        let wire = pkt.emit();
        assert_eq!(wire.len(), pkt.wire_len());
        assert_eq!(Ipv4Packet::parse(&wire).unwrap(), pkt);
    }

    #[test]
    fn corrupted_checksum_rejected() {
        let mut wire = sample().emit();
        wire[15] ^= 0x01; // flip a bit inside the source address
        assert_eq!(Ipv4Packet::parse(&wire), Err(ParseError::BadChecksum));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(Ipv4Packet::parse(&[0x45; 10]), Err(ParseError::Truncated));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut wire = sample().emit();
        wire[0] = 0x65; // version 6
        assert_eq!(Ipv4Packet::parse(&wire), Err(ParseError::Unsupported));
    }

    #[test]
    fn bad_total_length_rejected() {
        let mut wire = sample().emit();
        // Claim a total length longer than the buffer; fix the checksum so
        // the length check (not the checksum check) does the rejecting.
        let bogus = (wire.len() + 64) as u16;
        wire[2..4].copy_from_slice(&bogus.to_be_bytes());
        wire[10..12].copy_from_slice(&[0, 0]);
        let c = checksum::checksum(&wire[..IPV4_HEADER_LEN]);
        wire[10..12].copy_from_slice(&c.to_be_bytes());
        assert_eq!(Ipv4Packet::parse(&wire), Err(ParseError::BadLength));
    }

    #[test]
    fn extra_trailing_bytes_ignored() {
        // Ethernet padding after the IP total length must not confuse parse.
        let pkt = sample();
        let mut wire = pkt.emit();
        wire.extend_from_slice(&[0u8; 6]);
        assert_eq!(Ipv4Packet::parse(&wire).unwrap(), pkt);
    }

    #[test]
    fn ttl_decrement() {
        let mut pkt = sample();
        pkt.ttl = 2;
        assert!(pkt.decrement_ttl());
        assert_eq!(pkt.ttl, 1);
        assert!(!pkt.decrement_ttl());
    }

    #[test]
    fn private_ranges() {
        assert!(is_private(Ipv4Addr::new(10, 1, 2, 3)));
        assert!(is_private(Ipv4Addr::new(172, 16, 0, 1)));
        assert!(is_private(Ipv4Addr::new(172, 31, 255, 1)));
        assert!(!is_private(Ipv4Addr::new(172, 32, 0, 1)));
        assert!(is_private(Ipv4Addr::new(192, 168, 1, 1)));
        assert!(!is_private(Ipv4Addr::new(8, 8, 8, 8)));
    }

    #[test]
    fn protocol_mapping() {
        assert_eq!(IpProtocol::from(6), IpProtocol::Tcp);
        assert_eq!(IpProtocol::from(17), IpProtocol::Udp);
        assert_eq!(IpProtocol::from(1), IpProtocol::Icmp);
        assert_eq!(u8::from(IpProtocol::Other(89)), 89);
    }
}
