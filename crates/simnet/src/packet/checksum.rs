//! The Internet checksum (RFC 1071) shared by the IPv4, UDP, and TCP
//! implementations.

use std::net::Ipv4Addr;

/// One's-complement sum of a byte slice, folding carries, without the final
/// complement. Odd trailing bytes are padded with zero per RFC 1071.
pub fn ones_complement_sum(data: &[u8]) -> u32 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    sum
}

/// Fold a 32-bit running sum to 16 bits and complement it.
pub fn finish(mut sum: u32) -> u16 {
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// RFC 1071 checksum of a standalone buffer (e.g. an IPv4 header with its
/// checksum field zeroed).
pub fn checksum(data: &[u8]) -> u16 {
    finish(ones_complement_sum(data))
}

/// Checksum over the IPv4 pseudo-header plus a transport segment, as UDP
/// and TCP require.
pub fn pseudo_header_checksum(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    protocol: u8,
    segment: &[u8],
) -> u16 {
    let mut sum = ones_complement_sum(&src.octets());
    sum += ones_complement_sum(&dst.octets());
    sum += u32::from(protocol);
    sum += segment.len() as u32;
    sum += ones_complement_sum(segment);
    finish(sum)
}

/// Verify a buffer whose checksum field is still in place: the folded sum of
/// the whole buffer must be zero.
pub fn verify(data: &[u8]) -> bool {
    finish(ones_complement_sum(data)) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_worked_example() {
        // The classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), !0xddf2u16);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xFF]), checksum(&[0xFF, 0x00]));
    }

    #[test]
    fn verify_round_trip() {
        let mut data = vec![0x45u8, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11, 0, 0];
        let c = checksum(&data);
        data[10..12].copy_from_slice(&c.to_be_bytes());
        assert!(verify(&data));
        data[4] ^= 0x01;
        assert!(!verify(&data));
    }

    #[test]
    fn empty_buffer_checksum() {
        assert_eq!(checksum(&[]), 0xFFFF);
    }

    #[test]
    fn pseudo_header_differs_by_protocol() {
        let a = Ipv4Addr::new(10, 0, 0, 1);
        let b = Ipv4Addr::new(8, 8, 8, 8);
        let seg = [1u8, 2, 3, 4];
        assert_ne!(
            pseudo_header_checksum(a, b, 17, &seg),
            pseudo_header_checksum(a, b, 6, &seg)
        );
    }
}
