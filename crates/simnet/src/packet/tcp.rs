//! TCP segment headers (no options beyond MSS on SYN), enough for the flow
//! layer to exchange realistic segments and for the firmware's flow-statistics
//! sampler to classify what it captures.

use super::checksum;
use super::ParseError;
use std::net::Ipv4Addr;

/// Length of an option-less TCP header.
pub const TCP_HEADER_LEN: usize = 20;

/// TCP control flags (subset relevant here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct TcpFlags {
    /// Synchronize sequence numbers.
    pub syn: bool,
    /// Acknowledgment field significant.
    pub ack: bool,
    /// No more data from sender.
    pub fin: bool,
    /// Reset the connection.
    pub rst: bool,
    /// Push function.
    pub psh: bool,
}

impl TcpFlags {
    /// The SYN flag alone (connection open).
    pub const SYN: TcpFlags = TcpFlags { syn: true, ack: false, fin: false, rst: false, psh: false };
    /// SYN+ACK (connection accept).
    pub const SYN_ACK: TcpFlags = TcpFlags { syn: true, ack: true, fin: false, rst: false, psh: false };
    /// ACK alone.
    pub const ACK: TcpFlags = TcpFlags { syn: false, ack: true, fin: false, rst: false, psh: false };
    /// FIN+ACK (half-close).
    pub const FIN_ACK: TcpFlags = TcpFlags { syn: false, ack: true, fin: true, rst: false, psh: false };

    fn to_byte(self) -> u8 {
        (u8::from(self.fin))
            | (u8::from(self.syn) << 1)
            | (u8::from(self.rst) << 2)
            | (u8::from(self.psh) << 3)
            | (u8::from(self.ack) << 4)
    }

    fn from_byte(b: u8) -> TcpFlags {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
        }
    }
}

/// A parsed or to-be-emitted TCP segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Segment payload.
    pub payload: Vec<u8>,
}

impl TcpSegment {
    /// Construct a data segment with sensible defaults.
    pub fn new(src_port: u16, dst_port: u16, seq: u32, flags: TcpFlags, payload: Vec<u8>) -> Self {
        TcpSegment { src_port, dst_port, seq, ack: 0, flags, window: 65_535, payload }
    }

    /// Length on the wire.
    pub fn wire_len(&self) -> usize {
        TCP_HEADER_LEN + self.payload.len()
    }

    /// Serialize with the pseudo-header checksum.
    pub fn emit(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_len());
        buf.extend_from_slice(&self.src_port.to_be_bytes());
        buf.extend_from_slice(&self.dst_port.to_be_bytes());
        buf.extend_from_slice(&self.seq.to_be_bytes());
        buf.extend_from_slice(&self.ack.to_be_bytes());
        buf.push(0x50); // data offset 5 words
        buf.push(self.flags.to_byte());
        buf.extend_from_slice(&self.window.to_be_bytes());
        buf.extend_from_slice(&[0, 0]); // checksum placeholder
        buf.extend_from_slice(&[0, 0]); // urgent pointer
        buf.extend_from_slice(&self.payload);
        let c = checksum::pseudo_header_checksum(src, dst, 6, &buf);
        buf[16..18].copy_from_slice(&c.to_be_bytes());
        buf
    }

    /// Parse and verify against the pseudo-header.
    pub fn parse(data: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<TcpSegment, ParseError> {
        if data.len() < TCP_HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let offset = ((data[12] >> 4) as usize) * 4;
        if offset < TCP_HEADER_LEN || offset > data.len() {
            return Err(ParseError::BadLength);
        }
        if checksum::pseudo_header_checksum(src, dst, 6, data) != 0 {
            return Err(ParseError::BadChecksum);
        }
        Ok(TcpSegment {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
            flags: TcpFlags::from_byte(data[13]),
            window: u16::from_be_bytes([data[14], data[15]]),
            payload: data[offset..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 5);
    const DST: Ipv4Addr = Ipv4Addr::new(74, 125, 21, 99);

    #[test]
    fn round_trip() {
        let seg = TcpSegment {
            src_port: 43_210,
            dst_port: 443,
            seq: 0xDEAD_BEEF,
            ack: 0x0102_0304,
            flags: TcpFlags { syn: false, ack: true, fin: false, rst: false, psh: true },
            window: 29_200,
            payload: vec![7; 100],
        };
        let wire = seg.emit(SRC, DST);
        assert_eq!(TcpSegment::parse(&wire, SRC, DST).unwrap(), seg);
    }

    #[test]
    fn flags_round_trip() {
        for flags in [TcpFlags::SYN, TcpFlags::SYN_ACK, TcpFlags::ACK, TcpFlags::FIN_ACK] {
            assert_eq!(TcpFlags::from_byte(flags.to_byte()), flags);
        }
        let rst = TcpFlags { rst: true, ..TcpFlags::default() };
        assert_eq!(TcpFlags::from_byte(rst.to_byte()), rst);
    }

    #[test]
    fn corrupt_rejected() {
        let seg = TcpSegment::new(1, 2, 0, TcpFlags::SYN, Vec::new());
        let mut wire = seg.emit(SRC, DST);
        wire[4] ^= 0x40;
        assert_eq!(TcpSegment::parse(&wire, SRC, DST), Err(ParseError::BadChecksum));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(TcpSegment::parse(&[0; 19], SRC, DST), Err(ParseError::Truncated));
    }

    #[test]
    fn bad_offset_rejected() {
        let seg = TcpSegment::new(1, 2, 0, TcpFlags::ACK, Vec::new());
        let mut wire = seg.emit(SRC, DST);
        wire[12] = 0xF0; // data offset 60 bytes > buffer
        assert_eq!(TcpSegment::parse(&wire, SRC, DST), Err(ParseError::BadLength));
    }
}
