//! UDP datagrams with pseudo-header checksums. Heartbeats, DNS, and the
//! ShaperProbe trains all ride on UDP.

use super::checksum;
use super::ParseError;
use std::net::Ipv4Addr;

/// Length of a UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// A parsed or to-be-emitted UDP datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Application payload.
    pub payload: Vec<u8>,
}

impl UdpDatagram {
    /// Construct a datagram.
    pub fn new(src_port: u16, dst_port: u16, payload: Vec<u8>) -> Self {
        UdpDatagram { src_port, dst_port, payload }
    }

    /// Length on the wire.
    pub fn wire_len(&self) -> usize {
        UDP_HEADER_LEN + self.payload.len()
    }

    /// A borrowed view over this datagram, for allocation-free emission.
    pub fn view(&self) -> UdpView<'_> {
        UdpView { src_port: self.src_port, dst_port: self.dst_port, payload: &self.payload }
    }

    /// Serialize with the pseudo-header checksum for the given IP pair.
    pub fn emit(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_len());
        self.emit_into(src, dst, &mut buf);
        buf
    }

    /// Append the wire image to `out`, reusing its capacity.
    pub fn emit_into(&self, src: Ipv4Addr, dst: Ipv4Addr, out: &mut Vec<u8>) {
        let start = out.len();
        out.resize(start + self.wire_len(), 0);
        self.view().emit_into(src, dst, &mut out[start..]);
    }

    /// Parse and verify against the pseudo-header for the given IP pair.
    pub fn parse(data: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<UdpDatagram, ParseError> {
        UdpView::parse(data, src, dst).map(|v| v.to_owned())
    }
}

/// A borrowed UDP datagram: ports plus a payload slice — the
/// allocation-free counterpart of [`UdpDatagram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpView<'a> {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Application payload.
    pub payload: &'a [u8],
}

impl<'a> UdpView<'a> {
    /// Length on the wire.
    pub fn wire_len(&self) -> usize {
        UDP_HEADER_LEN + self.payload.len()
    }

    /// Write the wire image into `out[..self.wire_len()]`, computing the
    /// pseudo-header checksum for the given IP pair. Returns the number of
    /// bytes written.
    pub fn emit_into(&self, src: Ipv4Addr, dst: Ipv4Addr, out: &mut [u8]) -> usize {
        let len = self.wire_len();
        assert!(len <= u16::MAX as usize, "UDP datagram too large");
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..6].copy_from_slice(&(len as u16).to_be_bytes());
        out[6..8].copy_from_slice(&[0, 0]);
        out[UDP_HEADER_LEN..len].copy_from_slice(self.payload);
        let mut c = checksum::pseudo_header_checksum(src, dst, 17, &out[..len]);
        if c == 0 {
            // RFC 768: an all-zero computed checksum is transmitted as 0xFFFF.
            c = 0xFFFF;
        }
        out[6..8].copy_from_slice(&c.to_be_bytes());
        len
    }

    /// Parse and verify against the pseudo-header, borrowing the payload.
    pub fn parse(data: &'a [u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<UdpView<'a>, ParseError> {
        if data.len() < UDP_HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let len = u16::from_be_bytes([data[4], data[5]]) as usize;
        if len < UDP_HEADER_LEN || len > data.len() {
            return Err(ParseError::BadLength);
        }
        let cksum = u16::from_be_bytes([data[6], data[7]]);
        if cksum != 0 {
            // A computed value of zero over data including the transmitted
            // checksum indicates validity.
            let sum = checksum::pseudo_header_checksum(src, dst, 17, &data[..len]);
            if sum != 0 {
                return Err(ParseError::BadChecksum);
            }
        }
        Ok(UdpView {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            payload: &data[UDP_HEADER_LEN..len],
        })
    }

    /// Copy into an owning [`UdpDatagram`].
    pub fn to_owned(&self) -> UdpDatagram {
        UdpDatagram {
            src_port: self.src_port,
            dst_port: self.dst_port,
            payload: self.payload.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 2);
    const DST: Ipv4Addr = Ipv4Addr::new(128, 61, 2, 1);

    #[test]
    fn round_trip() {
        let dgram = UdpDatagram::new(50_000, 53, b"heartbeat".to_vec());
        let wire = dgram.emit(SRC, DST);
        assert_eq!(UdpDatagram::parse(&wire, SRC, DST).unwrap(), dgram);
    }

    #[test]
    fn checksum_binds_addresses() {
        let dgram = UdpDatagram::new(1111, 2222, vec![9; 16]);
        let wire = dgram.emit(SRC, DST);
        // Same bytes presented with a different pseudo-header must fail.
        let other = Ipv4Addr::new(10, 0, 0, 1);
        assert_eq!(UdpDatagram::parse(&wire, other, DST), Err(ParseError::BadChecksum));
    }

    #[test]
    fn corrupt_payload_rejected() {
        let dgram = UdpDatagram::new(1111, 2222, vec![1, 2, 3, 4]);
        let mut wire = dgram.emit(SRC, DST);
        let last = wire.len() - 1;
        wire[last] ^= 0xFF;
        assert_eq!(UdpDatagram::parse(&wire, SRC, DST), Err(ParseError::BadChecksum));
    }

    #[test]
    fn truncated_and_bad_length() {
        assert_eq!(UdpDatagram::parse(&[0; 4], SRC, DST), Err(ParseError::Truncated));
        let dgram = UdpDatagram::new(1, 2, vec![0; 8]);
        let mut wire = dgram.emit(SRC, DST);
        wire[4..6].copy_from_slice(&100u16.to_be_bytes());
        assert_eq!(UdpDatagram::parse(&wire, SRC, DST), Err(ParseError::BadLength));
    }

    #[test]
    fn empty_payload_ok() {
        let dgram = UdpDatagram::new(7, 9, Vec::new());
        let wire = dgram.emit(SRC, DST);
        assert_eq!(wire.len(), UDP_HEADER_LEN);
        assert_eq!(UdpDatagram::parse(&wire, SRC, DST).unwrap(), dgram);
    }
}
