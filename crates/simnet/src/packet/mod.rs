//! Wire formats: Ethernet II, IPv4, UDP, and TCP headers with explicit
//! parse/emit and checksum validation, in the style of small event-driven
//! TCP/IP stacks (simple, robust, no macro tricks).
//!
//! The simulator moves most *bulk* traffic as aggregate flow records for
//! speed, but every packet that crosses a measured interface boundary —
//! heartbeats, capacity-probe trains, DNS transactions, flow samples — is a
//! real byte buffer built and parsed by this module, so the firmware's
//! capture path runs against genuine wire images.

pub mod checksum;
pub mod ethernet;
pub mod ipv4;
pub mod tcp;
pub mod udp;

pub use ethernet::{EtherType, EthernetFrame, EthernetView, MacAddr, ETHERNET_HEADER_LEN};
pub use ipv4::{IpProtocol, Ipv4Packet, Ipv4View, IPV4_HEADER_LEN};
pub use tcp::{TcpFlags, TcpSegment, TCP_HEADER_LEN};
pub use udp::{UdpDatagram, UdpView, UDP_HEADER_LEN};

use std::net::Ipv4Addr;

/// Errors from parsing a wire image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// Buffer shorter than the fixed header.
    Truncated,
    /// A length field disagrees with the buffer.
    BadLength,
    /// A checksum failed verification.
    BadChecksum,
    /// A version or type field holds an unsupported value.
    Unsupported,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Truncated => write!(f, "buffer truncated"),
            ParseError::BadLength => write!(f, "length field inconsistent"),
            ParseError::BadChecksum => write!(f, "checksum mismatch"),
            ParseError::Unsupported => write!(f, "unsupported field value"),
        }
    }
}

impl std::error::Error for ParseError {}

/// A transport endpoint: IPv4 address and port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Endpoint {
    /// The IPv4 address.
    pub addr: Ipv4Addr,
    /// The transport port.
    pub port: u16,
}

impl Endpoint {
    /// Construct an endpoint.
    pub const fn new(addr: Ipv4Addr, port: u16) -> Self {
        Endpoint { addr, port }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.addr, self.port)
    }
}

/// The transport 5-tuple that identifies a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FiveTuple {
    /// Transport protocol.
    pub proto: IpProtocol,
    /// Source endpoint.
    pub src: Endpoint,
    /// Destination endpoint.
    pub dst: Endpoint,
}

impl FiveTuple {
    /// The same flow viewed from the opposite direction.
    pub fn reversed(self) -> FiveTuple {
        FiveTuple { proto: self.proto, src: self.dst, dst: self.src }
    }
}

impl std::fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?} {} -> {}", self.proto, self.src, self.dst)
    }
}
