//! Ethernet II framing and MAC addresses.
//!
//! MAC addresses matter to this study beyond framing: the BISmark firmware
//! identifies device *manufacturers* from the OUI (upper 24 bits) and
//! anonymizes the device-specific lower 24 bits before upload (§3.2.2 of the
//! paper), so [`MacAddr`] exposes both halves explicitly.

use super::ParseError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Length of an Ethernet II header: destination, source, ethertype.
pub const ETHERNET_HEADER_LEN: usize = 14;

/// A 48-bit IEEE 802 MAC address.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address ff:ff:ff:ff:ff:ff.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// Build an address from an OUI (lower 24 bits used) and a NIC-specific
    /// suffix (lower 24 bits used).
    pub fn from_oui_nic(oui: u32, nic: u32) -> MacAddr {
        MacAddr([
            ((oui >> 16) & 0xFF) as u8,
            ((oui >> 8) & 0xFF) as u8,
            (oui & 0xFF) as u8,
            ((nic >> 16) & 0xFF) as u8,
            ((nic >> 8) & 0xFF) as u8,
            (nic & 0xFF) as u8,
        ])
    }

    /// The Organizationally Unique Identifier: upper 24 bits, which identify
    /// the manufacturer and which the firmware is allowed to report.
    pub fn oui(self) -> u32 {
        (u32::from(self.0[0]) << 16) | (u32::from(self.0[1]) << 8) | u32::from(self.0[2])
    }

    /// The NIC-specific lower 24 bits — the personally identifying half the
    /// firmware must hash before upload.
    pub fn nic(self) -> u32 {
        (u32::from(self.0[3]) << 16) | (u32::from(self.0[4]) << 8) | u32::from(self.0[5])
    }

    /// True for broadcast/multicast addresses (group bit set).
    pub fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True for locally administered addresses.
    pub fn is_local(self) -> bool {
        self.0[0] & 0x02 != 0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// Ethertype values used in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806).
    Arp,
    /// Anything else, carried verbatim.
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(t: EtherType) -> u16 {
        match t {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }
}

/// A parsed or to-be-emitted Ethernet II frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthernetFrame {
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Source MAC address.
    pub src: MacAddr,
    /// Payload type.
    pub ethertype: EtherType,
    /// Frame payload.
    pub payload: Vec<u8>,
}

impl EthernetFrame {
    /// Length on the wire.
    pub fn wire_len(&self) -> usize {
        ETHERNET_HEADER_LEN + self.payload.len()
    }

    /// A borrowed view over this frame, for allocation-free emission.
    pub fn view(&self) -> EthernetView<'_> {
        EthernetView { dst: self.dst, src: self.src, ethertype: self.ethertype, payload: &self.payload }
    }

    /// Serialize to a wire image.
    pub fn emit(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_len());
        self.emit_into(&mut buf);
        buf
    }

    /// Append the wire image to `out`, reusing its capacity.
    pub fn emit_into(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.resize(start + self.wire_len(), 0);
        self.view().emit_into(&mut out[start..]);
    }

    /// Parse a wire image.
    pub fn parse(data: &[u8]) -> Result<EthernetFrame, ParseError> {
        EthernetView::parse(data).map(|v| v.to_owned())
    }
}

/// A borrowed Ethernet II frame: addresses plus a payload slice — the
/// allocation-free counterpart of [`EthernetFrame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetView<'a> {
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Source MAC address.
    pub src: MacAddr,
    /// Payload type.
    pub ethertype: EtherType,
    /// Frame payload.
    pub payload: &'a [u8],
}

impl<'a> EthernetView<'a> {
    /// Length on the wire.
    pub fn wire_len(&self) -> usize {
        ETHERNET_HEADER_LEN + self.payload.len()
    }

    /// Write the wire image into `out[..self.wire_len()]`. Returns the
    /// number of bytes written.
    pub fn emit_into(&self, out: &mut [u8]) -> usize {
        let len = self.wire_len();
        out[0..6].copy_from_slice(&self.dst.0);
        out[6..12].copy_from_slice(&self.src.0);
        out[12..14].copy_from_slice(&u16::from(self.ethertype).to_be_bytes());
        out[ETHERNET_HEADER_LEN..len].copy_from_slice(self.payload);
        len
    }

    /// Parse a wire image, borrowing the payload.
    pub fn parse(data: &'a [u8]) -> Result<EthernetView<'a>, ParseError> {
        if data.len() < ETHERNET_HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&data[0..6]);
        src.copy_from_slice(&data[6..12]);
        let ethertype = u16::from_be_bytes([data[12], data[13]]).into();
        Ok(EthernetView {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype,
            payload: &data[ETHERNET_HEADER_LEN..],
        })
    }

    /// Copy into an owning [`EthernetFrame`].
    pub fn to_owned(&self) -> EthernetFrame {
        EthernetFrame {
            dst: self.dst,
            src: self.src,
            ethertype: self.ethertype,
            payload: self.payload.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_halves_round_trip() {
        let mac = MacAddr::from_oui_nic(0x00_1B_63, 0xAB_CD_EF);
        assert_eq!(mac.oui(), 0x001B63);
        assert_eq!(mac.nic(), 0xABCDEF);
        assert_eq!(format!("{mac}"), "00:1b:63:ab:cd:ef");
    }

    #[test]
    fn broadcast_is_multicast() {
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::from_oui_nic(0x001B63, 1).is_multicast());
    }

    #[test]
    fn frame_round_trip() {
        let frame = EthernetFrame {
            dst: MacAddr::from_oui_nic(0x0A0B0C, 0x010203),
            src: MacAddr::from_oui_nic(0x0D0E0F, 0x040506),
            ethertype: EtherType::Ipv4,
            payload: vec![1, 2, 3, 4, 5],
        };
        let wire = frame.emit();
        assert_eq!(wire.len(), ETHERNET_HEADER_LEN + 5);
        assert_eq!(EthernetFrame::parse(&wire).unwrap(), frame);
    }

    #[test]
    fn truncated_frame_rejected() {
        assert_eq!(EthernetFrame::parse(&[0u8; 13]), Err(ParseError::Truncated));
    }

    #[test]
    fn ethertype_mapping() {
        assert_eq!(EtherType::from(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from(0x0806), EtherType::Arp);
        assert_eq!(EtherType::from(0x86DD), EtherType::Other(0x86DD));
        assert_eq!(u16::from(EtherType::Other(0x1234)), 0x1234);
    }
}
