//! DNS: domain names, A/CNAME records, query/response wire format, an
//! authoritative zone database for the simulated Internet, and a caching
//! stub resolver for the gateway.
//!
//! The firmware's Traffic data set samples **A and CNAME records** from DNS
//! responses crossing the gateway and anonymizes any name not on the
//! household's whitelist (§3.2.2). To make that capture real, queries and
//! responses here are genuine RFC 1035 wire images — built, parsed, and
//! validated — not structs passed by hand. Name compression is not emitted
//! (uncompressed names are legal on the wire) but compressed pointers are
//! rejected cleanly rather than misparsed.

use crate::packet::ParseError;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Maximum label length per RFC 1035.
const MAX_LABEL: usize = 63;
/// Maximum encoded name length per RFC 1035.
const MAX_NAME: usize = 255;

/// A validated, lower-cased domain name such as `www.example.com`.
///
/// Backed by an `Arc<str>`, so `clone()` is a reference-count bump rather
/// than a heap copy — the resolver cache, CNAME chasing, and per-flow
/// domain attribution all clone names on their hot paths. Equality,
/// ordering, and hashing remain by string content.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DomainName(Arc<str>);

impl DomainName {
    /// Parse and normalize a dotted name. Rejects empty names, empty labels,
    /// over-long labels, and characters outside `[a-z0-9-_]`.
    pub fn new(name: &str) -> Result<DomainName, BadName> {
        let normalized = name.trim_end_matches('.').to_ascii_lowercase();
        if normalized.is_empty() {
            return Err(BadName);
        }
        let mut encoded_len = 1; // trailing root byte
        for label in normalized.split('.') {
            if label.is_empty() || label.len() > MAX_LABEL {
                return Err(BadName);
            }
            if !label.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_') {
                return Err(BadName);
            }
            encoded_len += 1 + label.len();
        }
        if encoded_len > MAX_NAME {
            return Err(BadName);
        }
        Ok(DomainName(normalized.into()))
    }

    /// The name as a string (no trailing dot).
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The registrable "base" domain, approximated as the last two labels
    /// (`www.google.com` → `google.com`). The paper's whitelist and domain
    /// rankings operate at this granularity.
    pub fn base_domain(&self) -> DomainName {
        let labels: Vec<&str> = self.0.split('.').collect();
        if labels.len() <= 2 {
            self.clone()
        } else {
            DomainName(labels[labels.len() - 2..].join(".").into())
        }
    }

    fn encode_into(&self, buf: &mut Vec<u8>) {
        for label in self.0.split('.') {
            buf.push(label.len() as u8);
            buf.extend_from_slice(label.as_bytes());
        }
        buf.push(0);
    }

    fn decode(buf: &[u8], mut pos: usize) -> Result<(DomainName, usize), ParseError> {
        let mut labels: Vec<String> = Vec::new();
        loop {
            let len = *buf.get(pos).ok_or(ParseError::Truncated)? as usize;
            pos += 1;
            if len == 0 {
                break;
            }
            if len & 0xC0 != 0 {
                // Compression pointers are not emitted by this simulator;
                // reject rather than misparse.
                return Err(ParseError::Unsupported);
            }
            let end = pos + len;
            let bytes = buf.get(pos..end).ok_or(ParseError::Truncated)?;
            let label = std::str::from_utf8(bytes).map_err(|_| ParseError::Unsupported)?;
            labels.push(label.to_ascii_lowercase());
            pos = end;
        }
        if labels.is_empty() {
            return Err(ParseError::Unsupported);
        }
        Ok((DomainName(labels.join(".").into()), pos))
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Error for invalid domain-name syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BadName;

impl fmt::Display for BadName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid domain name")
    }
}

impl std::error::Error for BadName {}

/// Record data for the two types the study collects.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecordData {
    /// An IPv4 address record.
    A(Ipv4Addr),
    /// A canonical-name alias.
    Cname(DomainName),
}

impl RecordData {
    fn rtype(&self) -> u16 {
        match self {
            RecordData::A(_) => 1,
            RecordData::Cname(_) => 5,
        }
    }
}

/// A resource record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsRecord {
    /// The owner name of the record.
    pub name: DomainName,
    /// The record data (A or CNAME).
    pub data: RecordData,
    /// Time to live.
    pub ttl: SimDuration,
}

/// A DNS query (A queries only; that is all the simulated clients send).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsQuery {
    /// Transaction id.
    pub id: u16,
    /// The name being queried (QTYPE A).
    pub name: DomainName,
}

impl DnsQuery {
    /// Serialize to a wire image.
    pub fn emit(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(17 + self.name.as_str().len());
        self.emit_into(&mut buf);
        buf
    }

    /// Append the wire image to `buf`, reusing its capacity.
    pub fn emit_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.id.to_be_bytes());
        buf.extend_from_slice(&[0x01, 0x00]); // RD set, standard query
        buf.extend_from_slice(&1u16.to_be_bytes()); // QDCOUNT
        buf.extend_from_slice(&[0; 6]); // AN/NS/AR counts
        self.name.encode_into(buf);
        buf.extend_from_slice(&1u16.to_be_bytes()); // QTYPE A
        buf.extend_from_slice(&1u16.to_be_bytes()); // QCLASS IN
    }

    /// Parse a wire image.
    pub fn parse(buf: &[u8]) -> Result<DnsQuery, ParseError> {
        if buf.len() < 12 {
            return Err(ParseError::Truncated);
        }
        let id = u16::from_be_bytes([buf[0], buf[1]]);
        if buf[2] & 0x80 != 0 {
            return Err(ParseError::Unsupported); // a response, not a query
        }
        let qdcount = u16::from_be_bytes([buf[4], buf[5]]);
        if qdcount != 1 {
            return Err(ParseError::Unsupported);
        }
        let (name, pos) = DomainName::decode(buf, 12)?;
        if buf.len() < pos + 4 {
            return Err(ParseError::Truncated);
        }
        Ok(DnsQuery { id, name })
    }
}

/// A DNS response carrying the answer chain for one A query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsResponse {
    /// Transaction id, echoing the query.
    pub id: u16,
    /// The question this response answers.
    pub question: DomainName,
    /// Answer records in chain order (CNAMEs first, then the A record).
    /// Empty means NXDOMAIN.
    pub answers: Vec<DnsRecord>,
}

impl DnsResponse {
    /// The resolved address, if the chain terminated in an A record.
    pub fn address(&self) -> Option<Ipv4Addr> {
        self.answers.iter().rev().find_map(|r| match r.data {
            RecordData::A(addr) => Some(addr),
            RecordData::Cname(_) => None,
        })
    }

    /// Serialize to a wire image.
    pub fn emit(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        self.emit_into(&mut buf);
        buf
    }

    /// Append the wire image to `buf`, reusing its capacity.
    pub fn emit_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.id.to_be_bytes());
        let rcode: u8 = if self.answers.is_empty() { 3 } else { 0 }; // NXDOMAIN : NOERROR
        buf.extend_from_slice(&[0x81, 0x80 | rcode]); // QR, RD, RA
        buf.extend_from_slice(&1u16.to_be_bytes()); // QDCOUNT
        buf.extend_from_slice(&(self.answers.len() as u16).to_be_bytes()); // ANCOUNT
        buf.extend_from_slice(&[0; 4]); // NS/AR counts
        self.question.encode_into(buf);
        buf.extend_from_slice(&1u16.to_be_bytes()); // QTYPE A
        buf.extend_from_slice(&1u16.to_be_bytes()); // QCLASS IN
        for record in &self.answers {
            record.name.encode_into(buf);
            buf.extend_from_slice(&record.data.rtype().to_be_bytes());
            buf.extend_from_slice(&1u16.to_be_bytes()); // CLASS IN
            buf.extend_from_slice(&(record.ttl.as_secs() as u32).to_be_bytes());
            match &record.data {
                RecordData::A(addr) => {
                    buf.extend_from_slice(&4u16.to_be_bytes());
                    buf.extend_from_slice(&addr.octets());
                }
                RecordData::Cname(target) => {
                    // Write a placeholder RDLENGTH, encode in place, then
                    // backpatch — avoids a temporary rdata buffer.
                    let len_at = buf.len();
                    buf.extend_from_slice(&[0, 0]);
                    let rdata_start = buf.len();
                    target.encode_into(buf);
                    let rdlen = (buf.len() - rdata_start) as u16;
                    buf[len_at..len_at + 2].copy_from_slice(&rdlen.to_be_bytes());
                }
            }
        }
    }

    /// Parse a wire image.
    pub fn parse(buf: &[u8]) -> Result<DnsResponse, ParseError> {
        if buf.len() < 12 {
            return Err(ParseError::Truncated);
        }
        let id = u16::from_be_bytes([buf[0], buf[1]]);
        if buf[2] & 0x80 == 0 {
            return Err(ParseError::Unsupported); // a query, not a response
        }
        let qdcount = u16::from_be_bytes([buf[4], buf[5]]);
        let ancount = u16::from_be_bytes([buf[6], buf[7]]) as usize;
        if qdcount != 1 {
            return Err(ParseError::Unsupported);
        }
        let (question, mut pos) = DomainName::decode(buf, 12)?;
        pos += 4; // QTYPE + QCLASS
        let mut answers = Vec::with_capacity(ancount);
        for _ in 0..ancount {
            let (name, next) = DomainName::decode(buf, pos)?;
            pos = next;
            let fixed = buf.get(pos..pos + 10).ok_or(ParseError::Truncated)?;
            let rtype = u16::from_be_bytes([fixed[0], fixed[1]]);
            let ttl_secs = u32::from_be_bytes([fixed[4], fixed[5], fixed[6], fixed[7]]);
            let rdlen = u16::from_be_bytes([fixed[8], fixed[9]]) as usize;
            pos += 10;
            let rdata = buf.get(pos..pos + rdlen).ok_or(ParseError::Truncated)?;
            pos += rdlen;
            let data = match rtype {
                1 => {
                    if rdlen != 4 {
                        return Err(ParseError::BadLength);
                    }
                    RecordData::A(Ipv4Addr::new(rdata[0], rdata[1], rdata[2], rdata[3]))
                }
                5 => {
                    let (target, used) = DomainName::decode(rdata, 0)?;
                    if used != rdlen {
                        return Err(ParseError::BadLength);
                    }
                    RecordData::Cname(target)
                }
                _ => return Err(ParseError::Unsupported),
            };
            answers.push(DnsRecord {
                name,
                data,
                ttl: SimDuration::from_secs(u64::from(ttl_secs)),
            });
        }
        Ok(DnsResponse { id, question, answers })
    }
}

/// The simulated Internet's authoritative record store.
#[derive(Debug, Default, Clone)]
pub struct ZoneDb {
    records: BTreeMap<DomainName, (RecordData, SimDuration)>,
}

impl ZoneDb {
    /// An empty zone.
    pub fn new() -> Self {
        ZoneDb::default()
    }

    /// Install an A record.
    pub fn insert_a(&mut self, name: DomainName, addr: Ipv4Addr, ttl: SimDuration) {
        self.records.insert(name, (RecordData::A(addr), ttl));
    }

    /// Install a CNAME record.
    pub fn insert_cname(&mut self, name: DomainName, target: DomainName, ttl: SimDuration) {
        self.records.insert(name, (RecordData::Cname(target), ttl));
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are installed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Answer an A query, following CNAME chains (bounded to avoid loops).
    /// Empty answers mean NXDOMAIN.
    pub fn resolve(&self, query: &DnsQuery) -> DnsResponse {
        let mut answers = Vec::new();
        let mut current = query.name.clone();
        for _ in 0..8 {
            match self.records.get(&current) {
                Some((data @ RecordData::A(_), ttl)) => {
                    answers.push(DnsRecord { name: current, data: data.clone(), ttl: *ttl });
                    return DnsResponse { id: query.id, question: query.name.clone(), answers };
                }
                Some((RecordData::Cname(target), ttl)) => {
                    answers.push(DnsRecord {
                        name: current.clone(),
                        data: RecordData::Cname(target.clone()),
                        ttl: *ttl,
                    });
                    current = target.clone();
                }
                None => break,
            }
        }
        // NXDOMAIN or a dangling/looping CNAME chain: report no answers.
        DnsResponse { id: query.id, question: query.name.clone(), answers: Vec::new() }
    }
}

/// A caching stub resolver (the gateway's dnsmasq equivalent).
#[derive(Debug, Default)]
pub struct CachingResolver {
    cache: BTreeMap<DomainName, (Ipv4Addr, SimTime)>,
    hits: u64,
    misses: u64,
}

impl CachingResolver {
    /// An empty cache.
    pub fn new() -> Self {
        CachingResolver::default()
    }

    /// Cache hit/miss counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Look up `name`, consulting the cache first and falling back to the
    /// zone. Returns the address and whether the answer came from upstream
    /// (`true` = a real DNS transaction crossed the WAN and is observable
    /// by the firmware).
    pub fn lookup(
        &mut self,
        now: SimTime,
        zone: &ZoneDb,
        id: u16,
        name: &DomainName,
    ) -> (Option<DnsResponse>, bool) {
        if let Some((addr, valid_until)) = self.cache.get(name) {
            if *valid_until > now {
                self.hits += 1;
                let response = DnsResponse {
                    id,
                    question: name.clone(),
                    answers: vec![DnsRecord {
                        name: name.clone(),
                        data: RecordData::A(*addr),
                        ttl: valid_until.since(now),
                    }],
                };
                return (Some(response), false);
            }
        }
        self.misses += 1;
        let response = zone.resolve(&DnsQuery { id, name: name.clone() });
        if let Some(addr) = response.address() {
            let min_ttl = response
                .answers
                .iter()
                .map(|r| r.ttl)
                .min()
                .unwrap_or(SimDuration::from_secs(60));
            self.cache.insert(name.clone(), (addr, now + min_ttl));
            (Some(response), true)
        } else {
            (None, true)
        }
    }

    /// Drop all cached entries (power cycle).
    pub fn reset(&mut self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DomainName {
        DomainName::new(s).unwrap()
    }

    #[test]
    fn name_validation() {
        assert!(DomainName::new("example.com").is_ok());
        assert!(DomainName::new("EXAMPLE.COM.").is_ok());
        assert_eq!(name("EXAMPLE.COM.").as_str(), "example.com");
        assert!(DomainName::new("").is_err());
        assert!(DomainName::new("a..b").is_err());
        assert!(DomainName::new("bad domain.com").is_err());
        assert!(DomainName::new(&"a".repeat(64)).is_err());
        assert!(DomainName::new(&format!("{}.com", "a".repeat(63))).is_ok());
    }

    #[test]
    fn base_domain_extraction() {
        assert_eq!(name("www.google.com").base_domain(), name("google.com"));
        assert_eq!(name("google.com").base_domain(), name("google.com"));
        assert_eq!(name("a.b.c.d.e").base_domain(), name("d.e"));
    }

    #[test]
    fn query_wire_round_trip() {
        let q = DnsQuery { id: 0xBEEF, name: name("www.netflix.com") };
        let wire = q.emit();
        assert_eq!(DnsQuery::parse(&wire).unwrap(), q);
    }

    #[test]
    fn response_wire_round_trip_with_cname_chain() {
        let r = DnsResponse {
            id: 42,
            question: name("www.netflix.com"),
            answers: vec![
                DnsRecord {
                    name: name("www.netflix.com"),
                    data: RecordData::Cname(name("cdn.nflxvideo.net")),
                    ttl: SimDuration::from_secs(300),
                },
                DnsRecord {
                    name: name("cdn.nflxvideo.net"),
                    data: RecordData::A(Ipv4Addr::new(45, 57, 8, 1)),
                    ttl: SimDuration::from_secs(60),
                },
            ],
        };
        let wire = r.emit();
        let parsed = DnsResponse::parse(&wire).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(parsed.address(), Some(Ipv4Addr::new(45, 57, 8, 1)));
    }

    #[test]
    fn nxdomain_round_trip() {
        let r = DnsResponse { id: 7, question: name("nonexistent.example"), answers: vec![] };
        let parsed = DnsResponse::parse(&r.emit()).unwrap();
        assert!(parsed.answers.is_empty());
        assert_eq!(parsed.address(), None);
    }

    #[test]
    fn query_and_response_not_confusable() {
        let q = DnsQuery { id: 1, name: name("x.com") };
        assert_eq!(DnsResponse::parse(&q.emit()), Err(ParseError::Unsupported));
        let r = DnsResponse { id: 1, question: name("x.com"), answers: vec![] };
        assert_eq!(DnsQuery::parse(&r.emit()), Err(ParseError::Unsupported));
    }

    #[test]
    fn compression_pointer_rejected() {
        let q = DnsQuery { id: 1, name: name("x.com") };
        let mut wire = q.emit();
        wire[12] = 0xC0; // pretend a compression pointer starts the QNAME
        assert_eq!(DnsQuery::parse(&wire), Err(ParseError::Unsupported));
    }

    #[test]
    fn zone_resolves_chain() {
        let mut zone = ZoneDb::new();
        zone.insert_cname(name("www.hulu.com"), name("hulu.cdn.example"), SimDuration::from_secs(100));
        zone.insert_a(name("hulu.cdn.example"), Ipv4Addr::new(8, 26, 1, 1), SimDuration::from_secs(100));
        let resp = zone.resolve(&DnsQuery { id: 9, name: name("www.hulu.com") });
        assert_eq!(resp.answers.len(), 2);
        assert_eq!(resp.address(), Some(Ipv4Addr::new(8, 26, 1, 1)));
    }

    #[test]
    fn zone_cname_loop_terminates() {
        let mut zone = ZoneDb::new();
        zone.insert_cname(name("a.example"), name("b.example"), SimDuration::from_secs(10));
        zone.insert_cname(name("b.example"), name("a.example"), SimDuration::from_secs(10));
        let resp = zone.resolve(&DnsQuery { id: 1, name: name("a.example") });
        assert!(resp.answers.is_empty(), "loop must resolve to no answer");
    }

    #[test]
    fn resolver_caches_until_ttl() {
        let mut zone = ZoneDb::new();
        zone.insert_a(name("google.com"), Ipv4Addr::new(74, 125, 1, 1), SimDuration::from_secs(300));
        let mut resolver = CachingResolver::new();
        let t0 = SimTime::EPOCH;
        let (r1, upstream1) = resolver.lookup(t0, &zone, 1, &name("google.com"));
        assert!(upstream1, "first lookup goes upstream");
        assert_eq!(r1.unwrap().address(), Some(Ipv4Addr::new(74, 125, 1, 1)));
        let (r2, upstream2) =
            resolver.lookup(t0 + SimDuration::from_secs(100), &zone, 2, &name("google.com"));
        assert!(!upstream2, "cached lookup stays local");
        assert_eq!(r2.unwrap().address(), Some(Ipv4Addr::new(74, 125, 1, 1)));
        let (_, upstream3) =
            resolver.lookup(t0 + SimDuration::from_secs(400), &zone, 3, &name("google.com"));
        assert!(upstream3, "expired entry refetches");
        assert_eq!(resolver.stats(), (1, 2));
    }

    #[test]
    fn resolver_reports_nxdomain_as_upstream_miss() {
        let zone = ZoneDb::new();
        let mut resolver = CachingResolver::new();
        let (resp, upstream) = resolver.lookup(SimTime::EPOCH, &zone, 1, &name("missing.example"));
        assert!(resp.is_none());
        assert!(upstream);
    }
}
