//! The home wireless environment: bands, channels, the gateway's two
//! radios, neighboring access points, association, scanning, and a
//! contention model.
//!
//! The deployment's routers had one 802.11gn radio (2.4 GHz, default
//! channel 11) and one 802.11an radio (5 GHz, default channel 36). The
//! paper's infrastructure results (Figs 9–11) rest on three observable
//! facts this module reproduces mechanistically:
//!
//! * stations associate per band, and single-band (2.4 GHz-only) devices
//!   are common, so the 2.4 GHz radio carries more stations;
//! * a scan sees only APs on the radio's configured channel (plus partial
//!   visibility of overlapping 2.4 GHz channels), so the WiFi data set is a
//!   *sample* of the neighborhood, not a census;
//! * scanning can knock associated clients off (§3.2.2), which is why the
//!   firmware throttles scans when clients are present.

use crate::packet::MacAddr;
use crate::rng::DetRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The two spectrum bands of the WNDR3800.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Band {
    /// 2.4 GHz (802.11gn radio).
    Ghz24,
    /// 5 GHz (802.11an radio).
    Ghz5,
}

impl Band {
    /// Both bands, 2.4 first.
    pub const ALL: [Band; 2] = [Band::Ghz24, Band::Ghz5];

    /// The default channel BISmark configures on this band (§3.2.2).
    pub fn default_channel(self) -> Channel {
        match self {
            Band::Ghz24 => Channel { band: self, number: 11 },
            Band::Ghz5 => Channel { band: self, number: 36 },
        }
    }

    /// Nominal PHY rate in bits per second for a good-signal station.
    pub fn phy_rate_bps(self) -> u64 {
        match self {
            Band::Ghz24 => 72_000_000,  // single-stream 802.11n, 20 MHz
            Band::Ghz5 => 150_000_000,  // 802.11n, 40 MHz
        }
    }
}

impl std::fmt::Display for Band {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Band::Ghz24 => write!(f, "2.4 GHz"),
            Band::Ghz5 => write!(f, "5 GHz"),
        }
    }
}

/// A (band, channel-number) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Channel {
    /// The spectrum band.
    pub band: Band,
    /// The channel number within the band.
    pub number: u8,
}

impl Channel {
    /// Construct a channel, validating the number for the band
    /// (1–11 on 2.4 GHz as in the US regulatory domain; the common UNII-1/2
    /// set on 5 GHz).
    pub fn new(band: Band, number: u8) -> Option<Channel> {
        let valid = match band {
            Band::Ghz24 => (1..=11).contains(&number),
            Band::Ghz5 => matches!(number, 36 | 40 | 44 | 48 | 52 | 56 | 60 | 64 | 149 | 153 | 157 | 161),
        };
        valid.then_some(Channel { band, number })
    }

    /// Degree of spectral overlap with another channel in `[0, 1]`:
    /// 1 for the same channel, a partial value for overlapping 2.4 GHz
    /// channels (which are 5 MHz apart but 20 MHz wide), 0 otherwise.
    pub fn overlap(self, other: Channel) -> f64 {
        if self.band != other.band {
            return 0.0;
        }
        if self.number == other.number {
            return 1.0;
        }
        match self.band {
            Band::Ghz24 => {
                let gap = self.number.abs_diff(other.number);
                if gap < 5 {
                    1.0 - f64::from(gap) / 5.0
                } else {
                    0.0
                }
            }
            // 5 GHz channels in this set do not overlap.
            Band::Ghz5 => 0.0,
        }
    }
}

/// A neighboring access point visible from (or interfering with) the home.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeighborAp {
    /// The AP's BSSID.
    pub bssid: MacAddr,
    /// The channel the AP beacons on.
    pub channel: Channel,
    /// Received signal strength at the home router, in dBm (negative).
    pub signal_dbm: i8,
    /// Fraction of airtime this AP's own traffic occupies, in `[0, 1]`.
    pub airtime_load: f64,
}

/// One entry of a scan result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanEntry {
    /// The detected AP's BSSID.
    pub bssid: MacAddr,
    /// The channel it was seen on.
    pub channel: Channel,
    /// Received signal strength in dBm.
    pub signal_dbm: i8,
}

/// Result of a radio scan: what was seen, and which associated stations the
/// scan knocked off.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanOutcome {
    /// Access points detected during the scan.
    pub visible: Vec<ScanEntry>,
    /// Stations the scan knocked off this radio.
    pub dropped_stations: Vec<MacAddr>,
}

/// Minimum signal for an AP to be detectable at all.
const DETECTION_FLOOR_DBM: i8 = -92;
/// Probability that a scan disassociates any given associated station.
const SCAN_DROP_PROB: f64 = 0.08;

/// One radio of the gateway (the router has one per band).
#[derive(Debug, Clone)]
pub struct Radio {
    channel: Channel,
    stations: BTreeMap<MacAddr, ()>,
}

impl Radio {
    /// A radio on the band's BISmark default channel.
    pub fn new(band: Band) -> Radio {
        Radio { channel: band.default_channel(), stations: BTreeMap::new() }
    }

    /// A radio on a specific channel (users could reconfigure).
    pub fn on_channel(channel: Channel) -> Radio {
        Radio { channel, stations: BTreeMap::new() }
    }

    /// The configured channel.
    pub fn channel(&self) -> Channel {
        self.channel
    }

    /// The band this radio serves.
    pub fn band(&self) -> Band {
        self.channel.band
    }

    /// Associate a station. Idempotent.
    pub fn associate(&mut self, mac: MacAddr) {
        self.stations.insert(mac, ());
    }

    /// Disassociate a station. Returns whether it was associated.
    pub fn disassociate(&mut self, mac: MacAddr) -> bool {
        self.stations.remove(&mac).is_some()
    }

    /// Is this station currently associated?
    pub fn is_associated(&self, mac: MacAddr) -> bool {
        self.stations.contains_key(&mac)
    }

    /// Currently associated stations, in MAC order (deterministic).
    pub fn stations(&self) -> impl Iterator<Item = MacAddr> + '_ {
        self.stations.keys().copied()
    }

    /// Number of associated stations.
    pub fn station_count(&self) -> usize {
        self.stations.len()
    }

    /// Drop every station (power cycle).
    pub fn reset(&mut self) {
        self.stations.clear();
    }

    /// Scan the configured channel against a neighborhood. Detection is
    /// probabilistic in signal strength and channel overlap; each associated
    /// station is independently knocked off with a small probability — the
    /// side effect the paper's firmware throttles scans to avoid.
    pub fn scan(&mut self, neighborhood: &[NeighborAp], rng: &mut DetRng) -> ScanOutcome {
        let mut visible = Vec::new();
        for ap in neighborhood {
            let overlap = self.channel.overlap(ap.channel);
            if overlap <= 0.0 || ap.signal_dbm < DETECTION_FLOOR_DBM {
                continue;
            }
            // Stronger, more-overlapping APs are detected more reliably.
            let margin = f64::from(ap.signal_dbm - DETECTION_FLOOR_DBM);
            let p_detect = (margin / 20.0).min(1.0) * overlap;
            if rng.chance(p_detect) {
                visible.push(ScanEntry {
                    bssid: ap.bssid,
                    channel: ap.channel,
                    signal_dbm: ap.signal_dbm,
                });
            }
        }
        let mut dropped = Vec::new();
        let stations: Vec<MacAddr> = self.stations().collect();
        for mac in stations {
            if rng.chance(SCAN_DROP_PROB) {
                self.stations.remove(&mac);
                dropped.push(mac);
            }
        }
        ScanOutcome { visible, dropped_stations: dropped }
    }

    /// Fraction of airtime available to this BSS given co-channel neighbor
    /// load, in `(0, 1]`. Used by the flow layer to derate wireless
    /// throughput.
    pub fn airtime_share(&self, neighborhood: &[NeighborAp]) -> f64 {
        let foreign_load: f64 = neighborhood
            .iter()
            .map(|ap| ap.airtime_load * self.channel.overlap(ap.channel))
            .sum();
        1.0 / (1.0 + foreign_load)
    }

    /// Effective throughput available to one station when `active` stations
    /// share the radio, accounting for MAC efficiency (~60%) and neighbor
    /// contention.
    pub fn per_station_throughput_bps(&self, neighborhood: &[NeighborAp], active: usize) -> u64 {
        let active = active.max(1) as f64;
        let base = self.band().phy_rate_bps() as f64 * 0.6;
        (base * self.airtime_share(neighborhood) / active) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(n: u32) -> MacAddr {
        MacAddr::from_oui_nic(0x00_24_B2, n)
    }

    fn neighbor(n: u32, channel: Channel, signal: i8, load: f64) -> NeighborAp {
        NeighborAp { bssid: mac(n), channel, signal_dbm: signal, airtime_load: load }
    }

    #[test]
    fn default_channels_match_deployment() {
        assert_eq!(Band::Ghz24.default_channel().number, 11);
        assert_eq!(Band::Ghz5.default_channel().number, 36);
    }

    #[test]
    fn channel_validation() {
        assert!(Channel::new(Band::Ghz24, 11).is_some());
        assert!(Channel::new(Band::Ghz24, 12).is_none());
        assert!(Channel::new(Band::Ghz5, 36).is_some());
        assert!(Channel::new(Band::Ghz5, 37).is_none());
    }

    #[test]
    fn overlap_model() {
        let ch11 = Channel::new(Band::Ghz24, 11).unwrap();
        let ch8 = Channel::new(Band::Ghz24, 8).unwrap();
        let ch6 = Channel::new(Band::Ghz24, 6).unwrap();
        let ch36 = Channel::new(Band::Ghz5, 36).unwrap();
        let ch40 = Channel::new(Band::Ghz5, 40).unwrap();
        assert_eq!(ch11.overlap(ch11), 1.0);
        assert!(ch11.overlap(ch8) > 0.0 && ch11.overlap(ch8) < 1.0);
        assert_eq!(ch11.overlap(ch6), 0.0);
        assert_eq!(ch36.overlap(ch40), 0.0);
        assert_eq!(ch11.overlap(ch36), 0.0);
    }

    #[test]
    fn association_lifecycle() {
        let mut radio = Radio::new(Band::Ghz24);
        radio.associate(mac(1));
        radio.associate(mac(1));
        radio.associate(mac(2));
        assert_eq!(radio.station_count(), 2);
        assert!(radio.is_associated(mac(1)));
        assert!(radio.disassociate(mac(1)));
        assert!(!radio.disassociate(mac(1)));
        assert_eq!(radio.station_count(), 1);
        radio.reset();
        assert_eq!(radio.station_count(), 0);
    }

    #[test]
    fn scan_sees_strong_cochannel_aps() {
        let ch = Band::Ghz24.default_channel();
        let hood = vec![
            neighbor(1, ch, -40, 0.1),                                  // strong, co-channel
            neighbor(2, Channel::new(Band::Ghz24, 1).unwrap(), -40, 0.1), // far channel
            neighbor(3, ch, -95, 0.1),                                  // below floor
        ];
        let mut radio = Radio::new(Band::Ghz24);
        let mut rng = DetRng::new(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            for e in radio.scan(&hood, &mut rng).visible {
                seen.insert(e.bssid);
            }
        }
        assert!(seen.contains(&mac(1)), "strong co-channel AP must appear");
        assert!(!seen.contains(&mac(2)), "non-overlapping AP never appears");
        assert!(!seen.contains(&mac(3)), "AP below detection floor never appears");
    }

    #[test]
    fn weak_aps_detected_intermittently() {
        let ch = Band::Ghz24.default_channel();
        let hood = vec![neighbor(1, ch, -85, 0.0)];
        let mut radio = Radio::new(Band::Ghz24);
        let mut rng = DetRng::new(2);
        let detections =
            (0..400).filter(|_| !radio.scan(&hood, &mut rng).visible.is_empty()).count();
        assert!(detections > 40 && detections < 360, "weak AP partially visible: {detections}");
    }

    #[test]
    fn scans_sometimes_drop_stations() {
        let mut radio = Radio::new(Band::Ghz24);
        let mut rng = DetRng::new(3);
        let mut total_drops = 0;
        for round in 0..200u32 {
            radio.associate(mac(round % 5));
            total_drops += radio.scan(&[], &mut rng).dropped_stations.len();
        }
        assert!(total_drops > 0, "scan disassociation side effect must occur");
    }

    #[test]
    fn airtime_share_decreases_with_neighbor_load() {
        let ch = Band::Ghz24.default_channel();
        let radio = Radio::new(Band::Ghz24);
        let empty_share = radio.airtime_share(&[]);
        let busy = vec![neighbor(1, ch, -50, 0.5), neighbor(2, ch, -55, 0.5)];
        let busy_share = radio.airtime_share(&busy);
        assert_eq!(empty_share, 1.0);
        assert!(busy_share < 0.6);
        // Off-channel load does not count.
        let off = vec![neighbor(3, Channel::new(Band::Ghz5, 36).unwrap(), -50, 0.9)];
        assert_eq!(radio.airtime_share(&off), 1.0);
    }

    #[test]
    fn per_station_throughput_splits_fairly() {
        let radio = Radio::new(Band::Ghz5);
        let solo = radio.per_station_throughput_bps(&[], 1);
        let shared = radio.per_station_throughput_bps(&[], 3);
        assert!(solo > shared * 2);
        assert!(solo <= Band::Ghz5.phy_rate_bps());
        // Zero active stations is treated as one (no division by zero).
        assert_eq!(radio.per_station_throughput_bps(&[], 0), solo);
    }

    #[test]
    fn five_ghz_faster_than_two_four() {
        let r24 = Radio::new(Band::Ghz24);
        let r5 = Radio::new(Band::Ghz5);
        assert!(r5.per_station_throughput_bps(&[], 1) > r24.per_station_throughput_bps(&[], 1));
    }
}
