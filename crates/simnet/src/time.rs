//! Virtual time for the discrete-event simulation.
//!
//! All simulation components share a single virtual clock measured in
//! microseconds from the *study epoch*. The epoch is defined to be
//! **Monday, October 1, 2012, 00:00:00 UTC** — the first day of the paper's
//! Heartbeats collection window — so that calendar arithmetic (day-of-week,
//! hour-of-day) matches the deployment the paper describes.
//!
//! [`SimTime`] is an absolute instant; [`SimDuration`] is a difference
//! between instants. Both are thin wrappers over `u64`/`i64` microsecond
//! counts with saturating construction helpers, ordered and hashable, and
//! cheap to copy. Wall-clock time is never consulted anywhere in the
//! workspace; this is what makes every run bit-reproducible.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// Microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;
/// Microseconds in one minute.
pub const MICROS_PER_MIN: u64 = 60 * MICROS_PER_SEC;
/// Microseconds in one hour.
pub const MICROS_PER_HOUR: u64 = 60 * MICROS_PER_MIN;
/// Microseconds in one day.
pub const MICROS_PER_DAY: u64 = 24 * MICROS_PER_HOUR;

/// Day of week for calendar logic. The study epoch is a Monday.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // the variants are self-describing day names
pub enum Weekday {
    Monday,
    Tuesday,
    Wednesday,
    Thursday,
    Friday,
    Saturday,
    Sunday,
}

impl Weekday {
    /// All weekdays starting from Monday (the epoch day).
    pub const ALL: [Weekday; 7] = [
        Weekday::Monday,
        Weekday::Tuesday,
        Weekday::Wednesday,
        Weekday::Thursday,
        Weekday::Friday,
        Weekday::Saturday,
        Weekday::Sunday,
    ];

    /// Whether this day falls on the weekend.
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Saturday | Weekday::Sunday)
    }

    /// Day index with Monday = 0 .. Sunday = 6.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&d| d == self).expect("weekday in table")
    }
}

/// A span of virtual time. Internally a non-negative microsecond count.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds. Negative or non-finite inputs
    /// saturate to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * MICROS_PER_SEC as f64).round().min(u64::MAX as f64) as u64)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * MICROS_PER_MIN)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * MICROS_PER_HOUR)
    }

    /// Construct from whole days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * MICROS_PER_DAY)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Duration in whole seconds, truncating.
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Duration in whole minutes, truncating.
    pub const fn as_mins(self) -> u64 {
        self.0 / MICROS_PER_MIN
    }

    /// Duration in whole hours, truncating.
    pub const fn as_hours(self) -> u64 {
        self.0 / MICROS_PER_HOUR
    }

    /// Duration in fractional days.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_DAY as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// True when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Rem<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s < 1.0 {
            write!(f, "{:.1}ms", s * 1_000.0)
        } else if s < 120.0 {
            write!(f, "{s:.1}s")
        } else if s < 2.0 * 3_600.0 {
            write!(f, "{:.1}min", s / 60.0)
        } else if s < 2.0 * 86_400.0 {
            write!(f, "{:.1}h", s / 3_600.0)
        } else {
            write!(f, "{:.1}d", s / 86_400.0)
        }
    }
}

/// An absolute instant of virtual time: microseconds since the study epoch
/// (Monday 2012-10-01 00:00 UTC).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The study epoch itself.
    pub const EPOCH: SimTime = SimTime(0);

    /// Construct from raw microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Raw microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Elapsed time since the epoch.
    pub const fn elapsed(self) -> SimDuration {
        SimDuration(self.0)
    }

    /// Time elapsed since `earlier`; panics if `earlier` is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(earlier.0).expect("SimTime::since underflow"))
    }

    /// Time elapsed since `earlier`, or zero if `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Apply a fixed local-time offset. Positive offsets move east of UTC.
    /// Saturates at the epoch going west.
    pub fn to_local(self, utc_offset_hours: i32) -> SimTime {
        let shift = (utc_offset_hours.unsigned_abs() as u64) * MICROS_PER_HOUR;
        if utc_offset_hours >= 0 {
            SimTime(self.0.saturating_add(shift))
        } else {
            SimTime(self.0.saturating_sub(shift))
        }
    }

    /// Calendar day index since the epoch (day 0 is the epoch Monday).
    pub const fn day_index(self) -> u64 {
        self.0 / MICROS_PER_DAY
    }

    /// Day of week of this instant.
    pub fn weekday(self) -> Weekday {
        Weekday::ALL[(self.day_index() % 7) as usize]
    }

    /// Hour of day in `[0, 24)`.
    pub const fn hour_of_day(self) -> u32 {
        ((self.0 % MICROS_PER_DAY) / MICROS_PER_HOUR) as u32
    }

    /// Minute of day in `[0, 1440)`.
    pub const fn minute_of_day(self) -> u32 {
        ((self.0 % MICROS_PER_DAY) / MICROS_PER_MIN) as u32
    }

    /// Fractional hour of day in `[0, 24)`, useful for smooth diurnal curves.
    pub fn hour_of_day_f64(self) -> f64 {
        (self.0 % MICROS_PER_DAY) as f64 / MICROS_PER_HOUR as f64
    }

    /// The most recent instant at or before `self` aligned to `step` since
    /// the epoch. `step` must be non-zero.
    pub fn align_down(self, step: SimDuration) -> SimTime {
        assert!(!step.is_zero(), "align step must be non-zero");
        SimTime(self.0 - self.0 % step.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let day = self.day_index();
        let h = self.hour_of_day();
        let m = self.minute_of_day() % 60;
        let s = (self.0 % MICROS_PER_MIN) / MICROS_PER_SEC;
        write!(f, "d{day:03} {h:02}:{m:02}:{s:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_monday() {
        assert_eq!(SimTime::EPOCH.weekday(), Weekday::Monday);
        assert!(!SimTime::EPOCH.weekday().is_weekend());
    }

    #[test]
    fn weekday_cycle() {
        let sat = SimTime::EPOCH + SimDuration::from_days(5);
        assert_eq!(sat.weekday(), Weekday::Saturday);
        assert!(sat.weekday().is_weekend());
        let next_mon = SimTime::EPOCH + SimDuration::from_days(7);
        assert_eq!(next_mon.weekday(), Weekday::Monday);
    }

    #[test]
    fn hour_and_minute_of_day() {
        let t = SimTime::EPOCH + SimDuration::from_hours(25) + SimDuration::from_mins(30);
        assert_eq!(t.day_index(), 1);
        assert_eq!(t.hour_of_day(), 1);
        assert_eq!(t.minute_of_day(), 90);
        assert!((t.hour_of_day_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn local_time_offsets() {
        let t = SimTime::EPOCH + SimDuration::from_hours(12);
        assert_eq!(t.to_local(5).hour_of_day(), 17);
        assert_eq!(t.to_local(-5).hour_of_day(), 7);
        // Saturation at the epoch going west.
        assert_eq!(SimTime::EPOCH.to_local(-8), SimTime::EPOCH);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_secs(90);
        assert_eq!(d.as_mins(), 1);
        assert_eq!(d.as_secs(), 90);
        assert_eq!((d * 2).as_secs(), 180);
        assert_eq!((d / 2).as_secs(), 45);
        assert!((d / SimDuration::from_secs(45) - 2.0).abs() < 1e-12);
        assert_eq!(d.saturating_sub(SimDuration::from_secs(100)), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_saturates() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
    }

    #[test]
    fn align_down() {
        let t = SimTime::from_micros(7 * MICROS_PER_MIN + 123);
        assert_eq!(t.align_down(SimDuration::from_mins(5)), SimTime::from_micros(5 * MICROS_PER_MIN));
    }

    #[test]
    fn time_ordering_and_since() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(25);
        assert!(a < b);
        assert_eq!(b.since(a).as_micros(), 15);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b - a, SimDuration::from_micros(15));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "250.0ms");
        assert_eq!(format!("{}", SimDuration::from_secs(30)), "30.0s");
        assert_eq!(format!("{}", SimDuration::from_mins(10)), "10.0min");
        assert_eq!(format!("{}", SimDuration::from_hours(5)), "5.0h");
        assert_eq!(format!("{}", SimDuration::from_days(3)), "3.0d");
        assert_eq!(
            format!("{}", SimTime::EPOCH + SimDuration::from_hours(26)),
            "d001 02:00:00"
        );
    }
}
