//! ARP: wire format, cache, and the gateway-side neighbor table.
//!
//! ARP is how a real gateway actually *sees* wired devices: the hourly
//! device census on the deployment's routers read the kernel neighbor
//! table, which is populated by ARP traffic. The simulation models that
//! path: a device announces itself with a gratuitous ARP when it attaches,
//! requests resolve the gateway's address, and entries age out — so a
//! silent, detached device eventually disappears from the census, exactly
//! as on real hardware.

use crate::packet::{MacAddr, ParseError};
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Default neighbor-entry lifetime (Linux base_reachable_time ballpark).
pub const ARP_ENTRY_TTL: SimDuration = SimDuration::from_secs(60);
/// Wire length of an Ethernet/IPv4 ARP packet.
pub const ARP_LEN: usize = 28;

/// ARP operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArpOp {
    /// Who-has request.
    Request,
    /// Is-at reply.
    Reply,
}

/// An Ethernet/IPv4 ARP packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArpPacket {
    /// Operation.
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

impl ArpPacket {
    /// A who-has request from `sender` for `target_ip`.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> ArpPacket {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr([0; 6]),
            target_ip,
        }
    }

    /// A gratuitous announcement (sender asks about its own address) —
    /// what hosts broadcast when they join a LAN.
    pub fn gratuitous(mac: MacAddr, ip: Ipv4Addr) -> ArpPacket {
        ArpPacket::request(mac, ip, ip)
    }

    /// The reply answering `request` on behalf of `mac`.
    pub fn reply_to(request: &ArpPacket, mac: MacAddr) -> ArpPacket {
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: mac,
            sender_ip: request.target_ip,
            target_mac: request.sender_mac,
            target_ip: request.sender_ip,
        }
    }

    /// True for gratuitous announcements.
    pub fn is_gratuitous(&self) -> bool {
        self.op == ArpOp::Request && self.sender_ip == self.target_ip
    }

    /// Serialize to the 28-byte wire image.
    pub fn emit(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(ARP_LEN);
        buf.extend_from_slice(&1u16.to_be_bytes()); // HTYPE Ethernet
        buf.extend_from_slice(&0x0800u16.to_be_bytes()); // PTYPE IPv4
        buf.push(6); // HLEN
        buf.push(4); // PLEN
        buf.extend_from_slice(
            &match self.op {
                ArpOp::Request => 1u16,
                ArpOp::Reply => 2u16,
            }
            .to_be_bytes(),
        );
        buf.extend_from_slice(&self.sender_mac.0);
        buf.extend_from_slice(&self.sender_ip.octets());
        buf.extend_from_slice(&self.target_mac.0);
        buf.extend_from_slice(&self.target_ip.octets());
        buf
    }

    /// Parse a wire image.
    pub fn parse(data: &[u8]) -> Result<ArpPacket, ParseError> {
        if data.len() < ARP_LEN {
            return Err(ParseError::Truncated);
        }
        if data[0..2] != [0, 1] || data[2..4] != [8, 0] || data[4] != 6 || data[5] != 4 {
            return Err(ParseError::Unsupported);
        }
        let op = match u16::from_be_bytes([data[6], data[7]]) {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            _ => return Err(ParseError::Unsupported),
        };
        let mut sender_mac = [0u8; 6];
        sender_mac.copy_from_slice(&data[8..14]);
        let mut target_mac = [0u8; 6];
        target_mac.copy_from_slice(&data[18..24]);
        Ok(ArpPacket {
            op,
            sender_mac: MacAddr(sender_mac),
            sender_ip: Ipv4Addr::new(data[14], data[15], data[16], data[17]),
            target_mac: MacAddr(target_mac),
            target_ip: Ipv4Addr::new(data[24], data[25], data[26], data[27]),
        })
    }
}

/// A neighbor table with aging — the structure the census actually reads.
#[derive(Debug, Default)]
pub struct NeighborTable {
    entries: BTreeMap<Ipv4Addr, (MacAddr, SimTime)>,
}

impl NeighborTable {
    /// An empty table.
    pub fn new() -> NeighborTable {
        NeighborTable::default()
    }

    /// Learn (or refresh) a neighbor from an observed ARP packet.
    pub fn observe(&mut self, now: SimTime, packet: &ArpPacket) {
        self.entries.insert(packet.sender_ip, (packet.sender_mac, now));
        if packet.op == ArpOp::Reply {
            // The reply's target also proved reachable moments ago.
            self.entries
                .entry(packet.target_ip)
                .or_insert((packet.target_mac, now));
        }
    }

    /// Refresh an entry because IP traffic from it was relayed (real
    /// kernels do this too; it keeps active hosts resident).
    pub fn refresh(&mut self, now: SimTime, ip: Ipv4Addr) {
        if let Some((_, seen)) = self.entries.get_mut(&ip) {
            *seen = now;
        }
    }

    /// Look up a live neighbor.
    pub fn lookup(&self, now: SimTime, ip: Ipv4Addr) -> Option<MacAddr> {
        self.entries
            .get(&ip)
            .filter(|(_, seen)| now.saturating_since(*seen) < ARP_ENTRY_TTL)
            .map(|(mac, _)| *mac)
    }

    /// Drop entries older than the TTL; returns how many were evicted.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, (_, seen)| now.saturating_since(*seen) < ARP_ENTRY_TTL);
        before - self.entries.len()
    }

    /// Live entry count as of `now`.
    pub fn live_count(&self, now: SimTime) -> usize {
        self.entries
            .values()
            .filter(|(_, seen)| now.saturating_since(*seen) < ARP_ENTRY_TTL)
            .count()
    }

    /// Drop everything (power cycle).
    pub fn reset(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(n: u32) -> MacAddr {
        MacAddr::from_oui_nic(0x00_17_F2, n)
    }

    fn ip(h: u8) -> Ipv4Addr {
        Ipv4Addr::new(192, 168, 1, h)
    }

    fn t(secs: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_secs(secs)
    }

    #[test]
    fn wire_round_trip() {
        let req = ArpPacket::request(mac(1), ip(10), ip(1));
        let wire = req.emit();
        assert_eq!(wire.len(), ARP_LEN);
        assert_eq!(ArpPacket::parse(&wire).unwrap(), req);
        let rep = ArpPacket::reply_to(&req, mac(99));
        assert_eq!(ArpPacket::parse(&rep.emit()).unwrap(), rep);
    }

    #[test]
    fn reply_addresses_the_requester() {
        let req = ArpPacket::request(mac(1), ip(10), ip(1));
        let rep = ArpPacket::reply_to(&req, mac(99));
        assert_eq!(rep.op, ArpOp::Reply);
        assert_eq!(rep.sender_ip, ip(1));
        assert_eq!(rep.target_mac, mac(1));
        assert_eq!(rep.target_ip, ip(10));
    }

    #[test]
    fn gratuitous_detection() {
        assert!(ArpPacket::gratuitous(mac(1), ip(10)).is_gratuitous());
        assert!(!ArpPacket::request(mac(1), ip(10), ip(1)).is_gratuitous());
    }

    #[test]
    fn malformed_rejected() {
        assert_eq!(ArpPacket::parse(&[0; 27]), Err(ParseError::Truncated));
        let mut wire = ArpPacket::gratuitous(mac(1), ip(10)).emit();
        wire[7] = 9; // bogus op
        assert_eq!(ArpPacket::parse(&wire), Err(ParseError::Unsupported));
        let mut wire2 = ArpPacket::gratuitous(mac(1), ip(10)).emit();
        wire2[3] = 0x06; // not IPv4
        assert_eq!(ArpPacket::parse(&wire2), Err(ParseError::Unsupported));
    }

    #[test]
    fn table_learns_and_ages() {
        let mut table = NeighborTable::new();
        table.observe(t(0), &ArpPacket::gratuitous(mac(1), ip(10)));
        assert_eq!(table.lookup(t(30), ip(10)), Some(mac(1)));
        assert_eq!(table.lookup(t(61), ip(10)), None, "entry aged out");
        assert_eq!(table.expire(t(61)), 1);
        assert_eq!(table.live_count(t(61)), 0);
    }

    #[test]
    fn traffic_refreshes_entries() {
        let mut table = NeighborTable::new();
        table.observe(t(0), &ArpPacket::gratuitous(mac(1), ip(10)));
        table.refresh(t(50), ip(10));
        assert_eq!(table.lookup(t(100), ip(10)), Some(mac(1)), "refreshed at t=50");
        assert_eq!(table.lookup(t(111), ip(10)), None);
    }

    #[test]
    fn replies_teach_both_sides() {
        let mut table = NeighborTable::new();
        let req = ArpPacket::request(mac(1), ip(10), ip(1));
        let rep = ArpPacket::reply_to(&req, mac(2));
        table.observe(t(0), &rep);
        assert_eq!(table.lookup(t(1), ip(1)), Some(mac(2)));
        assert_eq!(table.lookup(t(1), ip(10)), Some(mac(1)));
    }

    #[test]
    fn reset_clears() {
        let mut table = NeighborTable::new();
        table.observe(t(0), &ArpPacket::gratuitous(mac(1), ip(10)));
        table.reset();
        assert_eq!(table.live_count(t(0)), 0);
    }
}
