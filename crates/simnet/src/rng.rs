//! Deterministic random number streams and the distribution samplers used by
//! the behavioral models.
//!
//! Reproducibility is a hard requirement: the whole study must replay
//! bit-identically from a single `u64` seed. Every simulated entity (home,
//! device, outage process, traffic generator, …) gets its **own** stream
//! derived from the master seed and a stable string label, so adding a new
//! consumer of randomness never perturbs the draws seen by existing ones —
//! the property that makes A/B ablations meaningful.
//!
//! `rand`'s distribution companion crate is not part of our allowed
//! dependency set, so the handful of distributions the models need
//! (exponential, Pareto, log-normal, normal, Poisson, Zipf, weighted choice)
//! are implemented here directly with their textbook inversion/rejection
//! forms and covered by statistical unit tests.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Mixes a 64-bit value through the SplitMix64 finalizer. Used to derive
/// statistically independent child seeds from `(seed, label)` pairs.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a label string, for seed derivation.
fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A deterministic random stream with distribution samplers.
///
/// Wraps [`SmallRng`] (a fast, non-cryptographic PRNG — fine here: nothing in
/// the simulation is adversarial) and adds the derivation scheme plus the
/// samplers the models need.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
    seed: u64,
}

impl DetRng {
    /// Create the root stream for a master seed.
    pub fn new(seed: u64) -> Self {
        DetRng { inner: SmallRng::seed_from_u64(splitmix64(seed)), seed }
    }

    /// Derive an independent child stream from a stable string label.
    ///
    /// The child depends only on `(self.seed, label)`, not on how many draws
    /// the parent has made, so derivation order is irrelevant.
    pub fn derive(&self, label: &str) -> DetRng {
        let child_seed = splitmix64(self.seed ^ fnv1a(label).rotate_left(17));
        DetRng::new(child_seed)
    }

    /// Derive an independent child stream from a label and an index, for
    /// per-entity streams (`derive_indexed("home", 42)`).
    pub fn derive_indexed(&self, label: &str, index: u64) -> DetRng {
        let child_seed =
            splitmix64(self.seed ^ fnv1a(label).rotate_left(17) ^ splitmix64(index.wrapping_add(1)));
        DetRng::new(child_seed)
    }

    /// The seed this stream was created with (after mixing).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform draw in `[lo, hi)`. Requires `lo <= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[lo, hi)`. Requires `lo < hi`.
    pub fn uniform_int(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform integer in `[0, n)`; convenient for indexing.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty range");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Exponential with the given mean (`mean > 0`), via inversion.
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // 1 - U avoids ln(0).
        -mean * (1.0 - self.uniform()).ln()
    }

    /// Pareto (Lomax-free, classic form) with scale `x_min > 0` and shape
    /// `alpha > 0`. Heavy-tailed: used for flow sizes.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        debug_assert!(x_min > 0.0 && alpha > 0.0);
        x_min / (1.0 - self.uniform()).powf(1.0 / alpha)
    }

    /// Standard normal via Box–Muller.
    pub fn std_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.std_normal()
    }

    /// Log-normal parameterized by the *underlying* normal's `mu`/`sigma`.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Poisson with mean `lambda >= 0`. Knuth's product method for small
    /// `lambda`, normal approximation (rounded, clamped at 0) for large.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        if lambda <= 0.0 {
            return 0;
        }
        if lambda > 30.0 {
            let x = self.normal(lambda, lambda.sqrt());
            return x.round().max(0.0) as u64;
        }
        let limit = (-lambda).exp();
        let mut product = self.uniform();
        let mut count = 0u64;
        while product > limit {
            product *= self.uniform();
            count += 1;
        }
        count
    }

    /// Zipf-distributed rank in `[0, n)` with exponent `s > 0`, via
    /// inversion over the precomputed CDF in [`ZipfTable`]. Prefer building
    /// a [`ZipfTable`] once when sampling repeatedly.
    pub fn zipf(&mut self, table: &ZipfTable) -> usize {
        table.sample(self)
    }

    /// Choose an index according to non-negative `weights`. Requires a
    /// positive total weight.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index requires positive total weight");
        let mut target = self.uniform() * total;
        for (i, w) in weights.iter().enumerate() {
            if target < *w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Precomputed CDF for Zipf sampling over `n` ranks with exponent `s`.
#[derive(Debug, Clone)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Build the table. `n` must be positive; `s` may be any positive
    /// exponent (1.0 is the classic Zipf).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfTable over empty support");
        assert!(s > 0.0, "Zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfTable { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the support is a single rank.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of rank `i` (0-based).
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.uniform();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_differ() {
        let root = DetRng::new(7);
        let mut a = root.derive("homes");
        let mut b = root.derive("outages");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same <= 1, "derived streams should be independent");
    }

    #[test]
    fn derivation_is_order_independent() {
        let root = DetRng::new(99);
        let mut a1 = root.derive("a");
        let _b = root.derive("b");
        let mut a2 = root.derive("a");
        assert_eq!(a1.next_u64(), a2.next_u64());
    }

    #[test]
    fn indexed_derivation_distinct() {
        let root = DetRng::new(5);
        let mut h0 = root.derive_indexed("home", 0);
        let mut h1 = root.derive_indexed("home", 1);
        assert_ne!(h0.next_u64(), h1.next_u64());
    }

    #[test]
    fn exp_mean_close() {
        let mut rng = DetRng::new(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exp(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "exp mean {mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut rng = DetRng::new(12);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "normal mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "normal var {var}");
    }

    #[test]
    fn poisson_mean_close_small_and_large() {
        let mut rng = DetRng::new(13);
        for lambda in [0.5, 4.0, 80.0] {
            let n = 20_000;
            let sum: u64 = (0..n).map(|_| rng.poisson(lambda)).sum();
            let mean = sum as f64 / n as f64;
            assert!((mean - lambda).abs() < lambda.max(1.0) * 0.07, "poisson {lambda} mean {mean}");
        }
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn pareto_respects_minimum() {
        let mut rng = DetRng::new(14);
        for _ in 0..1_000 {
            assert!(rng.pareto(2.0, 1.3) >= 2.0);
        }
    }

    #[test]
    fn zipf_head_heavier_than_tail() {
        let table = ZipfTable::new(100, 1.0);
        let mut rng = DetRng::new(15);
        let mut counts = [0u32; 100];
        for _ in 0..50_000 {
            counts[rng.zipf(&table)] += 1;
        }
        assert!(counts[0] > counts[9] && counts[9] > counts[59]);
        // Rank-0 mass should be close to its analytic pmf.
        let p0 = table.pmf(0);
        let observed = counts[0] as f64 / 50_000.0;
        assert!((observed - p0).abs() < 0.02, "zipf p0 {observed} vs {p0}");
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let table = ZipfTable::new(37, 0.8);
        let total: f64 = (0..table.len()).map(|i| table.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_index_follows_weights() {
        let mut rng = DetRng::new(16);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..20_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(17);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(18);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
