//! Access-link model: serialization delay, token-bucket shaping, and a
//! drop-tail byte queue.
//!
//! This is the mechanism behind three of the paper's results:
//!
//! * **Capacity (Fig 14–15):** the firmware's ShaperProbe-style estimator
//!   sends a packet train *through* this model and measures dispersion, so
//!   capacity estimates are produced the way the deployment produced them
//!   rather than read out of a config field.
//! * **Token-bucket shaping:** many ISPs burst above the sustained rate
//!   ("PowerBoost"); the bucket lets short trains observe the peak rate
//!   while long transfers see the shaped rate, which is exactly the
//!   dichotomy ShaperProbe was built to detect.
//! * **Bufferbloat (Fig 16):** consumer gateways ship with queues that are
//!   far too deep. A deep drop-tail queue lets an unpaced sender burst far
//!   above the drain rate for whole seconds; utilization measured *at the
//!   LAN side* (as the firmware measures it) then exceeds the estimated
//!   capacity, reproducing the paper's "utilization > capacity" homes.
//!
//! The model is analytic FIFO rather than per-byte event-driven: each
//! [`Link::transmit`] call computes the packet's departure time in O(1)
//! amortized, so probe trains are exact while costing nothing when idle.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Static description of one direction of an access link.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Sustained (shaped) rate in bits per second.
    pub rate_bps: u64,
    /// Peak rate in bits per second while token-bucket credit remains.
    /// Equal to `rate_bps` when the ISP does not burst.
    pub peak_bps: u64,
    /// Token bucket depth in bytes (burst credit). Zero disables bursting.
    pub bucket_bytes: u64,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Drop-tail queue limit in bytes. Deep queues (hundreds of KB) model
    /// bufferbloat-era CPE.
    pub queue_limit_bytes: u64,
}

impl LinkConfig {
    /// A plain unshaped link: no burst bucket, the given rate, delay, and a
    /// queue sized in bytes.
    pub fn simple(rate_bps: u64, delay: SimDuration, queue_limit_bytes: u64) -> Self {
        LinkConfig { rate_bps, peak_bps: rate_bps, bucket_bytes: 0, delay, queue_limit_bytes }
    }

    /// A link with ISP-style burst shaping (peak rate until the bucket
    /// drains, sustained rate afterwards).
    pub fn shaped(
        rate_bps: u64,
        peak_bps: u64,
        bucket_bytes: u64,
        delay: SimDuration,
        queue_limit_bytes: u64,
    ) -> Self {
        assert!(peak_bps >= rate_bps, "peak rate below sustained rate");
        LinkConfig { rate_bps, peak_bps, bucket_bytes, delay, queue_limit_bytes }
    }

    /// Time to serialize `bytes` at the sustained rate.
    pub fn serialization(&self, bytes: u64) -> SimDuration {
        SimDuration::from_micros(bytes.saturating_mul(8_000_000) / self.rate_bps.max(1))
    }
}

/// Result of offering a packet to the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// Accepted; the last bit arrives at the far end at this instant.
    Delivered {
        /// Far-end arrival instant (serialization + queueing + propagation).
        at: SimTime,
    },
    /// The drop-tail queue was full.
    Dropped,
}

/// Running counters, exposed for tests and diagnostics.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct LinkStats {
    /// Packets accepted onto the queue.
    pub accepted_packets: u64,
    /// Bytes accepted onto the queue.
    pub accepted_bytes: u64,
    /// Packets dropped at the tail.
    pub dropped_packets: u64,
    /// Bytes dropped at the tail.
    pub dropped_bytes: u64,
}

/// One direction of an access link with a drop-tail queue and optional
/// token-bucket shaping.
///
/// ```
/// use simnet::link::{Link, LinkConfig, TxOutcome};
/// use simnet::time::{SimDuration, SimTime};
///
/// // 8 Mbps with 10 ms propagation: a 1000-byte packet lands 11 ms later.
/// let cfg = LinkConfig::simple(8_000_000, SimDuration::from_millis(10), 64_000);
/// let mut link = Link::new(cfg);
/// match link.transmit(SimTime::EPOCH, 1_000) {
///     TxOutcome::Delivered { at } => assert_eq!(at.as_micros(), 11_000),
///     TxOutcome::Dropped => unreachable!("queue is empty"),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    cfg: LinkConfig,
    /// Instant at which the transmitter finishes everything accepted so far.
    busy_until: SimTime,
    /// Packets accepted but not yet fully serialized: (finish time, bytes).
    in_flight: VecDeque<(SimTime, u64)>,
    /// Bytes among `in_flight`.
    queued_bytes: u64,
    /// Token bucket credit in bytes.
    tokens: f64,
    /// Last time the bucket was refilled.
    tokens_at: SimTime,
    stats: LinkStats,
}

impl Link {
    /// A fresh idle link.
    pub fn new(cfg: LinkConfig) -> Self {
        Link {
            cfg,
            busy_until: SimTime::EPOCH,
            in_flight: VecDeque::new(),
            queued_bytes: 0,
            tokens: cfg.bucket_bytes as f64,
            tokens_at: SimTime::EPOCH,
            stats: LinkStats::default(),
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// Counters so far.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Bytes currently queued or being serialized, as of `now`.
    pub fn backlog_bytes(&mut self, now: SimTime) -> u64 {
        self.drain(now);
        self.queued_bytes
    }

    /// Queueing delay a new arrival would currently experience (excluding
    /// its own serialization and the propagation delay).
    pub fn queueing_delay(&mut self, now: SimTime) -> SimDuration {
        self.drain(now);
        self.busy_until.saturating_since(now)
    }

    /// True when nothing is queued or in serialization as of `now`.
    pub fn is_idle(&mut self, now: SimTime) -> bool {
        self.backlog_bytes(now) == 0
    }

    fn drain(&mut self, now: SimTime) {
        while let Some(&(finish, bytes)) = self.in_flight.front() {
            if finish <= now {
                self.in_flight.pop_front();
                self.queued_bytes -= bytes;
            } else {
                break;
            }
        }
    }

    fn refill_tokens(&mut self, upto: SimTime) {
        if self.cfg.bucket_bytes == 0 {
            return;
        }
        let dt = upto.saturating_since(self.tokens_at).as_secs_f64();
        self.tokens =
            (self.tokens + dt * self.cfg.rate_bps as f64 / 8.0).min(self.cfg.bucket_bytes as f64);
        self.tokens_at = upto;
    }

    /// Offer a packet of `bytes` to the link at time `now`.
    ///
    /// Calls must be made with non-decreasing `now` (FIFO link). Returns the
    /// far-end delivery instant, or `Dropped` when the queue is full.
    pub fn transmit(&mut self, now: SimTime, bytes: u64) -> TxOutcome {
        assert!(bytes > 0, "zero-byte packet");
        self.drain(now);
        if self.queued_bytes + bytes > self.cfg.queue_limit_bytes {
            self.stats.dropped_packets += 1;
            self.stats.dropped_bytes += bytes;
            return TxOutcome::Dropped;
        }
        let start = self.busy_until.max(now);
        self.refill_tokens(start);
        let conforming = self.cfg.bucket_bytes > 0 && self.tokens >= bytes as f64;
        let rate = if conforming {
            self.tokens -= bytes as f64;
            self.cfg.peak_bps
        } else {
            self.cfg.rate_bps
        };
        let tx = SimDuration::from_micros((bytes.saturating_mul(8_000_000)).div_ceil(rate.max(1)));
        let finish = start + tx;
        if self.cfg.bucket_bytes > 0 && !conforming {
            // A non-conforming packet is paced by the bucket's refill: the
            // tokens accrued while it serializes are what admitted it, so
            // they are consumed, not banked. Without this, a backlogged
            // sender would oscillate between peak and sustained gaps and
            // exceed the shaped long-run rate.
            self.tokens = 0.0;
            self.tokens_at = finish;
        }
        self.busy_until = finish;
        self.in_flight.push_back((finish, bytes));
        self.queued_bytes += bytes;
        self.stats.accepted_packets += 1;
        self.stats.accepted_bytes += bytes;
        TxOutcome::Delivered { at: finish + self.cfg.delay }
    }

    /// Reset the dynamic state (used when a router power-cycles; the queue
    /// contents do not survive).
    pub fn reset(&mut self, now: SimTime) {
        self.busy_until = now;
        self.in_flight.clear();
        self.queued_bytes = 0;
        self.tokens = self.cfg.bucket_bytes as f64;
        self.tokens_at = now;
    }
}

/// A wide-area path from the home's WAN side to a measurement server:
/// a base RTT plus an independent loss probability per packet. Heartbeats
/// cross one of these, which is why the paper cannot distinguish "router
/// off" from "path lossy" (§3.3) — and neither can our reproduction, by
/// construction.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WanPath {
    /// One-way delay from the access-link far end to the server.
    pub transit_delay: SimDuration,
    /// Probability that any given packet is lost in transit.
    pub loss_prob: f64,
}

impl WanPath {
    /// A loss-free path with the given one-way transit delay.
    pub fn reliable(transit_delay: SimDuration) -> Self {
        WanPath { transit_delay, loss_prob: 0.0 }
    }

    /// Whether a packet survives the path, drawn from `rng`.
    pub fn survives(&self, rng: &mut crate::rng::DetRng) -> bool {
        !rng.chance(self.loss_prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn serialization_and_delay() {
        // 8 Mbps, 10 ms delay: a 1000-byte packet takes 1 ms to serialize.
        let mut link = Link::new(LinkConfig::simple(8_000_000, SimDuration::from_millis(10), 64_000));
        match link.transmit(t(0), 1000) {
            TxOutcome::Delivered { at } => {
                assert_eq!(at, t(1_000 + 10_000));
            }
            TxOutcome::Dropped => panic!("unexpected drop"),
        }
    }

    #[test]
    fn back_to_back_packets_queue_fifo() {
        let mut link = Link::new(LinkConfig::simple(8_000_000, SimDuration::ZERO, 64_000));
        let first = link.transmit(t(0), 1000);
        let second = link.transmit(t(0), 1000);
        assert_eq!(first, TxOutcome::Delivered { at: t(1_000) });
        assert_eq!(second, TxOutcome::Delivered { at: t(2_000) });
    }

    #[test]
    fn dispersion_equals_bottleneck_rate() {
        // The property ShaperProbe relies on: back-to-back packets of size B
        // leave the bottleneck spaced B*8/rate apart.
        let rate = 12_345_678u64;
        let mut link = Link::new(LinkConfig::simple(rate, SimDuration::from_millis(5), 1 << 20));
        let size = 1500u64;
        let mut last = None;
        let mut gaps = Vec::new();
        for _ in 0..50 {
            if let TxOutcome::Delivered { at } = link.transmit(t(0), size) {
                if let Some(prev) = last {
                    gaps.push(at.since(prev).as_secs_f64());
                }
                last = Some(at);
            }
        }
        let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let implied = size as f64 * 8.0 / mean_gap;
        assert!((implied - rate as f64).abs() / (rate as f64) < 0.01, "implied {implied}");
    }

    #[test]
    fn drop_tail_queue_limit() {
        // Queue of 3000 bytes, everything sent at t=0: the fourth 1000-byte
        // packet exceeds the limit.
        let mut link = Link::new(LinkConfig::simple(8_000_000, SimDuration::ZERO, 3_000));
        for _ in 0..3 {
            assert!(matches!(link.transmit(t(0), 1000), TxOutcome::Delivered { .. }));
        }
        assert_eq!(link.transmit(t(0), 1000), TxOutcome::Dropped);
        assert_eq!(link.stats().dropped_packets, 1);
        // After the head drains, space opens again.
        assert!(matches!(link.transmit(t(1_000), 1000), TxOutcome::Delivered { .. }));
    }

    #[test]
    fn backlog_and_queueing_delay_decay() {
        let mut link = Link::new(LinkConfig::simple(8_000_000, SimDuration::ZERO, 1 << 20));
        for _ in 0..4 {
            link.transmit(t(0), 1000);
        }
        assert_eq!(link.backlog_bytes(t(0)), 4_000);
        assert_eq!(link.queueing_delay(t(0)), SimDuration::from_millis(4));
        assert_eq!(link.backlog_bytes(t(2_000)), 2_000);
        assert!(link.is_idle(t(4_000)));
    }

    #[test]
    fn token_bucket_gives_peak_then_sustained() {
        // 10 Mbps sustained, 20 Mbps peak, 15 KB bucket. First ten 1500-byte
        // packets go at peak; later ones at sustained rate.
        let cfg = LinkConfig::shaped(
            10_000_000,
            20_000_000,
            15_000,
            SimDuration::ZERO,
            1 << 20,
        );
        let mut link = Link::new(cfg);
        let mut times = Vec::new();
        for _ in 0..20 {
            if let TxOutcome::Delivered { at } = link.transmit(t(0), 1500) {
                times.push(at);
            }
        }
        let early_gap = times[1].since(times[0]).as_micros();
        let late_gap = times[19].since(times[18]).as_micros();
        assert_eq!(early_gap, 600, "peak-rate gap");
        assert_eq!(late_gap, 1200, "sustained-rate gap");
    }

    #[test]
    fn bucket_refills_when_idle() {
        let cfg =
            LinkConfig::shaped(10_000_000, 20_000_000, 15_000, SimDuration::ZERO, 1 << 20);
        let mut link = Link::new(cfg);
        // Drain the bucket.
        for _ in 0..10 {
            link.transmit(t(0), 1500);
        }
        // Wait long enough to refill 15 KB at 10 Mbps = 12 ms.
        let later = t(20_000_000);
        let a = match link.transmit(later, 1500) {
            TxOutcome::Delivered { at } => at,
            _ => panic!(),
        };
        let b = match link.transmit(later, 1500) {
            TxOutcome::Delivered { at } => at,
            _ => panic!(),
        };
        assert_eq!(b.since(a).as_micros(), 600, "refilled bucket restores peak rate");
    }

    #[test]
    fn reset_clears_queue() {
        let mut link = Link::new(LinkConfig::simple(1_000_000, SimDuration::ZERO, 1 << 20));
        for _ in 0..10 {
            link.transmit(t(0), 1500);
        }
        link.reset(t(5));
        assert!(link.is_idle(t(5)));
        // Transmissions resume immediately at the reset instant.
        assert_eq!(
            link.transmit(t(5), 125),
            TxOutcome::Delivered { at: t(5) + SimDuration::from_millis(1) }
        );
    }

    #[test]
    fn wan_path_loss() {
        let mut rng = DetRng::new(3);
        let lossy = WanPath { transit_delay: SimDuration::from_millis(40), loss_prob: 0.3 };
        let survived = (0..10_000).filter(|_| lossy.survives(&mut rng)).count();
        let frac = survived as f64 / 10_000.0;
        assert!((frac - 0.7).abs() < 0.03, "survival {frac}");
        let reliable = WanPath::reliable(SimDuration::from_millis(40));
        assert!((0..100).all(|_| reliable.survives(&mut rng)));
    }
}
