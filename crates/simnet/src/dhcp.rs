//! A small DHCP server model: the gateway hands out LAN addresses from a
//! /24 pool with renewable leases.
//!
//! Device identity in the study is the MAC address (that is what the
//! firmware's census and traffic attribution key on), so the server binds
//! leases to MACs and keeps a returning device on its previous address when
//! possible — matching how real home gateways behave and keeping per-device
//! traffic attribution stable across reconnects.

use crate::packet::MacAddr;
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Default lease lifetime (the common consumer-gateway value of 24 h).
pub const DEFAULT_LEASE: SimDuration = SimDuration::from_hours(24);

#[derive(Debug, Clone, Copy)]
struct Lease {
    addr: Ipv4Addr,
    expires: SimTime,
}

/// Errors from lease allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DhcpError {
    /// Every address in the pool holds an unexpired lease.
    PoolExhausted,
}

impl std::fmt::Display for DhcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DHCP pool exhausted")
    }
}

impl std::error::Error for DhcpError {}

/// The gateway's DHCP server for one /24 subnet.
#[derive(Debug)]
pub struct DhcpServer {
    /// Network base, e.g. 192.168.1.0; hosts are .2 through .254 (.1 is the
    /// gateway itself, .255 broadcast).
    subnet: [u8; 3],
    lease_time: SimDuration,
    leases: BTreeMap<MacAddr, Lease>,
    next_host: u8,
    /// Cumulative leases granted (fresh and renewed); survives `reset`,
    /// read by the observability layer at end of run.
    leases_granted: u64,
}

impl DhcpServer {
    /// A server for 192.168.1.0/24 with the default lease time.
    pub fn new() -> Self {
        DhcpServer::with_subnet([192, 168, 1], DEFAULT_LEASE)
    }

    /// A server for an arbitrary /24.
    pub fn with_subnet(subnet: [u8; 3], lease_time: SimDuration) -> Self {
        DhcpServer { subnet, lease_time, leases: BTreeMap::new(), next_host: 2, leases_granted: 0 }
    }

    /// The gateway's own address (.1).
    pub fn gateway_addr(&self) -> Ipv4Addr {
        Ipv4Addr::new(self.subnet[0], self.subnet[1], self.subnet[2], 1)
    }

    /// Number of live leases as of `now`.
    pub fn active_leases(&self, now: SimTime) -> usize {
        self.leases.values().filter(|l| l.expires > now).count()
    }

    /// Cumulative count of leases granted (fresh allocations and renewals).
    pub fn leases_granted(&self) -> u64 {
        self.leases_granted
    }

    fn host_addr(&self, host: u8) -> Ipv4Addr {
        Ipv4Addr::new(self.subnet[0], self.subnet[1], self.subnet[2], host)
    }

    fn addr_in_use(&self, addr: Ipv4Addr, now: SimTime) -> bool {
        self.leases.values().any(|l| l.addr == addr && l.expires > now)
    }

    /// Request (or renew) a lease for `mac` at time `now`.
    ///
    /// A device that still holds a lease — or whose lease expired but whose
    /// old address is still free — gets its previous address back.
    pub fn request(&mut self, now: SimTime, mac: MacAddr) -> Result<Ipv4Addr, DhcpError> {
        if let Some(lease) = self.leases.get(&mac).copied() {
            if lease.expires > now || !self.addr_in_use(lease.addr, now) {
                self.leases
                    .insert(mac, Lease { addr: lease.addr, expires: now + self.lease_time });
                self.leases_granted += 1;
                return Ok(lease.addr);
            }
        }
        // Fresh allocation: scan the host space once from the cursor.
        for _ in 0..253u16 {
            let host = self.next_host;
            self.next_host = if self.next_host >= 254 { 2 } else { self.next_host + 1 };
            let addr = self.host_addr(host);
            if !self.addr_in_use(addr, now) {
                self.leases.insert(mac, Lease { addr, expires: now + self.lease_time });
                self.leases_granted += 1;
                return Ok(addr);
            }
        }
        Err(DhcpError::PoolExhausted)
    }

    /// Release a lease explicitly (device leaving gracefully).
    pub fn release(&mut self, mac: MacAddr) {
        self.leases.remove(&mac);
    }

    /// Forget everything (router factory state after a power cycle is *not*
    /// modeled — real gateways persist leases in RAM only, so a power cycle
    /// calls this).
    pub fn reset(&mut self) {
        self.leases.clear();
        self.next_host = 2;
    }
}

impl Default for DhcpServer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(n: u32) -> MacAddr {
        MacAddr::from_oui_nic(0x00_11_22, n)
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_micros(secs * 1_000_000)
    }

    #[test]
    fn allocates_distinct_addresses() {
        let mut server = DhcpServer::new();
        let a = server.request(t(0), mac(1)).unwrap();
        let b = server.request(t(0), mac(2)).unwrap();
        assert_ne!(a, b);
        assert_eq!(a, Ipv4Addr::new(192, 168, 1, 2));
        assert_eq!(server.active_leases(t(0)), 2);
    }

    #[test]
    fn renewal_keeps_address() {
        let mut server = DhcpServer::new();
        let a = server.request(t(0), mac(1)).unwrap();
        let again = server.request(t(100), mac(1)).unwrap();
        assert_eq!(a, again);
        assert_eq!(server.active_leases(t(100)), 1);
    }

    #[test]
    fn returning_device_reclaims_old_address_after_expiry() {
        let mut server = DhcpServer::with_subnet([10, 0, 0], SimDuration::from_secs(60));
        let a = server.request(t(0), mac(1)).unwrap();
        // Lease expires; nobody takes the address; device returns.
        let later = t(0) + SimDuration::from_secs(120);
        let again = server.request(later.align_down(SimDuration::from_secs(1)), mac(1)).unwrap();
        assert_eq!(a, again);
    }

    #[test]
    fn gateway_address_never_allocated() {
        let mut server = DhcpServer::new();
        for i in 0..50 {
            let addr = server.request(t(0), mac(i)).unwrap();
            assert_ne!(addr, server.gateway_addr());
        }
    }

    #[test]
    fn pool_exhaustion() {
        let mut server = DhcpServer::new();
        for i in 0..253 {
            server.request(t(0), mac(i)).unwrap();
        }
        assert_eq!(server.request(t(0), mac(999)), Err(DhcpError::PoolExhausted));
        // After expiry the pool recovers.
        let later = t(0) + DEFAULT_LEASE + SimDuration::from_secs(1);
        assert!(server.request(later, mac(999)).is_ok());
    }

    #[test]
    fn release_frees_address() {
        let mut server = DhcpServer::new();
        server.request(t(0), mac(1)).unwrap();
        server.release(mac(1));
        assert_eq!(server.active_leases(t(0)), 0);
    }

    #[test]
    fn reset_clears_state() {
        let mut server = DhcpServer::new();
        let a = server.request(t(0), mac(1)).unwrap();
        server.reset();
        assert_eq!(server.active_leases(t(0)), 0);
        let b = server.request(t(1), mac(2)).unwrap();
        assert_eq!(a, b, "allocation cursor restarts after reset");
    }
}
