//! Link and collector impairment schedules — the simnet-side hooks the
//! fault-injection subsystem (`faultlab`) compiles its plans into.
//!
//! An [`ImpairmentSchedule`] is a normalized list of time windows during
//! which a path is degraded: each window carries an extra loss probability
//! and an extra one-way delay. The schedule itself is pure data — the
//! simulation consults it at transmission time and draws losses from its
//! own deterministic stream, so an empty schedule is bit-for-bit identical
//! to no schedule at all (no RNG draws, no behavior change).
//!
//! The same window machinery doubles as a downtime schedule (loss
//! probability 1.0) for modeling a collection server that is simply not
//! there — see [`ImpairmentWindow::down`].

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// One contiguous window of degraded service on a path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImpairmentWindow {
    /// Inclusive start of the window.
    pub start: SimTime,
    /// Exclusive end of the window.
    pub end: SimTime,
    /// Additional loss probability applied to transmissions inside the
    /// window (on top of whatever the path already loses).
    pub loss_prob: f64,
    /// Additional one-way delay applied to transmissions inside the window
    /// (a congestion/latency spike).
    pub extra_delay: SimDuration,
}

impl ImpairmentWindow {
    /// A total-outage window: everything sent into it is lost.
    pub fn down(start: SimTime, end: SimTime) -> ImpairmentWindow {
        ImpairmentWindow { start, end, loss_prob: 1.0, extra_delay: SimDuration::ZERO }
    }

    /// Does the window contain `t`?
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// A time-ordered, non-overlapping set of impairment windows for one path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ImpairmentSchedule {
    windows: Vec<ImpairmentWindow>,
}

impl ImpairmentSchedule {
    /// The empty schedule: no impairment, ever. Consulting it performs no
    /// RNG draws, so a simulation holding an empty schedule behaves
    /// bit-identically to one with no schedule at all.
    pub fn none() -> ImpairmentSchedule {
        ImpairmentSchedule::default()
    }

    /// Build a schedule from windows, sorting them and rejecting overlaps.
    ///
    /// # Panics
    /// Panics if two windows overlap or a window is inverted — a fault plan
    /// with overlapping windows is a plan-compiler bug, not a runtime
    /// condition.
    pub fn new(mut windows: Vec<ImpairmentWindow>) -> ImpairmentSchedule {
        windows.retain(|w| w.end > w.start);
        windows.sort_by_key(|w| (w.start, w.end));
        for pair in windows.windows(2) {
            assert!(
                pair[0].end <= pair[1].start,
                "impairment windows overlap: {:?} and {:?}",
                pair[0],
                pair[1]
            );
        }
        ImpairmentSchedule { windows }
    }

    /// True when no windows are scheduled.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The windows, in time order.
    pub fn windows(&self) -> &[ImpairmentWindow] {
        &self.windows
    }

    /// The active window at `t`, if any. Binary search: O(log n).
    pub fn active_at(&self, t: SimTime) -> Option<&ImpairmentWindow> {
        if self.windows.is_empty() {
            return None; // the hot no-fault path: one branch, no search
        }
        let idx = self.windows.partition_point(|w| w.end <= t);
        self.windows.get(idx).filter(|w| w.contains(t))
    }

    /// Is the path in a total outage (loss probability 1) at `t`?
    pub fn is_down(&self, t: SimTime) -> bool {
        self.active_at(t).is_some_and(|w| w.loss_prob >= 1.0)
    }

    /// Decide the fate of a transmission entering the path at `send`:
    /// `None` if the impairment swallowed it, otherwise the extra delay to
    /// add to its delivery. An empty schedule never draws from `rng`.
    pub fn transmit(&self, send: SimTime, rng: &mut DetRng) -> Option<SimDuration> {
        match self.active_at(send) {
            None => Some(SimDuration::ZERO),
            Some(w) => {
                if w.loss_prob >= 1.0 || rng.chance(w.loss_prob) {
                    None
                } else {
                    Some(w.extra_delay)
                }
            }
        }
    }

    /// Earliest instant at or after `t` that is outside every window — when
    /// a sender waiting out the impairment can next get through.
    pub fn next_clear(&self, t: SimTime) -> SimTime {
        match self.active_at(t) {
            Some(w) => w.end,
            None => t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(mins: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_mins(mins)
    }

    fn sched() -> ImpairmentSchedule {
        ImpairmentSchedule::new(vec![
            ImpairmentWindow::down(t(10), t(20)),
            ImpairmentWindow {
                start: t(50),
                end: t(60),
                loss_prob: 0.5,
                extra_delay: SimDuration::from_secs(2),
            },
        ])
    }

    #[test]
    fn active_window_lookup() {
        let s = sched();
        assert!(s.active_at(t(0)).is_none());
        assert_eq!(s.active_at(t(10)).unwrap().start, t(10));
        assert_eq!(s.active_at(t(19)).unwrap().start, t(10));
        assert!(s.active_at(t(20)).is_none());
        assert_eq!(s.active_at(t(55)).unwrap().start, t(50));
    }

    #[test]
    fn downtime_is_total_loss() {
        let s = sched();
        let mut rng = DetRng::new(1);
        assert!(s.is_down(t(15)));
        assert!(!s.is_down(t(55)), "partial loss is not downtime");
        assert_eq!(s.transmit(t(15), &mut rng), None);
    }

    #[test]
    fn clear_path_is_free_and_rng_silent() {
        let s = sched();
        let mut a = DetRng::new(9);
        let mut b = DetRng::new(9);
        assert_eq!(s.transmit(t(5), &mut a), Some(SimDuration::ZERO));
        // The clear-path call drew nothing: both streams still agree.
        assert_eq!(a.uniform_int(0, 1 << 30), b.uniform_int(0, 1 << 30));
    }

    #[test]
    fn partial_loss_draws_and_delays() {
        let s = sched();
        let mut rng = DetRng::new(3);
        let (mut lost, mut through) = (0u32, 0u32);
        for _ in 0..1_000 {
            match s.transmit(t(55), &mut rng) {
                None => lost += 1,
                Some(delay) => {
                    assert_eq!(delay, SimDuration::from_secs(2));
                    through += 1;
                }
            }
        }
        assert!((400..600).contains(&lost), "p=0.5 loss, got {lost}/{}", lost + through);
    }

    #[test]
    fn next_clear_skips_to_window_end() {
        let s = sched();
        assert_eq!(s.next_clear(t(15)), t(20));
        assert_eq!(s.next_clear(t(30)), t(30));
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_windows_rejected() {
        ImpairmentSchedule::new(vec![
            ImpairmentWindow::down(t(0), t(10)),
            ImpairmentWindow::down(t(5), t(15)),
        ]);
    }

    #[test]
    fn empty_windows_dropped_and_sorted() {
        let s = ImpairmentSchedule::new(vec![
            ImpairmentWindow::down(t(30), t(40)),
            ImpairmentWindow::down(t(5), t(5)),
            ImpairmentWindow::down(t(0), t(10)),
        ]);
        assert_eq!(s.windows().len(), 2);
        assert_eq!(s.windows()[0].start, t(0));
    }
}
