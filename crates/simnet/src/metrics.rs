//! World-layer metric handles: what the simulated network substrate did.
//!
//! The substrate itself stays observability-free — links, NAT, and DHCP
//! keep plain cumulative `u64` counters ([`crate::link::LinkStats`],
//! [`crate::nat::Nat::evictions`], [`crate::dhcp::DhcpServer::leases_granted`])
//! that cost nothing and never feed back into behavior. This module maps
//! those counters onto the process-global `obs` registry; the per-home
//! simulation publishes once at end of run, so hot paths are untouched and
//! totals are order-independent across parallel homes.

use crate::dhcp::DhcpServer;
use crate::link::LinkStats;
use crate::nat::Nat;

/// Pre-registered handles for the world-layer counters.
#[derive(Debug, Clone, Copy)]
pub struct WorldMetrics {
    /// Packets accepted onto access-link queues (both directions).
    pub packets_forwarded: &'static obs::Counter,
    /// Packets dropped at access-link queue tails.
    pub packets_dropped: &'static obs::Counter,
    /// DHCP leases granted (fresh and renewed).
    pub dhcp_leases: &'static obs::Counter,
    /// NAT mappings evicted under table or port pressure.
    pub nat_evictions: &'static obs::Counter,
}

impl WorldMetrics {
    /// Register (or fetch) the world-layer handles.
    pub fn handles() -> WorldMetrics {
        WorldMetrics {
            packets_forwarded: obs::counter("packets_forwarded_total"),
            packets_dropped: obs::counter("packets_dropped_total"),
            dhcp_leases: obs::counter("dhcp_leases_total"),
            nat_evictions: obs::counter("nat_evictions_total"),
        }
    }

    /// Fold one link's lifetime counters into the global totals.
    pub fn publish_link(&self, stats: &LinkStats) {
        self.packets_forwarded.add(stats.accepted_packets);
        self.packets_dropped.add(stats.dropped_packets);
    }

    /// Fold one NAT's lifetime eviction count into the global total.
    pub fn publish_nat(&self, nat: &Nat) {
        self.nat_evictions.add(nat.evictions());
    }

    /// Fold one DHCP server's lifetime grant count into the global total.
    pub fn publish_dhcp(&self, dhcp: &DhcpServer) {
        self.dhcp_leases.add(dhcp.leases_granted());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::MacAddr;
    use crate::time::SimTime;
    use std::net::Ipv4Addr;

    #[test]
    fn publish_folds_lifetime_counters() {
        let m = WorldMetrics::handles();
        let before = (m.packets_forwarded.get(), m.dhcp_leases.get());
        let stats = LinkStats {
            accepted_packets: 10,
            accepted_bytes: 10_000,
            dropped_packets: 3,
            dropped_bytes: 3_000,
        };
        m.publish_link(&stats);
        let mut dhcp = DhcpServer::new();
        dhcp.request(SimTime::EPOCH, MacAddr::from_oui_nic(0x00_11_22, 1)).unwrap();
        m.publish_dhcp(&dhcp);
        m.publish_nat(&Nat::new(Ipv4Addr::new(203, 0, 113, 7)));
        assert_eq!(m.packets_forwarded.get() - before.0, 10);
        assert_eq!(m.dhcp_leases.get() - before.1, 1);
    }
}
