//! Property-based tests over the simnet substrate: wire-format round
//! trips under arbitrary inputs, event-queue ordering invariants, NAT
//! translation invariants, and link-model monotonicity.

use proptest::prelude::*;
use simnet::dns::{DnsQuery, DnsRecord, DnsResponse, DomainName, RecordData};
use simnet::event::EventQueue;
use simnet::link::{Link, LinkConfig, TxOutcome};
use simnet::nat::Nat;
use simnet::packet::{
    Endpoint, EthernetFrame, EtherType, FiveTuple, IpProtocol, Ipv4Packet, MacAddr, TcpFlags,
    TcpSegment, UdpDatagram,
};
use simnet::rng::{DetRng, ZipfTable};
use simnet::time::{SimDuration, SimTime};
use std::net::Ipv4Addr;

fn arb_ipv4() -> impl Strategy<Value = Ipv4Addr> {
    any::<[u8; 4]>().prop_map(|o| Ipv4Addr::new(o[0], o[1], o[2], o[3]))
}

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9][a-z0-9-]{0,20}").expect("valid regex")
}

fn arb_domain() -> impl Strategy<Value = DomainName> {
    proptest::collection::vec(arb_label(), 1..5)
        .prop_map(|labels| DomainName::new(&labels.join(".")).expect("labels are valid"))
}

proptest! {
    #[test]
    fn ethernet_round_trip(dst in arb_mac(), src in arb_mac(), ethertype in any::<u16>(),
                           payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let frame = EthernetFrame { dst, src, ethertype: EtherType::from(ethertype), payload };
        let parsed = EthernetFrame::parse(&frame.emit()).unwrap();
        prop_assert_eq!(parsed, frame);
    }

    #[test]
    fn ipv4_round_trip(src in arb_ipv4(), dst in arb_ipv4(), proto in any::<u8>(),
                       ttl in 1u8..=255, ident in any::<u16>(),
                       payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let pkt = Ipv4Packet {
            src, dst,
            protocol: IpProtocol::from(proto),
            ttl,
            identification: ident,
            dscp_ecn: 0,
            payload,
        };
        let parsed = Ipv4Packet::parse(&pkt.emit()).unwrap();
        prop_assert_eq!(parsed, pkt);
    }

    #[test]
    fn ipv4_single_bit_flip_detected_in_header(
        src in arb_ipv4(), dst in arb_ipv4(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        byte in 0usize..20, bit in 0u8..8,
    ) {
        let pkt = Ipv4Packet::new(src, dst, IpProtocol::Tcp, payload);
        let mut wire = pkt.emit();
        wire[byte] ^= 1 << bit;
        // Any single-bit header corruption must be rejected: either the
        // checksum catches it or a structural check does.
        prop_assert!(Ipv4Packet::parse(&wire).is_err());
    }

    #[test]
    fn udp_round_trip(src in arb_ipv4(), dst in arb_ipv4(),
                      sport in any::<u16>(), dport in any::<u16>(),
                      payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let dgram = UdpDatagram::new(sport, dport, payload);
        let parsed = UdpDatagram::parse(&dgram.emit(src, dst), src, dst).unwrap();
        prop_assert_eq!(parsed, dgram);
    }

    #[test]
    fn tcp_round_trip(src in arb_ipv4(), dst in arb_ipv4(), sport in any::<u16>(),
                      dport in any::<u16>(), seq in any::<u32>(), ack in any::<u32>(),
                      window in any::<u16>(), flag_bits in 0u8..32,
                      payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let seg = TcpSegment {
            src_port: sport,
            dst_port: dport,
            seq,
            ack,
            flags: TcpFlags {
                fin: flag_bits & 1 != 0,
                syn: flag_bits & 2 != 0,
                rst: flag_bits & 4 != 0,
                psh: flag_bits & 8 != 0,
                ack: flag_bits & 16 != 0,
            },
            window,
            payload,
        };
        let parsed = TcpSegment::parse(&seg.emit(src, dst), src, dst).unwrap();
        prop_assert_eq!(parsed, seg);
    }

    #[test]
    fn emit_into_matches_emit(dst in arb_mac(), src in arb_mac(),
                              src_ip in arb_ipv4(), dst_ip in arb_ipv4(),
                              sport in any::<u16>(), dport in any::<u16>(),
                              payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        // The zero-allocation emit paths must be byte-identical to the
        // allocating ones for arbitrary payloads, at every layer.
        let dgram = UdpDatagram::new(sport, dport, payload);
        let udp_wire = dgram.emit(src_ip, dst_ip);
        let mut udp_buf = vec![0u8; dgram.wire_len()];
        dgram.view().emit_into(src_ip, dst_ip, &mut udp_buf);
        prop_assert_eq!(&udp_buf, &udp_wire);

        let pkt = Ipv4Packet::new(src_ip, dst_ip, IpProtocol::Udp, udp_wire);
        let ip_wire = pkt.emit();
        let mut ip_buf = vec![0u8; pkt.wire_len()];
        pkt.view().emit_into(&mut ip_buf);
        prop_assert_eq!(&ip_buf, &ip_wire);
        // Header-only emission over an already-placed payload agrees too.
        let mut split_buf = vec![0u8; pkt.wire_len()];
        split_buf[simnet::packet::IPV4_HEADER_LEN..].copy_from_slice(&pkt.payload);
        pkt.view().emit_header_into(&mut split_buf);
        prop_assert_eq!(&split_buf, &ip_wire);

        let frame = EthernetFrame {
            dst, src,
            ethertype: EtherType::Ipv4,
            payload: ip_wire.clone(),
        };
        let eth_wire = frame.emit();
        let mut eth_buf = vec![0u8; frame.wire_len()];
        frame.view().emit_into(&mut eth_buf);
        prop_assert_eq!(&eth_buf, &eth_wire);
    }

    #[test]
    fn view_parse_of_emit_round_trips(src_ip in arb_ipv4(), dst_ip in arb_ipv4(),
                                      sport in any::<u16>(), dport in any::<u16>(),
                                      payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Borrowed-view parsing sees exactly what the owning parse sees.
        let dgram = UdpDatagram::new(sport, dport, payload);
        let pkt = Ipv4Packet::new(src_ip, dst_ip, IpProtocol::Udp, dgram.emit(src_ip, dst_ip));
        let wire = pkt.emit();
        let ip_view = simnet::packet::Ipv4View::parse(&wire).unwrap();
        prop_assert_eq!(ip_view.to_owned(), pkt);
        let udp_view =
            simnet::packet::UdpView::parse(ip_view.payload, ip_view.src, ip_view.dst).unwrap();
        prop_assert_eq!(udp_view.to_owned(), dgram);
    }

    #[test]
    fn dns_emit_into_appends(id in any::<u16>(), name in arb_domain(), junk in 0usize..32) {
        // DnsQuery::emit_into appends after existing content and matches
        // the allocating emit byte for byte.
        let q = DnsQuery { id, name };
        let mut buf = vec![0xEE; junk];
        q.emit_into(&mut buf);
        prop_assert_eq!(&buf[junk..], q.emit().as_slice());
    }

    #[test]
    fn dns_query_round_trip(id in any::<u16>(), name in arb_domain()) {
        let q = DnsQuery { id, name };
        prop_assert_eq!(DnsQuery::parse(&q.emit()).unwrap(), q);
    }

    #[test]
    fn dns_response_round_trip(id in any::<u16>(), question in arb_domain(),
                               chain in proptest::collection::vec(arb_domain(), 0..4),
                               addr in arb_ipv4(), ttl_secs in 0u32..1_000_000) {
        // Build a CNAME chain ending in an A record (or NXDOMAIN when empty).
        let mut answers = Vec::new();
        let mut owner = question.clone();
        for target in &chain {
            answers.push(DnsRecord {
                name: owner.clone(),
                data: RecordData::Cname(target.clone()),
                ttl: SimDuration::from_secs(u64::from(ttl_secs)),
            });
            owner = target.clone();
        }
        if !chain.is_empty() {
            answers.push(DnsRecord {
                name: owner,
                data: RecordData::A(addr),
                ttl: SimDuration::from_secs(u64::from(ttl_secs)),
            });
        }
        let resp = DnsResponse { id, question, answers };
        let parsed = DnsResponse::parse(&resp.emit()).unwrap();
        prop_assert_eq!(&parsed, &resp);
        if !chain.is_empty() {
            prop_assert_eq!(parsed.address(), Some(addr));
        }
    }

    #[test]
    fn domain_parse_never_panics(s in "\\PC{0,64}") {
        let _ = DomainName::new(&s);
    }

    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(*t), i);
        }
        let mut last = SimTime::EPOCH;
        let mut count = 0;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn event_queue_same_time_is_fifo(n in 1usize..100) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime::from_micros(42), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn event_queue_cancellation_exact(cancel_mask in proptest::collection::vec(any::<bool>(), 1..100)) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = cancel_mask
            .iter()
            .enumerate()
            .map(|(i, _)| q.schedule(SimTime::from_micros(i as u64), i))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, (&cancel, id)) in cancel_mask.iter().zip(&ids).enumerate() {
            if cancel {
                prop_assert!(q.cancel(*id));
            } else {
                expected.push(i);
            }
        }
        let delivered: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(delivered, expected);
    }

    #[test]
    fn nat_round_trip_any_flow(host in 2u8..250, sport in 1024u16..65000,
                               dst in arb_ipv4(), dport in 1u16..65000, proto_tcp in any::<bool>()) {
        let wan = Ipv4Addr::new(203, 0, 113, 9);
        let mut nat = Nat::new(wan);
        let flow = FiveTuple {
            proto: if proto_tcp { IpProtocol::Tcp } else { IpProtocol::Udp },
            src: Endpoint::new(Ipv4Addr::new(192, 168, 1, host), sport),
            dst: Endpoint::new(dst, dport),
        };
        let out = nat.translate_outbound(SimTime::EPOCH, flow).unwrap();
        prop_assert_eq!(out.wan_flow.src.addr, wan);
        prop_assert_eq!(out.wan_flow.dst, flow.dst);
        // The reply translates back to exactly the original LAN endpoint.
        let reply = out.wan_flow.reversed();
        let lan = nat.translate_inbound(SimTime::from_micros(1), reply).unwrap();
        prop_assert_eq!(lan.dst, flow.src);
    }

    #[test]
    fn nat_distinct_sources_never_collide(hosts in proptest::collection::btree_set(2u8..250, 2..40)) {
        let mut nat = Nat::new(Ipv4Addr::new(203, 0, 113, 9));
        let mut ports = std::collections::HashSet::new();
        for host in hosts {
            let flow = FiveTuple {
                proto: IpProtocol::Udp,
                src: Endpoint::new(Ipv4Addr::new(10, 0, 0, host), 5000),
                dst: Endpoint::new(Ipv4Addr::new(8, 8, 8, 8), 53),
            };
            let out = nat.translate_outbound(SimTime::EPOCH, flow).unwrap();
            prop_assert!(ports.insert(out.wan_flow.src.port), "WAN port reused");
        }
    }

    #[test]
    fn link_deliveries_are_fifo(sizes in proptest::collection::vec(64u64..9000, 1..100),
                                gaps in proptest::collection::vec(0u64..5_000, 1..100)) {
        let mut link = Link::new(LinkConfig::simple(10_000_000, SimDuration::from_millis(3), 1 << 22));
        let mut now = SimTime::EPOCH;
        let mut last_delivery = SimTime::EPOCH;
        for (size, gap) in sizes.iter().zip(&gaps) {
            now += SimDuration::from_micros(*gap);
            if let TxOutcome::Delivered { at } = link.transmit(now, *size) {
                prop_assert!(at >= last_delivery, "FIFO violated");
                prop_assert!(at >= now, "delivery before arrival");
                last_delivery = at;
            }
        }
    }

    #[test]
    fn link_backlog_never_exceeds_limit(sizes in proptest::collection::vec(64u64..9000, 1..200)) {
        let limit = 20_000u64;
        let mut link = Link::new(LinkConfig::simple(1_000_000, SimDuration::ZERO, limit));
        for size in sizes {
            link.transmit(SimTime::EPOCH, size);
            prop_assert!(link.backlog_bytes(SimTime::EPOCH) <= limit);
        }
    }

    #[test]
    fn zipf_pmf_is_normalized_and_monotone(n in 1usize..500, s in 0.1f64..3.0) {
        let table = ZipfTable::new(n, s);
        let total: f64 = (0..n).map(|i| table.pmf(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        for i in 1..n {
            prop_assert!(table.pmf(i) <= table.pmf(i - 1) + 1e-12);
        }
    }

    #[test]
    fn derived_rng_streams_reproducible(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let a = DetRng::new(seed);
        let mut s1 = a.derive(&label);
        let mut s2 = DetRng::new(seed).derive(&label);
        for _ in 0..16 {
            prop_assert_eq!(s1.next_u64(), s2.next_u64());
        }
    }
}
