//! The per-home discrete-event simulation: one household, one gateway,
//! one event queue, from the study epoch to the end of the span.
//!
//! Everything the paper measures happens in here, in virtual time:
//!
//! * the router powers on and off according to the home's
//!   [`household::PowerMode`], and the ISP fails according to its outage
//!   process;
//! * while powered, the firmware sends per-minute heartbeats (real wire
//!   images through the uplink and a lossy WAN path), 12-hourly uptime
//!   reports and capacity probes, hourly device censuses, and 10-minute
//!   WiFi scan slots;
//! * devices come and go following the household's diurnal rhythm; in
//!   consenting homes during the Traffic window, online devices start
//!   application sessions (DNS lookup through the gateway resolver, NAT
//!   translation, then a fluid flow that shares the access link);
//! * every observation is emitted as a [`firmware::records::Record`] and
//!   uploaded to the collector in batches.
//!
//! Homes are mutually independent, so the study runs them on parallel
//! threads; determinism is preserved because each home derives its own
//! random streams from `(study seed, home id)`.

use crate::study::StudyWindows;
use cgn::plan::HomeCgn;
use cgn::{run_trial, CgnHop, NatChain, SyntheticPeer};
use collector::{Collector, UploadOutcome};
use faultlab::{ClockSkew, HomeFaults};
use firmware::anonymize::Anonymizer;
use firmware::gateway::Gateway;
use firmware::heartbeat::Heartbeat;
use firmware::natprobe::{self, NatType, STUN_SERVERS};
use firmware::records::{
    AssociationRecord, CapacityRecord, HeartbeatRecord, Medium, NatProbeRecord, PunchTrialRecord,
    Record, RouterId,
};
use firmware::shaperprobe;
use firmware::traffic::TrafficMonitor;
use firmware::uploader::{Uploader, UploaderConfig};
use household::devices::{Attachment, Device};
use household::domains::DomainUniverse;
use household::home::{HomeConfig, Quirk};
use household::interval::{self, Interval};
use simnet::impair::ImpairmentSchedule;
use netstack::{AppKind, Flow, FlowScheduler};
use simnet::dns::ZoneDb;
use simnet::event::EventQueue;
use simnet::link::{Link, TxOutcome, WanPath};
use simnet::packet::Endpoint;
use simnet::rng::DetRng;
use simnet::time::{SimDuration, SimTime};
use simnet::wifi::Band;

/// Flush the record buffer to the collector at this size.
const FLUSH_THRESHOLD: usize = 50_000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    PowerOn,
    PowerOff,
    /// Per-minute heartbeat; `epoch` guards against stale events from a
    /// previous boot.
    Heartbeat { epoch: u32 },
    UptimeReport,
    CapacityProbe,
    Census,
    ScanSlot,
    PresenceSlot,
    SessionArrival,
    TrafficTick,
    Reassociate { device: usize },
    NatSweep,
    LatencyProbe,
    /// Periodic STUN-style NAT-type probe (CGN studies only).
    NatProbe,
    /// A scheduled pairwise hole-punch trial (CGN studies only); `idx`
    /// indexes this home's trial list in the compiled plan.
    PunchTrial { idx: u32 },
    /// Retry the head of the upload spool after a backoff delay; `epoch`
    /// guards against retries scheduled before a reboot (the power-on
    /// handler re-pumps the spool itself).
    UploadRetry { epoch: u32 },
    /// Periodic store-and-forward flush (fault mode only): seal whatever
    /// accumulated and push the spool, so a quiet home still uploads.
    UploadFlush,
    /// An injected flash-wipe reboot destroys the spool and the unsealed
    /// accumulation buffer (fault mode only).
    FlashWipe,
}

/// Per-device dynamic state.
#[derive(Debug, Clone, Copy)]
struct DeviceState {
    online: bool,
    /// Band the device chose for its current online period (wireless only).
    band: Option<Band>,
}

/// Observability for one home: pre-registered `obs` handles (registered
/// once in [`HomeSim::new`], so increments never allocate or take the
/// registry lock) plus local accumulators for the hot events. Everything
/// here is write-only — nothing in the simulation ever reads a metric, so
/// instrumentation cannot perturb results.
struct HomeMetrics {
    world: simnet::metrics::WorldMetrics,
    flows: netstack::metrics::FlowMetrics,
    fw: firmware::metrics::FirmwareMetrics,
    /// Heartbeats sent this run; one per simulated minute while powered, so
    /// it stays a plain local integer and folds into the shared counter
    /// once, at end of run.
    heartbeats_emitted: u64,
    /// CGN experiment accumulators; folded into armed-gated counters at end
    /// of run, so a CGN-free study registers none of them.
    cgn: CgnLocal,
}

/// Local accumulators for the CGN/NAT-characterization experiments.
#[derive(Default)]
struct CgnLocal {
    probes: u64,
    probes_blocked: u64,
    punch_trials: u64,
    punch_success: u64,
    session_blocked: u64,
}

/// Parameters for one home's simulation.
pub struct SimParams<'a> {
    /// The home to simulate.
    pub cfg: &'a HomeConfig,
    /// The shared domain universe.
    pub universe: &'a DomainUniverse,
    /// The shared authoritative DNS zone.
    pub zone: &'a ZoneDb,
    /// The study's collection windows.
    pub windows: &'a StudyWindows,
    /// The study seed (per-home streams derive from it).
    pub seed: u64,
    /// Route records through the store-and-forward upload queue instead of
    /// flushing straight to the collector. The study runner enables this
    /// uniformly for every home whenever a fault plan is active; with it
    /// off, the legacy direct-flush path runs untouched.
    pub reliable_upload: bool,
    /// This home's slice of the fault plan, if any.
    pub faults: Option<&'a HomeFaults>,
    /// This home's slice of the CGN plan. `Some` for *every* home when a
    /// CGN scenario is armed (unfronted homes carry no assignment but
    /// still run the NAT-characterization experiments, providing the
    /// detection negatives); `None` keeps the legacy single-NAT path
    /// byte-identical.
    pub cgn: Option<&'a HomeCgn>,
}

/// The simulation engine for one home.
pub struct HomeSim<'a> {
    cfg: &'a HomeConfig,
    universe: &'a DomainUniverse,
    zone: &'a ZoneDb,
    windows: StudyWindows,
    gateway: Gateway,
    monitor: Option<TrafficMonitor>,
    flows: FlowScheduler,
    up_link: Link,
    down_link: Link,
    wan: WanPath,
    queue: EventQueue<Ev>,
    device_state: Vec<DeviceState>,
    outages: Vec<Interval>,
    boot_epoch: u32,
    tick_scheduled: bool,
    uploader_active: bool,
    dns_id: u16,
    ephemeral_port: u16,
    /// The store-and-forward upload queue (`Some` iff the study runs with
    /// a fault plan; `None` keeps the legacy direct-flush path).
    upload_queue: Option<Uploader>,
    /// Injected impairment on the WAN upload path (empty when unfaulted).
    wan_faults: ImpairmentSchedule,
    /// Injected clock skew on router-stamped records, if any.
    clock_skew: Option<ClockSkew>,
    /// This home's slice of the CGN plan (`Some` iff a scenario is armed).
    cgn_plan: Option<&'a HomeCgn>,
    /// The carrier-grade second translation hop (`Some` iff this home is
    /// CGN-fronted): every outbound session and probe crosses it after the
    /// home NAT.
    cgn_hop: Option<CgnHop>,
    /// Is an `UploadRetry` already in flight for the current boot?
    retry_scheduled: bool,
    // Independent random streams, one per process.
    rng_heartbeat: DetRng,
    rng_scan: DetRng,
    rng_presence: DetRng,
    rng_session: DetRng,
    rng_probe: DetRng,
    rng_upload: DetRng,
    out: Vec<Record>,
    /// Scratch buffer for DNS wire images, reused across lookups.
    dns_wire_buf: Vec<u8>,
    metrics: HomeMetrics,
}

impl<'a> HomeSim<'a> {
    /// Build the simulation: precompute power/outage schedules and prime
    /// the event queue.
    pub fn new(params: SimParams<'a>) -> HomeSim<'a> {
        let cfg = params.cfg;
        let windows = params.windows.clone();
        let root = DetRng::new(params.seed).derive_indexed("homesim", u64::from(cfg.id.0));
        let router = RouterId(cfg.id.0);
        let anonymizer = Anonymizer::new(
            root.derive("anon-key").seed(),
            params.universe.whitelist(),
        );
        let monitor = cfg.traffic_consent.then(|| TrafficMonitor::new(router, anonymizer));
        let mut queue = EventQueue::new();

        let span = windows.span;
        // Power schedule → PowerOn/PowerOff events. Injected power cycles
        // are subtracted from the home's own schedule up front, so the
        // merged intervals drive the exact same two events and no handler
        // needs to know whether an outage was organic or injected.
        let mut power_rng = root.derive("power");
        let powered = {
            let base = cfg.availability.power_intervals(span.start, span.end, &mut power_rng);
            match params.faults {
                Some(f) if !f.power_cycles.is_empty() => {
                    let cuts: Vec<Interval> = f
                        .power_cycles
                        .iter()
                        .map(|c| Interval::new(c.at, c.until()))
                        .collect();
                    interval::subtract(&base, &cuts)
                }
                _ => base,
            }
        };
        let powered_hist =
            obs::histogram("home_powered_interval_micros", &obs::DURATION_BOUNDS_MICROS);
        for iv in &powered {
            powered_hist.record(iv.end.since(iv.start).as_micros());
            queue.schedule(iv.start, Ev::PowerOn);
            if iv.end < span.end {
                queue.schedule(iv.end, Ev::PowerOff);
            }
        }
        if let Some(f) = params.faults {
            for c in f.power_cycles.iter().filter(|c| c.flash_wipe) {
                if c.at >= span.start && c.at < span.end {
                    queue.schedule(c.at, Ev::FlashWipe);
                }
            }
        }
        // ISP outage schedule, queried on demand.
        let mut outage_rng = root.derive("outage");
        let outages = cfg.availability.isp_outages(span.start, span.end, &mut outage_rng);

        // Global periodic schedules (handlers check power state).
        queue.schedule(span.start + SimDuration::from_mins(30), Ev::PresenceSlot);
        queue.schedule(windows.devices.start, Ev::Census);
        queue.schedule(windows.wifi.start, Ev::ScanSlot);
        queue.schedule(windows.uptime.start, Ev::UptimeReport);
        let mut probe_rng = root.derive("probe");
        queue.schedule(
            windows.capacity.start
                + SimDuration::from_mins(probe_rng.uniform_int(0, 12 * 60)),
            Ev::CapacityProbe,
        );
        if monitor.is_some() {
            queue.schedule(
                windows.traffic.start + SimDuration::from_secs(probe_rng.uniform_int(0, 600)),
                Ev::SessionArrival,
            );
        }
        queue.schedule(span.start + SimDuration::from_hours(1), Ev::NatSweep);
        queue.schedule(
            span.start + SimDuration::from_mins(probe_rng.uniform_int(5, 65)),
            Ev::LatencyProbe,
        );
        // CGN studies: a periodic STUN-style NAT-type probe (first one a
        // random 1–12 h into the span, then every 12 h) plus this home's
        // scheduled hole-punch trials. The stream is private to the CGN
        // experiments and draws nothing unless a scenario is armed, so a
        // CGN-free run stays byte-identical.
        let mut rng_cgn = root.derive("cgn-probe");
        if let Some(plan) = params.cgn {
            queue.schedule(
                span.start + SimDuration::from_mins(rng_cgn.uniform_int(60, 12 * 60)),
                Ev::NatProbe,
            );
            for (idx, p) in plan.punches.iter().enumerate() {
                queue.schedule(p.at, Ev::PunchTrial { idx: idx as u32 });
            }
        }

        // Store-and-forward uploads: accumulate small batches and flush on
        // a 6-hour cadence (staggered per home) instead of waiting for the
        // big direct-flush threshold.
        let upload_queue =
            params.reliable_upload.then(|| Uploader::new(UploaderConfig::default()));
        let mut rng_upload = root.derive("upload");
        if params.reliable_upload {
            queue.schedule(
                span.start + SimDuration::from_mins(rng_upload.uniform_int(30, 361)),
                Ev::UploadFlush,
            );
        }
        let out_capacity =
            upload_queue.as_ref().map_or(FLUSH_THRESHOLD, |u| u.config().batch_records);

        let device_state = cfg
            .devices
            .iter()
            .map(|_| DeviceState { online: false, band: None })
            .collect();

        HomeSim {
            cfg,
            universe: params.universe,
            zone: params.zone,
            windows,
            gateway: Gateway::new(router, cfg.wan_addr),
            monitor,
            flows: FlowScheduler::new(),
            up_link: Link::new(cfg.up_link),
            down_link: Link::new(cfg.down_link),
            wan: WanPath { transit_delay: cfg.wan_transit, loss_prob: cfg.heartbeat_loss_prob },
            queue,
            device_state,
            outages,
            boot_epoch: 0,
            tick_scheduled: false,
            uploader_active: false,
            dns_id: 1,
            ephemeral_port: 20_000,
            upload_queue,
            wan_faults: params
                .faults
                .map(|f| f.wan.clone())
                .unwrap_or_else(ImpairmentSchedule::none),
            clock_skew: params.faults.and_then(|f| f.clock_skew),
            cgn_plan: params.cgn,
            cgn_hop: params
                .cgn
                .and_then(|p| p.assignment.as_ref())
                .map(|a| CgnHop::new(a.behavior, a.leases.clone())),
            retry_scheduled: false,
            rng_heartbeat: root.derive("heartbeat"),
            rng_scan: root.derive("scan"),
            rng_presence: root.derive("presence"),
            rng_session: root.derive("session"),
            rng_probe: probe_rng,
            rng_upload,
            out: Vec::with_capacity(out_capacity),
            dns_wire_buf: Vec::with_capacity(128),
            metrics: HomeMetrics {
                world: simnet::metrics::WorldMetrics::handles(),
                flows: netstack::metrics::FlowMetrics::handles(),
                fw: firmware::metrics::FirmwareMetrics::handles(),
                heartbeats_emitted: 0,
                cgn: CgnLocal::default(),
            },
        }
    }

    fn is_isp_up(&self, t: SimTime) -> bool {
        // Outages are sorted and disjoint.
        match self.outages.partition_point(|iv| iv.end <= t) {
            idx if idx < self.outages.len() => !self.outages[idx].contains(t),
            _ => true,
        }
    }

    fn flush(&mut self, now: SimTime, shard: &collector::ShardHandle<'_>) {
        match self.upload_queue.is_some() {
            // Drain rather than hand off: the buffer keeps its capacity, so
            // the whole run reuses one allocation for record batching.
            false => shard.ingest_drain(&mut self.out),
            // Fault mode: seal the buffer into a sequence-numbered batch
            // and try to push the spool through the (possibly impaired)
            // WAN path.
            true => {
                self.upload_queue.as_mut().expect("checked").seal(&mut self.out);
                self.pump(now, shard);
            }
        }
    }

    /// Push a router-stamped record, applying any injected clock skew: a
    /// drifting gateway stamps everything it records ahead by the skew
    /// offset while the window is active. Heartbeats never come through
    /// here — the collector stamps those on arrival, which is exactly why
    /// the paper's availability analyses trust them over router logs.
    fn emit(&mut self, now: SimTime, mut rec: Record) {
        if let Some(sk) = self.clock_skew {
            if sk.window.contains(now) {
                rec.shift_time(sk.offset);
            }
        }
        self.out.push(rec);
    }

    /// Apply clock skew to records appended since `from` (the bulk variant
    /// of [`Self::emit`] for traffic-monitor drains).
    fn apply_skew_from(&mut self, now: SimTime, from: usize) {
        if let Some(sk) = self.clock_skew {
            if sk.window.contains(now) {
                for rec in &mut self.out[from..] {
                    rec.shift_time(sk.offset);
                }
            }
        }
    }

    /// Try to deliver spooled batches until the spool drains or an attempt
    /// fails — lost on the impaired WAN path, or nacked by a down
    /// collector — in which case one retry is scheduled with the
    /// uploader's exponential backoff.
    fn pump(&mut self, now: SimTime, shard: &collector::ShardHandle<'_>) {
        let router = self.gateway.id;
        loop {
            match self.upload_queue.as_ref() {
                Some(up) if up.spool_len() > 0 => {}
                _ => return,
            }
            // The batch crosses the impaired WAN path first (an empty
            // schedule never draws from the RNG).
            let fate = self.wan_faults.transmit(now, &mut self.rng_upload);
            let up = self.upload_queue.as_mut().expect("spool checked above");
            let delivered = match fate {
                None => false, // lost on the wire
                Some(extra) => {
                    let a = up.attempt().expect("spool checked above");
                    shard
                        .ingest_upload(now + extra, router, a.seq, a.attempt, a.gaps, a.records)
                        .is_ack()
                }
            };
            let up = self.upload_queue.as_mut().expect("spool checked above");
            if delivered {
                up.ack_front();
            } else {
                let delay = up.fail_front(&mut self.rng_upload);
                self.metrics.fw.record_backoff(delay);
                self.schedule_retry(now + delay);
                return;
            }
        }
    }

    fn schedule_retry(&mut self, at: SimTime) {
        if !self.retry_scheduled {
            self.retry_scheduled = true;
            self.queue.schedule(at, Ev::UploadRetry { epoch: self.boot_epoch });
        }
    }

    fn on_upload_retry(&mut self, now: SimTime, epoch: u32, shard: &collector::ShardHandle<'_>) {
        if epoch != self.boot_epoch {
            return; // stale: the reboot cleared the flag and power-on re-pumps
        }
        self.retry_scheduled = false;
        if self.gateway.is_powered() {
            self.pump(now, shard);
        }
    }

    fn on_upload_flush(&mut self, now: SimTime, shard: &collector::ShardHandle<'_>) {
        if self.gateway.is_powered() {
            self.flush(now, shard);
        }
        let next = now + SimDuration::from_hours(6);
        if next < self.windows.span.end {
            self.queue.schedule(next, Ev::UploadFlush);
        }
    }

    /// The study is over: seal the remainder (plus a carrier batch for any
    /// still-undelivered gap declarations) and drain the spool. Scenario
    /// fault windows end inside the span, so the path is clear by now; if
    /// the collector still announces downtime, its nack says when to retry.
    fn final_drain(&mut self, end: SimTime, shard: &collector::ShardHandle<'_>) {
        let router = self.gateway.id;
        let up = self.upload_queue.as_mut().expect("final_drain runs in fault mode only");
        up.seal(&mut self.out);
        up.seal_gap_carrier();
        let mut at = self.wan_faults.next_clear(end);
        loop {
            let up = self.upload_queue.as_mut().expect("fault mode");
            let Some(a) = up.attempt() else { break };
            match shard.ingest_upload(at, router, a.seq, a.attempt, a.gaps, a.records) {
                // A downtime window is half-open, so its end is strictly
                // after `at`: the loop always advances and terminates.
                UploadOutcome::Down { retry_at } => at = retry_at,
                _ => up.ack_front(),
            }
        }
    }

    /// Run to the end of the span, uploading records to `collector`.
    ///
    /// All of this home's records belong to one router, so the upload path
    /// grabs that router's shard handle once and every flush is a single
    /// uncontended lock — parallel homes never serialize on ingestion.
    pub fn run(mut self, collector: &Collector) {
        let end = self.windows.span.end;
        self.run_until(end, collector);
        self.finish(collector);
    }

    /// Advance the simulation, processing every event before `until` and
    /// uploading as usual, then return with all later events still queued.
    /// The event sequence is untouched by where the cuts fall: popping the
    /// queue in segments yields exactly the pops one uninterrupted [`run`]
    /// loop would make, so a streamed home is record-identical to a batch
    /// one. Call [`Self::finish`] after the last segment.
    ///
    /// [`run`]: Self::run
    pub fn run_until(&mut self, until: SimTime, collector: &Collector) {
        let shard = collector.shard_handle(self.gateway.id);
        let threshold =
            self.upload_queue.as_ref().map_or(FLUSH_THRESHOLD, |u| u.config().batch_records);
        while let Some((now, ev)) = self.queue.pop_if_before(until) {
            self.handle(now, ev, &shard);
            if self.out.len() >= threshold {
                self.flush(now, &shard);
            }
        }
    }

    /// End-of-study epilogue: tear down live flows so their records are
    /// emitted, drain the monitor and the upload spool, and publish this
    /// home's metrics. Consumes the simulation.
    pub fn finish(mut self, collector: &Collector) {
        let shard = collector.shard_handle(self.gateway.id);
        let end = self.windows.span.end;
        self.abort_flows(end);
        if let Some(monitor) = self.monitor.as_mut() {
            monitor.finalize(end);
            self.out.extend(monitor.drain());
        }
        match self.upload_queue.is_some() {
            false => self.flush(end, &shard),
            true => self.final_drain(end, &shard),
        }
        self.publish_metrics();
    }

    /// Fold this home's lifetime counts into the global `obs` registry —
    /// one batch of relaxed atomic adds per home, after the last record is
    /// uploaded, so the hot path never touches shared cache lines and the
    /// totals are identical whatever order homes finish in.
    fn publish_metrics(&self) {
        let m = &self.metrics;
        m.fw.add_heartbeats(m.heartbeats_emitted);
        if let Some(up) = &self.upload_queue {
            m.fw.publish_uploader(&up.stats());
        }
        m.world.publish_link(&self.up_link.stats());
        m.world.publish_link(&self.down_link.stats());
        m.world.publish_nat(&self.gateway.nat);
        m.world.publish_dhcp(&self.gateway.dhcp);
        m.flows.publish_scheduler(&self.flows);
        // CGN counters exist only when a scenario is armed, so the metrics
        // key set of a CGN-free run is unchanged. Every armed home
        // registers the full set (hop counters add zero when unfronted) —
        // the exported keys never depend on which homes were fronted.
        if self.cgn_plan.is_some() {
            obs::counter("cgn_probes_total").add(m.cgn.probes);
            obs::counter("cgn_probes_blocked_total").add(m.cgn.probes_blocked);
            obs::counter("cgn_punch_trials_total").add(m.cgn.punch_trials);
            obs::counter("cgn_punch_success_total").add(m.cgn.punch_success);
            obs::counter("cgn_session_blocked_total").add(m.cgn.session_blocked);
            let (mapped, evicted, blocked, flushed) =
                self.cgn_hop.as_ref().map_or((0, 0, 0, 0), |h| {
                    (h.mappings_created(), h.evictions(), h.blocked(), h.flushes())
                });
            obs::counter("cgn_hop_mappings_total").add(mapped);
            obs::counter("cgn_hop_evictions_total").add(evicted);
            obs::counter("cgn_hop_blocked_total").add(blocked);
            obs::counter("cgn_hop_flushes_total").add(flushed);
        }
    }

    fn handle(&mut self, now: SimTime, ev: Ev, shard: &collector::ShardHandle<'_>) {
        match ev {
            Ev::PowerOn => self.on_power_on(now, shard),
            Ev::PowerOff => self.on_power_off(now),
            Ev::Heartbeat { epoch } => self.on_heartbeat(now, epoch, shard),
            Ev::UptimeReport => self.on_uptime(now),
            Ev::CapacityProbe => self.on_capacity_probe(now),
            Ev::Census => self.on_census(now),
            Ev::ScanSlot => self.on_scan_slot(now),
            Ev::PresenceSlot => self.on_presence_slot(now),
            Ev::SessionArrival => self.on_session_arrival(now),
            Ev::TrafficTick => self.on_traffic_tick(now),
            Ev::Reassociate { device } => self.on_reassociate(now, device),
            Ev::NatSweep => {
                self.gateway.nat.expire(now);
                self.gateway.neighbors.expire(now);
                if let Some(hop) = self.cgn_hop.as_mut() {
                    hop.expire(now);
                }
                self.queue.schedule(now + SimDuration::from_hours(1), Ev::NatSweep);
            }
            Ev::LatencyProbe => self.on_latency_probe(now),
            Ev::NatProbe => self.on_nat_probe(now),
            Ev::PunchTrial { idx } => self.on_punch_trial(now, idx),
            Ev::UploadRetry { epoch } => self.on_upload_retry(now, epoch, shard),
            Ev::UploadFlush => self.on_upload_flush(now, shard),
            Ev::FlashWipe => {
                if let Some(up) = self.upload_queue.as_mut() {
                    up.wipe(&mut self.out);
                }
            }
        }
    }

    fn on_power_on(&mut self, now: SimTime, shard: &collector::ShardHandle<'_>) {
        self.gateway.power_on(now);
        self.up_link.reset(now);
        self.down_link.reset(now);
        // Always-connected devices attach as soon as the router is up.
        for (idx, device) in self.cfg.devices.iter().enumerate() {
            if device.always_connected {
                self.device_state[idx].online = true;
                self.attach(idx, now);
            }
        }
        self.queue.schedule(
            now + SimDuration::from_secs(self.rng_heartbeat.uniform_int(5, 65)),
            Ev::Heartbeat { epoch: self.boot_epoch },
        );
        // Anything spooled from before the outage uploads at boot (any
        // in-flight retry from the previous boot was invalidated by the
        // epoch bump, so this is the path that resumes delivery).
        if self.upload_queue.as_ref().is_some_and(Uploader::has_backlog) {
            self.pump(now, shard);
        }
    }

    fn on_power_off(&mut self, now: SimTime) {
        self.abort_flows(now);
        self.gateway.power_off(now);
        self.boot_epoch += 1;
        self.retry_scheduled = false;
        for state in &mut self.device_state {
            state.online = false;
            state.band = None;
        }
    }

    fn abort_flows(&mut self, now: SimTime) {
        for flow in self.flows.abort_all() {
            if let Some(monitor) = self.monitor.as_mut() {
                monitor.on_flow_end(now, flow.id);
            }
        }
        self.uploader_active = false;
    }

    fn on_heartbeat(&mut self, now: SimTime, epoch: u32, shard: &collector::ShardHandle<'_>) {
        if !self.gateway.is_powered() || epoch != self.boot_epoch {
            return; // stale event from a previous boot
        }
        let hb = Heartbeat { router: self.gateway.id, seq: self.gateway.heartbeat_seq };
        self.gateway.heartbeat_seq += 1;
        self.metrics.heartbeats_emitted += 1;
        // The packet crosses the uplink (it can be queued behind bulk
        // upload traffic, or dropped if the queue is full), then the WAN
        // path, where congestion loss applies; it only becomes a record if
        // the ISP link is up and it survives. The wire image is built and
        // parsed on a stack buffer only for packets that actually arrive —
        // emission is pure, so skipping it for lost packets changes nothing.
        if self.is_isp_up(now) {
            if let TxOutcome::Delivered { at } =
                self.up_link.transmit(now, Heartbeat::wire_len())
            {
                if self.wan.survives(&mut self.rng_heartbeat) {
                    let mut wire = [0u8; Heartbeat::WIRE_LEN];
                    hb.emit_into(self.cfg.wan_addr, &mut wire);
                    // Collector-side parse: only validated packets count.
                    if let Ok((parsed, _)) = Heartbeat::parse(&wire) {
                        let rec = HeartbeatRecord {
                            router: parsed.router,
                            at: at + self.wan.transit_delay,
                        };
                        if self.upload_queue.is_some() {
                            // Fault mode: heartbeats are datagrams, handed
                            // to the collector on arrival (and dropped by
                            // it during announced downtime) rather than
                            // spooled — that asymmetry is what makes
                            // collector outages visible as correlated
                            // heartbeat silence while batch data survives.
                            shard.ingest_heartbeat(rec);
                        } else {
                            self.out.push(Record::Heartbeat(rec));
                        }
                    }
                }
            }
        }
        self.queue
            .schedule(now + SimDuration::from_secs(60), Ev::Heartbeat { epoch });
    }

    fn on_uptime(&mut self, now: SimTime) {
        if self.windows.uptime.contains(now) && self.gateway.is_powered() && self.is_isp_up(now)
        {
            let rec = Record::Uptime(self.gateway.uptime_report(now));
            self.emit(now, rec);
        }
        let next = now + SimDuration::from_hours(12);
        if next < self.windows.span.end {
            self.queue.schedule(next, Ev::UptimeReport);
        }
    }

    fn on_capacity_probe(&mut self, now: SimTime) {
        if self.windows.capacity.contains(now) && self.gateway.is_powered() && self.is_isp_up(now)
        {
            // The probe train shares the bottleneck with whatever bulk
            // cross-traffic is active: with n backlogged flows competing,
            // the train's fair share — and therefore its dispersion-implied
            // rate — drops to capacity/(n+1). This is why the Fig 16
            // uploader's *measured* capacity sits well below the rate his
            // LAN-side utilization counters reach.
            let backlogged_up = self
                .flows
                .active()
                .iter()
                .filter(|f| f.rate_cap_up_bps.is_none() && f.remaining_up > 0)
                .count() as u64;
            let backlogged_down = self
                .flows
                .active()
                .iter()
                .filter(|f| f.rate_cap_bps.is_none() && f.remaining_down > 0)
                .count() as u64;
            let shared = |cfg: &simnet::link::LinkConfig, n: u64| -> Link {
                let mut scaled = *cfg;
                scaled.rate_bps = cfg.rate_bps / (n + 1);
                scaled.peak_bps = cfg.peak_bps / (n + 1);
                Link::new(scaled)
            };
            let mut up = shared(self.up_link.config(), backlogged_up);
            let mut down = shared(self.down_link.config(), backlogged_down);
            let up_est = shaperprobe::probe_link(&mut up, now, &mut self.rng_probe);
            let down_est = shaperprobe::probe_link(&mut down, now, &mut self.rng_probe);
            if let (Some(up_est), Some(down_est)) = (up_est, down_est) {
                self.emit(
                    now,
                    Record::Capacity(CapacityRecord {
                        router: self.gateway.id,
                        at: now,
                        down_bps: down_est.bps,
                        up_bps: up_est.bps,
                        shaping_detected: up_est.shaping_detected || down_est.shaping_detected,
                    }),
                );
            }
        }
        let next = now + SimDuration::from_hours(12);
        if next < self.windows.span.end {
            self.queue.schedule(next, Ev::CapacityProbe);
        }
    }

    fn on_latency_probe(&mut self, now: SimTime) {
        if self.gateway.is_powered() && self.is_isp_up(now) {
            // Probe through the *live* uplink: pings queue behind whatever
            // bulk traffic has the CPE buffer, so loaded RTT shows the
            // bufferbloat the paper blames for §6.2's pathologies.
            if let Some(record) = firmware::latency::probe_latency(
                self.gateway.id,
                now,
                &mut self.up_link,
                &self.wan,
                &mut self.rng_probe,
            ) {
                self.emit(now, Record::Latency(record));
            }
        }
        let next = now + SimDuration::from_hours(1);
        if next < self.windows.span.end {
            self.queue.schedule(next, Ev::LatencyProbe);
        }
    }

    /// The gateway's STUN-style NAT-type experiment (RFC 3489 Tests 1–3
    /// against two simulated servers), run through the *live* translation
    /// chain — home NAT plus the CGN hop when fronted — so the classified
    /// type and the CGN tell (mapped address ≠ WAN address) are mechanical
    /// facts of real state, never labels copied from the plan.
    fn on_nat_probe(&mut self, now: SimTime) {
        if self.gateway.is_powered() && self.is_isp_up(now) {
            let local = Endpoint::new(std::net::Ipv4Addr::new(192, 168, 1, 1), 54_320);
            let outcome = {
                let mut chain = NatChain::new(&mut self.gateway.nat, self.cgn_hop.as_mut());
                natprobe::classify(&mut chain, now, local, &STUN_SERVERS)
            };
            match outcome {
                Some(out) => {
                    self.metrics.cgn.probes += 1;
                    let rec = NatProbeRecord {
                        router: self.gateway.id,
                        at: now,
                        nat_type: out.nat_type,
                        mapped_ip_hash: natprobe::ip_hash(out.mapped.addr),
                        mapped_port: out.mapped.port,
                        cgn_detected: out.mapped.addr != self.cfg.wan_addr,
                    };
                    self.emit(now, Record::NatProbe(rec));
                }
                // The CGN hop refused the binding (no leased port block):
                // the probe packets never left the access network.
                None => self.metrics.cgn.probes_blocked += 1,
            }
        }
        let next = now + SimDuration::from_hours(12);
        if next < self.windows.span.end {
            self.queue.schedule(next, Ev::NatProbe);
        }
    }

    /// One scheduled hole-punch trial: classify the local side live, build
    /// the synthetic peer stack the plan prescribes, and run the
    /// simultaneous-open mechanics through both translation paths.
    fn on_punch_trial(&mut self, now: SimTime, idx: u32) {
        let Some(plan) = self.cgn_plan else { return };
        let trial = &plan.punches[idx as usize];
        if !self.gateway.is_powered() || !self.is_isp_up(now) {
            return;
        }
        let local = Endpoint::new(std::net::Ipv4Addr::new(192, 168, 1, 1), 54_320);
        let introducer = Endpoint::new(STUN_SERVERS.primary, STUN_SERVERS.port);
        let mut peer = SyntheticPeer::new(trial.peer_behavior);
        let peer_local = peer.local;
        let result = {
            let mut chain = NatChain::new(&mut self.gateway.nat, self.cgn_hop.as_mut());
            let local_type =
                natprobe::classify(&mut chain, now, local, &STUN_SERVERS).map(|o| o.nat_type);
            local_type.and_then(|lt| {
                let mut peer_path = peer.path();
                run_trial(now, &mut chain, local, &mut peer_path, peer_local, introducer)
                    .map(|success| (lt, success))
            })
        };
        match result {
            Some((local_type, success)) => {
                self.metrics.cgn.punch_trials += 1;
                if success {
                    self.metrics.cgn.punch_success += 1;
                }
                let peer_type = trial.peer_behavior.map_or(NatType::FullCone, |b| b.nat_type());
                let rec = PunchTrialRecord {
                    router: self.gateway.id,
                    at: now,
                    peer: trial.peer,
                    local_type,
                    peer_type,
                    success,
                };
                self.emit(now, Record::PunchTrial(rec));
            }
            // The local chain could not even rendezvous (no leased block):
            // the trial is a blocked probe, not a punch failure.
            None => self.metrics.cgn.probes_blocked += 1,
        }
    }

    fn on_census(&mut self, now: SimTime) {
        if self.windows.devices.contains(now) && self.gateway.is_powered() && self.is_isp_up(now)
        {
            let census = Record::DeviceCensus(self.gateway.census(now));
            self.emit(now, census);
            // Per-device association reports with anonymized MACs.
            let anonymizer = Anonymizer::new(
                DetRng::new(self.rng_presence.seed()).derive("assoc-key").seed(),
                [],
            );
            for (idx, device) in self.cfg.devices.iter().enumerate() {
                if !self.gateway.is_connected(device.mac) {
                    continue;
                }
                let medium = match (device.attachment, self.device_state[idx].band) {
                    (Attachment::Wired, _) => Medium::Wired,
                    (_, Some(Band::Ghz5)) => Medium::Wireless5,
                    _ => Medium::Wireless24,
                };
                self.emit(
                    now,
                    Record::Association(AssociationRecord {
                        router: self.gateway.id,
                        at: now,
                        device: anonymizer.mac(device.mac),
                        medium,
                    }),
                );
            }
        }
        let next = now + SimDuration::from_hours(1);
        if next < self.windows.devices.end {
            self.queue.schedule(next, Ev::Census);
        }
    }

    fn on_scan_slot(&mut self, now: SimTime) {
        if self.windows.wifi.contains(now) && self.gateway.is_powered() {
            let anonymizer = Anonymizer::new(0xB155_CAFE, []);
            for band in Band::ALL {
                if let Some((record, dropped)) = self.gateway.run_scan_slot(
                    now,
                    band,
                    &self.cfg.neighborhood,
                    &anonymizer,
                    &mut self.rng_scan,
                ) {
                    self.emit(now, Record::WifiScan(record));
                    // Knocked-off stations reassociate shortly.
                    for mac in dropped {
                        if let Some(idx) =
                            self.cfg.devices.iter().position(|d| d.mac == mac)
                        {
                            let delay =
                                SimDuration::from_secs(self.rng_scan.uniform_int(20, 180));
                            self.queue.schedule(now + delay, Ev::Reassociate { device: idx });
                        }
                    }
                }
            }
        }
        let next = now + SimDuration::from_mins(firmware::gateway::SCAN_INTERVAL_MINS);
        if next < self.windows.wifi.end {
            self.queue.schedule(next, Ev::ScanSlot);
        }
    }

    fn on_reassociate(&mut self, now: SimTime, device: usize) {
        if !self.gateway.is_powered() || !self.device_state[device].online {
            return;
        }
        self.attach(device, now);
    }

    /// Attach an online device to the gateway on its medium. The device
    /// DHCPs on join and announces itself with a gratuitous ARP, which the
    /// gateway's neighbor table learns.
    fn attach(&mut self, idx: usize, now: SimTime) {
        let device = &self.cfg.devices[idx];
        match device.attachment {
            Attachment::Wired => {
                self.gateway.connect_wired(device.mac);
            }
            Attachment::Wireless { dual_band } => {
                let band = *self.device_state[idx].band.get_or_insert_with(|| {
                    if dual_band && self.rng_presence.chance(0.75) {
                        Band::Ghz5
                    } else {
                        Band::Ghz24
                    }
                });
                self.gateway.associate(band, device.mac);
            }
        }
        let mac = self.cfg.devices[idx].mac;
        if let Ok(addr) = self.gateway.dhcp.request(now, mac) {
            self.gateway.observe_gratuitous_arp(now, mac, addr);
        }
    }

    fn detach(&mut self, idx: usize) {
        let device = &self.cfg.devices[idx];
        match device.attachment {
            Attachment::Wired => self.gateway.disconnect_wired(device.mac),
            Attachment::Wireless { .. } => self.gateway.disassociate(device.mac),
        }
        self.device_state[idx].band = None;
    }

    fn on_presence_slot(&mut self, now: SimTime) {
        if self.gateway.is_powered() {
            let activity = self
                .cfg
                .diurnal
                .activity(now, self.cfg.availability.utc_offset_hours)
                .min(1.3);
            for idx in 0..self.cfg.devices.len() {
                let device = &self.cfg.devices[idx];
                if device.always_connected {
                    if !self.device_state[idx].online {
                        self.device_state[idx].online = true;
                    }
                    if !self.gateway.is_connected(device.mac) {
                        self.attach(idx, now);
                    }
                    continue;
                }
                let presence_factor = self.cfg.country.environment().presence_factor;
                let p_on = (device.presence_propensity() * activity * presence_factor)
                    .clamp(0.02, 0.95);
                let state = self.device_state[idx];
                // A sluggish two-state chain: transitions are damped so
                // devices stay online/offline for hours, not minutes.
                if state.online {
                    if self.rng_presence.chance(0.30 * (1.0 - p_on)) {
                        self.device_state[idx].online = false;
                        self.detach(idx);
                    }
                } else if self.rng_presence.chance(0.30 * p_on) {
                    self.device_state[idx].online = true;
                    self.attach(idx, now);
                }
            }
        }
        self.queue.schedule(now + SimDuration::from_mins(10), Ev::PresenceSlot);
    }

    fn ephemeral(&mut self) -> u16 {
        self.ephemeral_port = if self.ephemeral_port >= 60_000 {
            20_000
        } else {
            self.ephemeral_port + 1
        };
        self.ephemeral_port
    }

    fn on_session_arrival(&mut self, now: SimTime) {
        // Schedule the next arrival first (non-homogeneous Poisson via
        // per-arrival rate re-evaluation).
        let activity = self
            .cfg
            .diurnal
            .activity(now, self.cfg.availability.utc_offset_hours)
            .max(0.05);
        let rate_per_hour = self.cfg.session_rate_per_hour * activity;
        let mean_gap_secs = 3_600.0 / rate_per_hour;
        let gap = SimDuration::from_secs_f64(
            self.rng_session.exp(mean_gap_secs).clamp(2.0, 4.0 * 3_600.0),
        );
        let next = now + gap;
        if next < self.windows.traffic.end {
            self.queue.schedule(next, Ev::SessionArrival);
        }
        if !self.gateway.is_powered()
            || !self.is_isp_up(now)
            || !self.windows.traffic.contains(now)
        {
            return;
        }
        // The scientific uploader keeps a permanent bulk upload alive.
        if self.cfg.quirk == Some(Quirk::ScientificUploader) && !self.uploader_active {
            self.start_uploader_flow(now);
        }
        // Pick an online device by usage weight.
        let online: Vec<usize> = (0..self.cfg.devices.len())
            .filter(|&i| self.device_state[i].online)
            .collect();
        if online.is_empty() {
            return;
        }
        let weights: Vec<f64> =
            online.iter().map(|&i| self.cfg.devices[i].usage_weight.max(1e-4)).collect();
        let idx = online[self.rng_session.weighted_index(&weights)];
        let device = &self.cfg.devices[idx];
        // Pick the app class from the device's mix.
        let mix = device.app_mix();
        let mix_weights: Vec<f64> = mix.iter().map(|(_, w)| *w).collect();
        let kind = mix[self.rng_session.weighted_index(&mix_weights)].0;
        let profile = netstack::sample_session(kind, &mut self.rng_session);
        // Cloud-sync clients of the era auto-throttled uploads to ~70% of
        // the available uplink (Dropbox's "limit automatically" default),
        // so they rarely saturate the CPE queue.
        let up_cap = if kind == AppKind::CloudSync {
            let throttle = self.cfg.up_link.rate_bps * 7 / 10;
            Some(profile.rate_cap_up_bps.map_or(throttle, |c| c.min(throttle)))
        } else {
            profile.rate_cap_up_bps
        };
        self.start_flow(
            now,
            idx,
            kind,
            profile.bytes_down,
            profile.bytes_up,
            profile.rate_cap_bps,
            up_cap,
        );
    }

    fn start_uploader_flow(&mut self, now: SimTime) {
        // Fig 16a's household: an unbounded upstream transfer from the
        // dominant device. Fig 16b's variant only uploads in the evening.
        let evening_only = self.cfg.id.0 % 2 == 1;
        if evening_only {
            let local_hour = now
                .to_local(self.cfg.availability.utc_offset_hours)
                .hour_of_day_f64();
            if !(16.0..23.5).contains(&local_hour) {
                return;
            }
        }
        let bytes_up = if evening_only {
            4_000_000_000 // a nightly multi-gigabyte batch
        } else {
            u64::MAX / 4 // effectively endless
        };
        // Control traffic downstream is negligible (scp acks).
        self.start_flow(now, 0, AppKind::BulkUpload, 500_000, bytes_up, None, None);
        self.uploader_active = true;
    }

    #[allow(clippy::too_many_arguments)]
    fn start_flow(
        &mut self,
        now: SimTime,
        device_idx: usize,
        kind: AppKind,
        bytes_down: u64,
        bytes_up: u64,
        rate_cap_bps: Option<u64>,
        rate_cap_up_bps: Option<u64>,
    ) {
        let device: &Device = &self.cfg.devices[device_idx];
        // Resolve the destination through the gateway's resolver; the
        // monitor observes the response when it goes upstream.
        let domain_idx = self.cfg.taste.pick_domain(kind, &mut self.rng_session);
        let info = self.universe.get(domain_idx);
        self.dns_id = self.dns_id.wrapping_add(1);
        let (response, upstream) =
            self.gateway
                .resolver
                .lookup(now, self.zone, self.dns_id, &info.name);
        let response = match response {
            Some(r) => r,
            None => return, // NXDOMAIN: nothing to connect to
        };
        let addr = match response.address() {
            Some(a) => a,
            None => return,
        };
        if upstream {
            // The response crosses the gateway as a real wire image; parse
            // it back as the capture path would. The scratch buffer is
            // reused across lookups, so steady state allocates nothing.
            self.dns_wire_buf.clear();
            response.emit_into(&mut self.dns_wire_buf);
            if let Ok(parsed) = simnet::dns::DnsResponse::parse(&self.dns_wire_buf) {
                if let Some(monitor) = self.monitor.as_mut() {
                    monitor.on_dns_response(now, device.mac, &parsed);
                }
            }
        }
        let lan_addr = match self.gateway.dhcp.request(now, device.mac) {
            Ok(a) => a,
            Err(_) => return, // pool exhausted: the device cannot connect
        };
        // Relayed traffic keeps the neighbor entry fresh.
        self.gateway.neighbors.refresh(now, lan_addr);
        let local = Endpoint::new(lan_addr, self.ephemeral());
        let remote = Endpoint::new(addr, kind.server_port());
        let five_tuple = simnet::packet::FiveTuple {
            proto: kind.protocol(),
            src: local,
            dst: remote,
        };
        let xlate = match self.gateway.nat.translate_outbound(now, five_tuple) {
            Ok(x) => x,
            Err(_) => return, // NAT exhausted
        };
        // CGN-fronted homes cross the carrier hop too: with no leased port
        // block (an exhaustion gap between leases) the session never
        // reaches the Internet.
        if let Some(hop) = self.cgn_hop.as_mut() {
            if hop.translate_outbound(now, xlate.wan_flow).is_err() {
                self.metrics.cgn.session_blocked += 1;
                return;
            }
        }
        if kind.protocol() == simnet::packet::IpProtocol::Tcp {
            // The connection opens with a real three-way handshake; the
            // gateway classifies the segments as they cross it (this is
            // what makes a "connection" in the Traffic data set a
            // mechanical fact rather than a label).
            let rtt = self.cfg.wan_transit * 2u64;
            let trace = netstack::handshake::open_connection(
                now,
                local,
                remote,
                rtt,
                &mut self.rng_session,
            );
            debug_assert_eq!(
                trace
                    .segments
                    .first()
                    .and_then(|(_, wire)| netstack::handshake::classify(wire).ok()),
                Some(netstack::handshake::SegmentKind::Syn),
                "a new connection must open with a SYN"
            );
        }
        let flow = Flow {
            id: self.flows.next_id(),
            device: device.mac,
            local,
            remote,
            domain: info.name.clone(),
            kind,
            started: now,
            remaining_down: bytes_down.max(1),
            remaining_up: bytes_up,
            rate_cap_bps,
            rate_cap_up_bps,
            saturated_ticks: 0,
        };
        if let Some(monitor) = self.monitor.as_mut() {
            monitor.on_flow_start(&flow);
        }
        self.flows.start(flow);
        if !self.tick_scheduled {
            self.tick_scheduled = true;
            self.queue.schedule(now + SimDuration::from_secs(1), Ev::TrafficTick);
        }
    }

    fn on_traffic_tick(&mut self, now: SimTime) {
        self.tick_scheduled = false;
        if self.flows.active_count() == 0 {
            return;
        }
        if !self.gateway.is_powered() {
            // Power-off already aborted the flows; nothing to do.
            return;
        }
        let wireless_cap = self
            .gateway
            .radio_24
            .per_station_throughput_bps(&self.cfg.neighborhood, 1);
        let down_bps = self.cfg.down_link.rate_bps;
        let up_bps = self.cfg.up_link.rate_bps;
        let outcome = if self.is_isp_up(now) {
            self.flows.tick(
                SimDuration::from_secs(1),
                down_bps,
                up_bps,
                Some(wireless_cap),
                self.cfg.up_link.queue_limit_bytes,
            )
        } else {
            // ISP down: nothing moves, flows stall.
            netstack::TickOutcome::default()
        };
        let window = now.align_down(SimDuration::from_secs(1));
        let mut drained_up = 0;
        let mut skew_from = None;
        if let Some(monitor) = self.monitor.as_mut() {
            for progress in &outcome.progress {
                drained_up += progress.bytes_up;
                monitor.on_flow_progress(window, progress);
            }
            let burst = outcome.total_up_offered.saturating_sub(drained_up);
            monitor.add_uplink_burst(window, burst);
            for flow in &outcome.completed {
                monitor.on_flow_end(now, flow.id);
            }
        }
        if !outcome.completed.is_empty() {
            self.metrics.flows.record_completions(now, &outcome.completed);
        }
        if let Some(monitor) = self.monitor.as_mut() {
            if !outcome.completed.is_empty() {
                skew_from = Some(self.out.len());
                self.out.extend(monitor.drain());
            }
        }
        if let Some(from) = skew_from {
            self.apply_skew_from(now, from);
        }
        if self.uploader_active
            && outcome.completed.iter().any(|f| f.kind == AppKind::BulkUpload)
        {
            self.uploader_active = false;
        }
        if self.flows.active_count() > 0 {
            self.tick_scheduled = true;
            self.queue.schedule(now + SimDuration::from_secs(1), Ev::TrafficTick);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyWindows;
    use collector::windows::Window;
    use household::Country;

    fn short_windows(days: u64) -> StudyWindows {
        StudyWindows::scaled(Window {
            start: SimTime::EPOCH,
            end: SimTime::EPOCH + SimDuration::from_days(days),
        })
    }

    fn run_home(country: Country, consent_override: Option<bool>, days: u64) -> collector::Datasets {
        let universe = DomainUniverse::standard();
        let zone = universe.build_zone();
        let windows = short_windows(days);
        let root = DetRng::new(99);
        let mut cfg = HomeConfig::sample(household::HomeId(1), country, &root.derive("h"));
        if let Some(consent) = consent_override {
            cfg.traffic_consent = consent;
        }
        let collector = Collector::new();
        collector.register(collector::RouterMeta {
            router: RouterId(1),
            country,
            traffic_consent: cfg.traffic_consent,
        });
        let sim = HomeSim::new(SimParams {
            cfg: &cfg,
            universe: &universe,
            zone: &zone,
            windows: &windows,
            seed: 42,
            reliable_upload: false,
            faults: None,
            cgn: None,
        });
        sim.run(&collector);
        collector.snapshot()
    }

    #[test]
    fn us_home_produces_all_datasets() {
        let data = run_home(Country::UnitedStates, Some(true), 20);
        assert!(!data.heartbeats.is_empty(), "heartbeats missing");
        let log = &data.heartbeats[&RouterId(1)];
        assert!(log.total_heartbeats() > 10_000, "got {}", log.total_heartbeats());
        assert!(!data.uptime.is_empty(), "uptime missing");
        assert!(!data.capacity.is_empty(), "capacity missing");
        assert!(!data.devices.is_empty(), "census missing");
        assert!(!data.wifi.is_empty(), "wifi scans missing");
        assert!(!data.associations.is_empty(), "associations missing");
        assert!(!data.flows.is_empty(), "flows missing");
        assert!(!data.dns.is_empty(), "dns samples missing");
        assert!(!data.packet_stats.is_empty(), "packet stats missing");
    }

    #[test]
    fn non_consenting_home_has_no_traffic_records() {
        let data = run_home(Country::UnitedStates, Some(false), 10);
        assert!(data.flows.is_empty());
        assert!(data.dns.is_empty());
        assert!(data.packet_stats.is_empty());
        assert!(data.macs.is_empty());
        // But the consent-free sets are all there.
        assert!(!data.devices.is_empty());
        assert!(!data.wifi.is_empty());
    }

    #[test]
    fn always_on_us_home_has_high_coverage() {
        let data = run_home(Country::UnitedStates, Some(false), 20);
        let log = &data.heartbeats[&RouterId(1)];
        let w = Window {
            start: SimTime::EPOCH,
            end: SimTime::EPOCH + SimDuration::from_days(20),
        };
        let cov = log.coverage(w.start, w.end);
        assert!(cov > 0.9, "US coverage {cov}");
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_home(Country::UnitedStates, Some(true), 8);
        let b = run_home(Country::UnitedStates, Some(true), 8);
        assert_eq!(a.heartbeats[&RouterId(1)], b.heartbeats[&RouterId(1)]);
        assert_eq!(a.flows.len(), b.flows.len());
        assert_eq!(a.devices, b.devices);
        assert_eq!(a.capacity.len(), b.capacity.len());
        for (x, y) in a.capacity.iter().zip(&b.capacity) {
            assert_eq!(x.down_bps, y.down_bps);
        }
    }

    #[test]
    fn capacity_estimates_track_configured_link() {
        let data = run_home(Country::UnitedStates, Some(false), 20);
        let universe = DomainUniverse::standard();
        let _ = universe;
        let root = DetRng::new(99);
        let cfg =
            HomeConfig::sample(household::HomeId(1), Country::UnitedStates, &root.derive("h"));
        for rec in &data.capacity {
            let err = (rec.down_bps as f64 - cfg.down_link.rate_bps as f64).abs()
                / cfg.down_link.rate_bps as f64;
            assert!(err < 0.10, "estimate {} vs {}", rec.down_bps, cfg.down_link.rate_bps);
        }
    }

    #[test]
    fn census_counts_match_association_reports() {
        let data = run_home(Country::UnitedStates, Some(false), 20);
        for census in &data.devices {
            let assoc = data
                .associations
                .iter()
                .filter(|a| a.at == census.at)
                .count() as u32;
            assert_eq!(census.total(), assoc, "census vs associations at {}", census.at);
        }
    }
}
