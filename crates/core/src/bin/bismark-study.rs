//! `bismark-study` — the command-line front end of the reproduction.
//!
//! ```text
//! bismark-study run   [--seed N] [--days D | --full] [--homes H] [--threads T]
//!                     [--stream] [--window DUR]
//!                     [--spill-budget BYTES] [--spill-dir DIR]
//!                     [--faults SCENARIO] [--cgn SCENARIO]
//!                     [--report FILE] [--export FILE]
//!                     [--metrics FILE] [--metrics-text] [--validate]
//! bismark-study list-figures
//! ```
//!
//! `run` simulates the deployment, prints (or writes) the full per-figure
//! report, optionally exports the PII-free public data release as JSON
//! (exactly what the paper released: everything except Traffic), and
//! optionally validates the heartbeat instrument against ground truth.
//! `--homes H` scales the deployment generatively (country mix preserved)
//! past the paper's 126 homes; it is a quick-mode axis and cannot be
//! combined with `--full`, whose 197-day study is pinned to Table 1.
//! `--spill-budget BYTES` caps collector memory: past the budget, shards
//! seal their columnar tables into disk segments (under `--spill-dir`, or
//! the OS temp dir) and the snapshot k-way-merges them back — reports are
//! byte-identical to the unbounded run. `BYTES` takes an optional binary
//! suffix: `4GiB`, `512MiB`, `64KiB`, or a plain byte count.
//! `--cgn SCENARIO` puts part of the deployment behind a carrier-grade
//! NAT tier (`isp-mix`, `all-cgn`, or `port-starved`) and arms the
//! firmware's STUN-style NAT-type and hole-punch experiments; it cannot
//! be combined with `--faults` (one injected experiment layer at a time).
//! `--stream` runs in continuous-operation mode: the collector's sealed
//! window deltas fold into incremental per-figure state every `--window`
//! of virtual time (default `1d`; `DUR` takes `90m`, `36h`, or `2d`
//! forms), the `--report` file is rewritten as a rolling report at each
//! boundary, and `--metrics` additionally writes one gauges-only manifest
//! per window at a derived path (`metrics.w0001.json`, …). After the
//! final window, report and exports are byte-identical to a batch run.
//! `--metrics` writes the deterministic run manifest (`metrics.json`);
//! `--metrics-text` prints the human-readable summary — including the
//! non-deterministic wall-clock host profile — to stderr.
//!
//! Flags are parsed strictly: an unrecognized flag (or a flag missing its
//! value) is an error, not a silent no-op.

use bismark::study::{run_study, run_study_stream, StudyConfig};
use bismark::validation;
use simnet::time::SimDuration;

fn usage() -> ! {
    eprintln!(
        "usage:\n  bismark-study run [--seed N] [--days D | --full] [--homes H] [--threads T] \\\n                    [--stream] [--window DUR[m|h|d]] \\\n                    [--spill-budget BYTES[KiB|MiB|GiB]] [--spill-dir DIR] \\\n                    [--faults lossy-wan|collector-flap|router-churn] \\\n                    [--cgn isp-mix|all-cgn|port-starved] \\\n                    [--report FILE] [--export FILE] \\\n                    [--metrics FILE] [--metrics-text] [--validate]\n  bismark-study list-figures"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("list-figures") if args.len() == 1 => list_figures(),
        _ => usage(),
    }
}

/// Everything `run` accepts, resolved from the command line.
#[derive(Debug, Default, PartialEq, Eq)]
struct RunOpts {
    seed: u64,
    days: u64,
    full: bool,
    homes: Option<u32>,
    threads: Option<usize>,
    stream: bool,
    window: Option<SimDuration>,
    spill_budget: Option<u64>,
    spill_dir: Option<String>,
    faults: Option<String>,
    cgn: Option<String>,
    report: Option<String>,
    export: Option<String>,
    metrics: Option<String>,
    metrics_text: bool,
    validate: bool,
}

/// Strict flag parser: every token must be a known flag (with its value
/// where one is required). Unknown or malformed flags are reported by name
/// so a typo like `--export=x.json` or `--dya 7` fails loudly instead of
/// silently running with defaults.
fn parse_run(args: &[String]) -> Result<RunOpts, String> {
    fn value<'a>(
        flag: &str,
        it: &mut std::slice::Iter<'a, String>,
    ) -> Result<&'a String, String> {
        it.next().ok_or_else(|| format!("flag {flag} requires a value"))
    }
    fn parse_num<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, String> {
        raw.parse().map_err(|_| format!("flag {flag} expects a number, got {raw:?}"))
    }
    /// A byte count with an optional binary suffix: `4GiB`, `512MiB`,
    /// `64KiB`, `1024B`, or a plain number of bytes.
    fn parse_bytes(flag: &str, raw: &str) -> Result<u64, String> {
        let (digits, unit) = match raw.find(|c: char| !c.is_ascii_digit()) {
            Some(split) => raw.split_at(split),
            None => (raw, ""),
        };
        let n: u64 = digits
            .parse()
            .map_err(|_| format!("flag {flag} expects a byte count, got {raw:?}"))?;
        let scale: u64 = match unit {
            "" | "B" => 1,
            "KiB" => 1 << 10,
            "MiB" => 1 << 20,
            "GiB" => 1 << 30,
            other => {
                return Err(format!(
                    "flag {flag} has unknown unit {other:?} in {raw:?} (use B, KiB, MiB, or GiB)"
                ))
            }
        };
        n.checked_mul(scale)
            .ok_or_else(|| format!("flag {flag} overflows u64 bytes: {raw:?}"))
    }

    /// A virtual-time duration with a required unit: `90m`, `36h`, `2d`.
    fn parse_duration(flag: &str, raw: &str) -> Result<SimDuration, String> {
        let (digits, unit) = match raw.find(|c: char| !c.is_ascii_digit()) {
            Some(split) => raw.split_at(split),
            None => {
                return Err(format!(
                    "flag {flag} expects a duration with a unit (90m, 36h, 2d), got {raw:?}"
                ))
            }
        };
        let n: u64 = digits
            .parse()
            .map_err(|_| format!("flag {flag} expects a duration, got {raw:?}"))?;
        let dur = match unit {
            "m" => SimDuration::from_mins(n),
            "h" => SimDuration::from_hours(n),
            "d" => SimDuration::from_days(n),
            other => {
                return Err(format!(
                    "flag {flag} has unknown unit {other:?} in {raw:?} (use m, h, or d)"
                ))
            }
        };
        if dur.as_micros() == 0 {
            return Err(format!("flag {flag} expects a positive duration, got {raw:?}"));
        }
        Ok(dur)
    }

    let mut opts = RunOpts { seed: 2013, days: 30, ..RunOpts::default() };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => opts.seed = parse_num(arg, value(arg, &mut it)?)?,
            "--days" => opts.days = parse_num(arg, value(arg, &mut it)?)?,
            "--full" => opts.full = true,
            "--homes" => opts.homes = Some(parse_num(arg, value(arg, &mut it)?)?),
            "--threads" => opts.threads = Some(parse_num(arg, value(arg, &mut it)?)?),
            "--stream" => opts.stream = true,
            "--window" => opts.window = Some(parse_duration(arg, value(arg, &mut it)?)?),
            "--spill-budget" => opts.spill_budget = Some(parse_bytes(arg, value(arg, &mut it)?)?),
            "--spill-dir" => opts.spill_dir = Some(value(arg, &mut it)?.clone()),
            "--faults" => opts.faults = Some(value(arg, &mut it)?.clone()),
            "--cgn" => opts.cgn = Some(value(arg, &mut it)?.clone()),
            "--report" => opts.report = Some(value(arg, &mut it)?.clone()),
            "--export" => opts.export = Some(value(arg, &mut it)?.clone()),
            "--metrics" => opts.metrics = Some(value(arg, &mut it)?.clone()),
            "--metrics-text" => opts.metrics_text = true,
            "--validate" => opts.validate = true,
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if opts.homes == Some(0) {
        return Err("flag --homes expects at least 1 home, got 0".to_string());
    }
    if opts.homes.is_some() && opts.full {
        return Err(
            "flag --homes cannot be combined with --full (the 197-day full study is pinned to the 126-home Table 1 deployment)"
                .to_string(),
        );
    }
    if opts.cgn.is_some() && opts.faults.is_some() {
        return Err(
            "flag --cgn cannot be combined with --faults (arm one injected experiment layer at a time)"
                .to_string(),
        );
    }
    if opts.spill_dir.is_some() && opts.spill_budget.is_none() {
        return Err(
            "flag --spill-dir requires --spill-budget (a directory without a budget never spills)"
                .to_string(),
        );
    }
    if opts.window.is_some() && !opts.stream {
        return Err(
            "flag --window requires --stream (the window cadence only exists in streaming mode)"
                .to_string(),
        );
    }
    Ok(opts)
}

fn run(args: &[String]) {
    let opts = parse_run(args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        usage()
    });

    // Fresh metric values for this run (handles and key set persist).
    obs::reset();

    let mut config =
        if opts.full { StudyConfig::full(opts.seed) } else { StudyConfig::quick(opts.seed, opts.days) };
    if let Some(homes) = opts.homes {
        config.homes = homes;
    }
    if let Some(threads) = opts.threads {
        config.threads = threads;
    }
    if let Some(scenario) = &opts.faults {
        config.faults = Some(scenario.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2)
        }));
    }
    if let Some(scenario) = &opts.cgn {
        config.cgn = Some(scenario.parse().unwrap_or_else(|e| {
            eprintln!("flag --cgn: {e}");
            std::process::exit(2)
        }));
    }
    if let Some(budget_bytes) = opts.spill_budget {
        config.spill = Some(collector::SpillConfig {
            budget_bytes,
            dir: opts.spill_dir.as_ref().map(std::path::PathBuf::from),
        });
    }

    eprintln!(
        "running seed {} over {:.0} virtual days across {} homes on {} thread{}...",
        opts.seed,
        config.windows.span.duration().as_days_f64(),
        config.homes,
        config.threads,
        if config.threads == 1 { "" } else { "s" }
    );
    // simlint: allow(wall-clock) — CLI progress timing printed to stderr; no simulation state depends on it
    let started = std::time::Instant::now();
    let (output, stream_report) = if opts.stream {
        let cadence = opts.window.unwrap_or_else(|| SimDuration::from_days(1));
        let streamed = run_study_stream(&config, cadence, |w| {
            // Rolling report: the file is rewritten at every boundary, so
            // an operator tailing it always sees the freshest full report.
            if let Some(path) = &opts.report {
                std::fs::write(path, w.report.render(w.datasets))
                    .expect("write rolling report file");
            }
            // Per-window manifest at a derived path: gauges only, built
            // from the accumulated snapshot, so it is as deterministic as
            // the datasets themselves.
            if let Some(path) = &opts.metrics {
                let manifest = window_manifest(w, opts.seed, &config);
                std::fs::write(window_metrics_path(path, w.index), manifest.to_json())
                    .expect("write window metrics file");
            }
            eprintln!(
                "window {:>4} sealed at day {:>6.2}: fold {:.3}s, report {:.3}s",
                w.index + 1,
                w.window.end.since(config.windows.span.start).as_days_f64(),
                w.update_cost.as_secs_f64(),
                w.finalize_cost.as_secs_f64()
            );
        });
        eprintln!(
            "stream: {} windows at a {:.0}-minute cadence",
            streamed.windows_run,
            cadence.as_secs_f64() / 60.0
        );
        (streamed.study, Some(streamed.report))
    } else {
        (run_study(&config), None)
    };
    eprintln!(
        "done in {:.1}s: {} records from {} routers",
        started.elapsed().as_secs_f64(),
        output.datasets.record_count(),
        output.datasets.heartbeats.len()
    );
    if let Some(stats) = &output.spill {
        eprintln!(
            "spill: {} segments, {:.1} MiB written, {:.1} MiB behind the merged datasets",
            stats.segments,
            stats.bytes_written as f64 / (1024.0 * 1024.0),
            output.datasets.spilled_bytes() as f64 / (1024.0 * 1024.0)
        );
        if let Some(e) = &stats.error {
            eprintln!("warning: spilling degraded to in-memory after an I/O error: {e}");
        }
    }
    if config.cgn.is_some() {
        let s = &output.cgn_plan.stats;
        eprintln!(
            "cgn: {} of {} homes fronted by {} boxes ({} pool addrs); {} block leases, \
             {} evictions, {} exhaustion events; {} NAT probes, {} punch trials collected",
            s.fronted_homes,
            config.homes,
            output.cgn_plan.boxes,
            s.pool_addrs,
            s.leases,
            s.evictions,
            s.exhaustion_events,
            output.datasets.nat_probes.len(),
            output.datasets.punch_trials.len()
        );
    }
    if config.faults.is_some() {
        let c = output.upload_counters;
        eprintln!(
            "faults: {} collector downtime windows, {} gap records; uploads {} accepted \
             ({} after retries), {} duplicates, {} rejected in downtime; {} heartbeats dropped",
            output.fault_plan.collector_downtime.len(),
            output.datasets.upload_gaps.len(),
            c.accepted,
            c.retried_accepted,
            c.duplicates,
            c.rejected,
            output.dropped_in_downtime
        );
    }

    // simlint: allow(wall-clock) — CLI progress timing printed to stderr; no simulation state depends on it
    let analyze_started = std::time::Instant::now();
    // Stream mode already has the rolling report — by construction (and
    // by the differential harness) identical to a batch recompute.
    let report = match stream_report {
        Some(report) => report,
        None => output.report(),
    };
    let rendered = report.render(&output.datasets);
    eprintln!(
        "phases: simulate {:.2}s / snapshot {:.2}s / analyze {:.2}s",
        output.timings.simulate.as_secs_f64(),
        output.timings.snapshot.as_secs_f64(),
        analyze_started.elapsed().as_secs_f64()
    );
    match &opts.report {
        Some(path) => {
            std::fs::write(path, &rendered).expect("write report file");
            eprintln!("report written to {path}");
        }
        None => println!("{rendered}"),
    }

    if let Some(path) = &opts.export {
        let json = collector::export::to_json(&output.datasets).expect("export serializes");
        std::fs::write(path, &json).expect("write export file");
        eprintln!(
            "public release ({} bytes, Traffic excluded) written to {path}",
            json.len()
        );
    }

    if opts.metrics.is_some() || opts.metrics_text {
        let mut manifest = obs::manifest::RunManifest::new(obs::snapshot());
        // Meta holds only run-describing strings so metrics.json stays
        // byte-identical across repeat runs (and across thread counts —
        // deliberately no timestamps, hostnames, or thread counts here).
        manifest.set_meta("schema", "bismark-metrics/1");
        manifest.set_meta("mode", if opts.full { "full" } else { "quick" });
        manifest.set_meta("seed", opts.seed.to_string());
        manifest.set_meta(
            "virtual_days",
            format!("{:.0}", config.windows.span.duration().as_days_f64()),
        );
        manifest.set_meta("homes", config.homes.to_string());
        manifest.set_meta("faults", opts.faults.as_deref().unwrap_or("none"));
        manifest.set_meta("cgn", opts.cgn.as_deref().unwrap_or("none"));
        if opts.stream {
            let cadence = opts.window.unwrap_or_else(|| SimDuration::from_days(1));
            manifest.set_meta("stream", format!("{:.0}m", cadence.as_secs_f64() / 60.0));
        }
        // Host facts (peak RSS) render only in the text summary; putting
        // them in meta would leak machine state into metrics.json.
        match peak_rss_bytes() {
            Some(peak) => {
                manifest.set_host("peak_rss_bytes", peak.to_string());
                manifest
                    .set_host("peak_rss_mib", format!("{:.1}", peak as f64 / (1024.0 * 1024.0)));
            }
            // Off Linux (or with procfs hidden) emit an explicit marker:
            // manifest-diffing tools must not misread absence as zero.
            None => manifest.set_host("peak_rss_bytes", "unavailable"),
        }
        manifest.set_host(
            "columnar_heap_bytes",
            output.datasets.columnar_heap_bytes().to_string(),
        );
        if let Some(stats) = &output.spill {
            manifest.set_host("spill_segments", stats.segments.to_string());
            manifest.set_host("spill_bytes_written", stats.bytes_written.to_string());
            manifest.set_host("spilled_bytes", output.datasets.spilled_bytes().to_string());
        }
        if let Some(path) = &opts.metrics {
            std::fs::write(path, manifest.to_json()).expect("write metrics file");
            eprintln!("metrics written to {path}");
        }
        if opts.metrics_text {
            eprint!("{}", manifest.to_text());
        }
    }

    if opts.validate {
        let v = validation::validate_availability(&output, opts.seed);
        eprintln!(
            "instrument validation over {} homes: mean coverage error {:.4}, mean downtime-count error {:.2}",
            v.homes.len(),
            v.mean_coverage_error,
            v.mean_downtime_count_error
        );
    }
}

/// Derived per-window manifest path: `metrics.json` → `metrics.w0001.json`
/// for the first window, counting from 1.
fn window_metrics_path(path: &str, index: u32) -> String {
    let tag = format!("w{:04}", index + 1);
    match path.rsplit_once('.') {
        // The `/` guard keeps a dot inside a directory name (`out.d/metrics`)
        // from being mistaken for an extension separator.
        Some((stem, ext)) if !stem.is_empty() && !ext.contains('/') => {
            format!("{stem}.{tag}.{ext}")
        }
        _ => format!("{path}.{tag}"),
    }
}

/// The gauges-only manifest for one sealed stream window: data-set sizes
/// from the accumulated snapshot (the same gauge keys the end-of-run
/// manifest carries), plus window-describing meta. No counters or
/// histograms — those accumulate on worker threads mid-run and only
/// settle at study end, so a per-window snapshot of them would not be
/// deterministic. Everything here derives from the datasets alone.
fn window_manifest(
    w: &bismark::study::StreamWindow<'_>,
    seed: u64,
    config: &StudyConfig,
) -> obs::manifest::RunManifest {
    let d = w.datasets;
    let heartbeats: u64 = d.heartbeats.values().map(|log| log.total_heartbeats()).sum();
    let mut gauges = std::collections::BTreeMap::new();
    for (key, value) in [
        ("dataset_heartbeat_records", heartbeats),
        ("dataset_uptime_records", d.uptime.len() as u64),
        ("dataset_capacity_records", d.capacity.len() as u64),
        ("dataset_device_census_records", d.devices.len() as u64),
        ("dataset_wifi_scan_records", d.wifi.len() as u64),
        ("dataset_packet_stat_records", d.packet_stats.len() as u64),
        ("dataset_flow_records", d.flows.len() as u64),
        ("dataset_dns_records", d.dns.len() as u64),
        ("dataset_mac_sighting_records", d.macs.len() as u64),
        ("dataset_association_records", d.associations.len() as u64),
        ("dataset_latency_records", d.latency.len() as u64),
        ("dataset_nat_probe_records", d.nat_probes.len() as u64),
        ("dataset_punch_trial_records", d.punch_trials.len() as u64),
        ("dataset_upload_gap_records", d.upload_gaps.len() as u64),
    ] {
        gauges.insert(key.to_string(), value);
    }
    let mut manifest =
        obs::manifest::RunManifest::new(obs::Snapshot { gauges, ..obs::Snapshot::default() });
    manifest.set_meta("schema", "bismark-metrics/1");
    manifest.set_meta("mode", "stream-window");
    manifest.set_meta("seed", seed.to_string());
    manifest.set_meta("window_index", (w.index + 1).to_string());
    manifest.set_meta(
        "window_end_day",
        format!("{:.2}", w.window.end.since(config.windows.span.start).as_days_f64()),
    );
    manifest
}

/// Peak resident-set size of this process in bytes, from `VmHWM` in
/// `/proc/self/status`. Returns `None` off Linux (or in sandboxes that hide
/// procfs) so the host section simply omits the line instead of failing.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    // Format: `VmHWM:    123456 kB`
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

fn list_figures() {
    let artifacts = [
        ("Table 1", "country classification (deployment)"),
        ("Table 2", "data-set summary"),
        ("Figure 3", "downtimes per day, developed vs developing (CDF)"),
        ("Figure 4", "downtime duration (CDF)"),
        ("Figure 5", "median downtimes vs per-capita GDP"),
        ("Figure 6", "availability timelines: always-on / appliance / flaky"),
        ("Table 3", "availability highlights"),
        ("Figure 7", "devices per home (CDF)"),
        ("Figure 8", "wired vs wireless devices by region"),
        ("Figure 9", "wireless stations per band"),
        ("Figure 10", "unique devices per band (CDF)"),
        ("Figure 11", "visible 2.4 GHz APs by region (CDF)"),
        ("Figure 12", "device manufacturer histogram"),
        ("Table 4", "infrastructure highlights"),
        ("Table 5", "always-connected devices"),
        ("Figure 13", "diurnal wireless device counts"),
        ("Figure 14", "one home's utilization vs capacity"),
        ("Figure 15", "p95 link utilization vs capacity"),
        ("Figure 16", "uplink oversaturation (bufferbloat)"),
        ("Figure 17", "per-device traffic shares"),
        ("Figure 18", "top-5/top-10 domains across homes"),
        ("Figure 19", "domain-rank volume/connection shares"),
        ("Figure 20", "per-device domain mixes"),
        ("Table 6", "usage highlights"),
    ];
    for (id, what) in artifacts {
        println!("{id:<10} {what}");
    }
}

#[cfg(test)]
mod tests {
    use super::{parse_run, window_metrics_path, RunOpts};
    use simnet::time::SimDuration;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_match_documented_values() {
        let opts = parse_run(&[]).unwrap();
        assert_eq!(opts, RunOpts { seed: 2013, days: 30, ..RunOpts::default() });
    }

    #[test]
    fn all_flags_round_trip() {
        let opts = parse_run(&strs(&[
            "--seed", "7", "--days", "20", "--homes", "500", "--threads", "2",
            "--spill-budget", "64MiB", "--spill-dir", "/tmp/spill",
            "--faults", "collector-flap", "--report", "r.txt", "--export", "e.json",
            "--metrics", "m.json", "--metrics-text", "--validate",
            "--stream", "--window", "36h",
        ]))
        .unwrap();
        assert_eq!(
            opts,
            RunOpts {
                seed: 7,
                days: 20,
                full: false,
                homes: Some(500),
                threads: Some(2),
                spill_budget: Some(64 << 20),
                spill_dir: Some("/tmp/spill".into()),
                faults: Some("collector-flap".into()),
                cgn: None,
                report: Some("r.txt".into()),
                export: Some("e.json".into()),
                metrics: Some("m.json".into()),
                metrics_text: true,
                validate: true,
                stream: true,
                window: Some(SimDuration::from_hours(36)),
            }
        );
    }

    #[test]
    fn spill_budget_accepts_binary_suffixes() {
        for (raw, bytes) in [
            ("4GiB", 4u64 << 30),
            ("512MiB", 512 << 20),
            ("64KiB", 64 << 10),
            ("1024B", 1024),
            ("123456", 123_456),
            ("0", 0),
        ] {
            let opts = parse_run(&strs(&["--spill-budget", raw])).unwrap();
            assert_eq!(opts.spill_budget, Some(bytes), "parsing {raw}");
        }
        assert_eq!(parse_run(&strs(&["--spill-budget", "4GiB"])).unwrap().spill_budget,
                   Some(4_294_967_296));
    }

    #[test]
    fn malformed_spill_budget_is_rejected_by_name() {
        for raw in ["lots", "4GB", "1.5GiB", "GiB", "-1", "99999999999GiB", "4 GiB"] {
            let err = parse_run(&strs(&["--spill-budget", raw])).unwrap_err();
            assert!(err.contains("--spill-budget"), "error should name the flag: {err}");
        }
        let err = parse_run(&strs(&["--spill-budget"])).unwrap_err();
        assert!(err.contains("--spill-budget"), "{err}");
    }

    #[test]
    fn spill_dir_without_budget_is_rejected_naming_both_flags() {
        let err = parse_run(&strs(&["--spill-dir", "/tmp/x"])).unwrap_err();
        assert!(err.contains("--spill-dir"), "{err}");
        assert!(err.contains("--spill-budget"), "{err}");
    }

    #[test]
    fn cgn_flag_round_trips() {
        let opts = parse_run(&strs(&["--cgn", "port-starved"])).unwrap();
        assert_eq!(opts.cgn, Some("port-starved".into()));
    }

    #[test]
    fn cgn_with_faults_is_rejected_naming_both_flags() {
        for args in [
            &["--cgn", "isp-mix", "--faults", "lossy-wan"][..],
            &["--faults", "lossy-wan", "--cgn", "isp-mix"][..],
        ] {
            let err = parse_run(&strs(args)).unwrap_err();
            assert!(err.contains("--cgn"), "{err}");
            assert!(err.contains("--faults"), "{err}");
        }
    }

    #[test]
    fn cgn_missing_value_is_an_error() {
        let err = parse_run(&strs(&["--cgn"])).unwrap_err();
        assert!(err.contains("--cgn"), "{err}");
    }

    #[test]
    fn zero_homes_is_rejected_by_name() {
        let err = parse_run(&strs(&["--homes", "0"])).unwrap_err();
        assert!(err.contains("--homes"), "error should name the flag: {err}");
    }

    #[test]
    fn non_numeric_homes_is_rejected_by_name() {
        let err = parse_run(&strs(&["--homes", "many"])).unwrap_err();
        assert!(err.contains("--homes"), "{err}");
        assert!(err.contains("many"), "{err}");
    }

    #[test]
    fn homes_and_full_together_are_rejected_by_name() {
        // Both orders: the conflict is checked after the parse loop.
        for args in [&["--homes", "500", "--full"][..], &["--full", "--homes", "500"][..]] {
            let err = parse_run(&strs(args)).unwrap_err();
            assert!(err.contains("--homes"), "{err}");
            assert!(err.contains("--full"), "{err}");
        }
    }

    #[test]
    fn unknown_flag_is_named_in_the_error() {
        let err = parse_run(&strs(&["--seed", "7", "--exprot", "e.json"])).unwrap_err();
        assert!(err.contains("--exprot"), "error should name the bad flag: {err}");
    }

    #[test]
    fn equals_style_flags_are_rejected() {
        // We only support space-separated values; `--seed=7` must not be
        // silently ignored.
        let err = parse_run(&strs(&["--seed=7"])).unwrap_err();
        assert!(err.contains("--seed=7"), "{err}");
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = parse_run(&strs(&["--report"])).unwrap_err();
        assert!(err.contains("--report"), "{err}");
        let err = parse_run(&strs(&["--days", "x"])).unwrap_err();
        assert!(err.contains("--days"), "{err}");
    }

    #[test]
    fn window_accepts_minute_hour_and_day_units() {
        for (raw, expected) in [
            ("90m", SimDuration::from_mins(90)),
            ("36h", SimDuration::from_hours(36)),
            ("2d", SimDuration::from_days(2)),
        ] {
            let opts = parse_run(&strs(&["--stream", "--window", raw])).unwrap();
            assert!(opts.stream);
            assert_eq!(opts.window, Some(expected), "parsing {raw}");
        }
    }

    #[test]
    fn stream_without_window_defaults_the_cadence() {
        // The cadence default (one day) is applied at run time, not parse
        // time: parsing alone leaves the option empty.
        let opts = parse_run(&strs(&["--stream"])).unwrap();
        assert!(opts.stream);
        assert_eq!(opts.window, None);
    }

    #[test]
    fn malformed_window_is_rejected_by_name() {
        // Unitless, zero-length, unknown unit, missing magnitude, missing
        // value: each error must name the flag so the operator can fix it.
        for raw in ["5", "0h", "5w", "h", "1.5h", ""] {
            let err = parse_run(&strs(&["--stream", "--window", raw])).unwrap_err();
            assert!(err.contains("--window"), "error should name the flag for {raw:?}: {err}");
        }
        let err = parse_run(&strs(&["--stream", "--window"])).unwrap_err();
        assert!(err.contains("--window"), "{err}");
    }

    #[test]
    fn window_without_stream_is_rejected_naming_both_flags() {
        for args in [&["--window", "6h"][..], &["--window", "6h", "--seed", "7"][..]] {
            let err = parse_run(&strs(args)).unwrap_err();
            assert!(err.contains("--window"), "{err}");
            assert!(err.contains("--stream"), "{err}");
        }
    }

    #[test]
    fn window_metrics_paths_interleave_the_window_tag() {
        assert_eq!(window_metrics_path("metrics.json", 0), "metrics.w0001.json");
        assert_eq!(window_metrics_path("out/m.json", 11), "out/m.w0012.json");
        // No extension (or a leading-dot name): the tag is appended so the
        // path stays alongside whatever the operator asked for.
        assert_eq!(window_metrics_path("metrics", 0), "metrics.w0001");
        assert_eq!(window_metrics_path(".metrics", 2), ".metrics.w0003");
    }
}
