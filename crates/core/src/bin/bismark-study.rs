//! `bismark-study` — the command-line front end of the reproduction.
//!
//! ```text
//! bismark-study run   [--seed N] [--days D | --full] [--threads T]
//!                     [--faults SCENARIO] [--report FILE] [--export FILE]
//!                     [--validate]
//! bismark-study list-figures
//! ```
//!
//! `run` simulates the deployment, prints (or writes) the full per-figure
//! report, optionally exports the PII-free public data release as JSON
//! (exactly what the paper released: everything except Traffic), and
//! optionally validates the heartbeat instrument against ground truth.

use bismark::study::{run_study, StudyConfig};
use bismark::validation;

fn usage() -> ! {
    eprintln!(
        "usage:\n  bismark-study run [--seed N] [--days D | --full] [--threads T] \\\n                    [--faults lossy-wan|collector-flap|router-churn] \\\n                    [--report FILE] [--export FILE] [--validate]\n  bismark-study list-figures"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("list-figures") => list_figures(),
        _ => usage(),
    }
}

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn run(args: &[String]) {
    let seed: u64 = arg_value(args, "--seed").map_or(2013, |v| v.parse().expect("--seed N"));
    let full = args.iter().any(|a| a == "--full");
    let days: u64 = arg_value(args, "--days").map_or(30, |v| v.parse().expect("--days D"));
    let mut config = if full { StudyConfig::full(seed) } else { StudyConfig::quick(seed, days) };
    if let Some(threads) = arg_value(args, "--threads") {
        config.threads = threads.parse().expect("--threads T");
    }
    if let Some(scenario) = arg_value(args, "--faults") {
        config.faults = Some(scenario.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2)
        }));
    }

    eprintln!(
        "running seed {seed} over {:.0} virtual days on {} thread{}...",
        config.windows.span.duration().as_days_f64(),
        config.threads,
        if config.threads == 1 { "" } else { "s" }
    );
    // simlint: allow(wall-clock) — CLI progress timing printed to stderr; no simulation state depends on it
    let started = std::time::Instant::now();
    let output = run_study(&config);
    eprintln!(
        "done in {:.1}s: {} records from {} routers",
        started.elapsed().as_secs_f64(),
        output.datasets.record_count(),
        output.datasets.heartbeats.len()
    );
    if config.faults.is_some() {
        let c = output.upload_counters;
        eprintln!(
            "faults: {} collector downtime windows, {} gap records; uploads {} accepted \
             ({} after retries), {} duplicates, {} rejected in downtime; {} heartbeats dropped",
            output.fault_plan.collector_downtime.len(),
            output.datasets.upload_gaps.len(),
            c.accepted,
            c.retried_accepted,
            c.duplicates,
            c.rejected,
            output.dropped_in_downtime
        );
    }

    // simlint: allow(wall-clock) — CLI progress timing printed to stderr; no simulation state depends on it
    let analyze_started = std::time::Instant::now();
    let report = output.report();
    let rendered = report.render(&output.datasets);
    eprintln!(
        "phases: simulate {:.2}s / snapshot {:.2}s / analyze {:.2}s",
        output.timings.simulate.as_secs_f64(),
        output.timings.snapshot.as_secs_f64(),
        analyze_started.elapsed().as_secs_f64()
    );
    match arg_value(args, "--report") {
        Some(path) => {
            std::fs::write(&path, &rendered).expect("write report file");
            eprintln!("report written to {path}");
        }
        None => println!("{rendered}"),
    }

    if let Some(path) = arg_value(args, "--export") {
        let json = collector::export::to_json(&output.datasets).expect("export serializes");
        std::fs::write(&path, &json).expect("write export file");
        eprintln!(
            "public release ({} bytes, Traffic excluded) written to {path}",
            json.len()
        );
    }

    if args.iter().any(|a| a == "--validate") {
        let v = validation::validate_availability(&output, seed);
        eprintln!(
            "instrument validation over {} homes: mean coverage error {:.4}, mean downtime-count error {:.2}",
            v.homes.len(),
            v.mean_coverage_error,
            v.mean_downtime_count_error
        );
    }
}

fn list_figures() {
    let artifacts = [
        ("Table 1", "country classification (deployment)"),
        ("Table 2", "data-set summary"),
        ("Figure 3", "downtimes per day, developed vs developing (CDF)"),
        ("Figure 4", "downtime duration (CDF)"),
        ("Figure 5", "median downtimes vs per-capita GDP"),
        ("Figure 6", "availability timelines: always-on / appliance / flaky"),
        ("Table 3", "availability highlights"),
        ("Figure 7", "devices per home (CDF)"),
        ("Figure 8", "wired vs wireless devices by region"),
        ("Figure 9", "wireless stations per band"),
        ("Figure 10", "unique devices per band (CDF)"),
        ("Figure 11", "visible 2.4 GHz APs by region (CDF)"),
        ("Figure 12", "device manufacturer histogram"),
        ("Table 4", "infrastructure highlights"),
        ("Table 5", "always-connected devices"),
        ("Figure 13", "diurnal wireless device counts"),
        ("Figure 14", "one home's utilization vs capacity"),
        ("Figure 15", "p95 link utilization vs capacity"),
        ("Figure 16", "uplink oversaturation (bufferbloat)"),
        ("Figure 17", "per-device traffic shares"),
        ("Figure 18", "top-5/top-10 domains across homes"),
        ("Figure 19", "domain-rank volume/connection shares"),
        ("Figure 20", "per-device domain mixes"),
        ("Table 6", "usage highlights"),
    ];
    for (id, what) in artifacts {
        println!("{id:<10} {what}");
    }
}
