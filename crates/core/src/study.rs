//! Study orchestration: instantiate the deployment, run every home
//! (in parallel), and collect the six data sets.

use crate::homesim::{HomeSim, SimParams};
use cgn::{CgnPlan, CgnScenario};
use collector::windows::{self, Window};
use collector::{Collector, Datasets, RouterMeta, SpillConfig, SpillStats, UploadCounters};
use faultlab::{FaultPlan, FaultScenario};
use firmware::records::RouterId;
use household::domains::DomainUniverse;
use household::home::{build_deployment_scaled, HomeConfig};
use household::Country;
use simnet::time::{SimDuration, SimTime};

/// The per-data-set collection windows a study runs with.
#[derive(Debug, Clone)]
pub struct StudyWindows {
    /// The full simulated span (the Heartbeats window).
    pub span: Window,
    /// Uptime reports window.
    pub uptime: Window,
    /// Device census window.
    pub devices: Window,
    /// WiFi scan window.
    pub wifi: Window,
    /// Capacity probe window.
    pub capacity: Window,
    /// Traffic capture window.
    pub traffic: Window,
}

impl StudyWindows {
    /// The paper's Table 2 windows (October 2012 – April 2013).
    pub fn table2() -> StudyWindows {
        StudyWindows {
            span: windows::heartbeats(),
            uptime: windows::uptime(),
            devices: windows::devices(),
            wifi: windows::wifi(),
            capacity: windows::capacity(),
            traffic: windows::traffic(),
        }
    }

    /// Windows scaled into an arbitrary (usually much shorter) span, for
    /// fast tests and examples. The layout mirrors Table 2's: WiFi early in
    /// the span, Uptime/Devices late, Capacity and Traffic in the final
    /// stretch, preserving every window's relative coverage.
    pub fn scaled(span: Window) -> StudyWindows {
        let total = span.duration();
        let frac = |num: u64, den: u64| -> SimDuration {
            SimDuration::from_micros(total.as_micros() * num / den)
        };
        let at = |num: u64, den: u64| -> SimTime { span.start + frac(num, den) };
        StudyWindows {
            span,
            // WiFi: ~weeks 5–7 of 28 in the original → the second eighth.
            wifi: Window { start: at(1, 8), end: at(2, 8) },
            // Uptime/Devices: the last fifth.
            uptime: Window { start: at(4, 5), end: span.end },
            devices: Window { start: at(4, 5), end: span.end },
            // Capacity/Traffic: the last tenth.
            capacity: Window { start: at(9, 10), end: span.end },
            traffic: Window { start: at(9, 10), end: span.end },
        }
    }
}

/// Study configuration.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Master seed: everything derives from it.
    pub seed: u64,
    /// Deployment size. 126 reproduces the paper's Table 1 deployment
    /// exactly; any other value scales it generatively while preserving
    /// the country mix (see [`household::build_deployment_scaled`]).
    pub homes: u32,
    /// Collection windows (defaults to Table 2's).
    pub windows: StudyWindows,
    /// Worker threads for the home simulations.
    pub threads: usize,
    /// Collection-infrastructure outage windows (§3.3 failure injection):
    /// records arriving during one are lost at the server.
    pub collector_outages: Vec<Window>,
    /// Fault scenario to compile and inject (see [`faultlab`]). `None`
    /// disengages the fault subsystem entirely: the run is byte-identical
    /// to one from a build without faultlab at all.
    pub faults: Option<FaultScenario>,
    /// CGN deployment scenario (see [`cgn`]). `None` disengages the
    /// carrier-grade tier entirely — no second translation hop, no NAT
    /// probes, no punch trials — and the run is byte-identical to one from
    /// a build without the cgn crate at all.
    pub cgn: Option<CgnScenario>,
    /// Out-of-core memory budget. `None` (the default) keeps every record
    /// in RAM; `Some` makes collector shards seal their columnar tables to
    /// disk segments past the budget and k-way-merge them back at snapshot
    /// — reports stay byte-identical to the unbounded run.
    pub spill: Option<SpillConfig>,
}

impl StudyConfig {
    /// The full six-month study at the given seed.
    pub fn full(seed: u64) -> StudyConfig {
        StudyConfig {
            seed,
            homes: 126,
            windows: StudyWindows::table2(),
            threads: default_threads(),
            collector_outages: Vec::new(),
            faults: None,
            cgn: None,
            spill: None,
        }
    }

    /// A reduced study spanning `days` from the epoch — same deployment,
    /// proportionally scaled windows. Used by tests and quick examples.
    pub fn quick(seed: u64, days: u64) -> StudyConfig {
        let span = Window {
            start: SimTime::EPOCH,
            end: SimTime::EPOCH + SimDuration::from_days(days),
        };
        StudyConfig {
            seed,
            homes: 126,
            windows: StudyWindows::scaled(span),
            threads: default_threads(),
            collector_outages: Vec::new(),
            faults: None,
            cgn: None,
            spill: None,
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(16)
}

/// Wall-clock spent in each phase of [`run_study`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Simulating every home and ingesting its uploads.
    pub simulate: std::time::Duration,
    /// Merging the collector shards into the sorted data sets.
    pub snapshot: std::time::Duration,
}

/// Everything a finished study produces.
#[derive(Debug)]
pub struct StudyOutput {
    /// The six data sets, snapshot from the collector.
    pub datasets: Datasets,
    /// The deployment that generated them (ground truth, used only by
    /// validation tests and never by the analyses).
    pub homes: Vec<HomeConfig>,
    /// The windows the study ran with.
    pub windows: StudyWindows,
    /// Per-phase wall-clock of the run.
    pub timings: PhaseTimings,
    /// The injected fault plan (empty when the study ran fault-free) —
    /// ground truth for scoring the analysis-side artifact detectors.
    pub fault_plan: FaultPlan,
    /// The compiled CGN plan (empty when no scenario was armed) — ground
    /// truth for scoring the NAT-characterization analyses.
    pub cgn_plan: CgnPlan,
    /// Store-and-forward delivery accounting across all shards.
    pub upload_counters: UploadCounters,
    /// Heartbeat datagrams the collector dropped during announced
    /// downtime.
    pub dropped_in_downtime: u64,
    /// Out-of-core accounting, present only when the study ran with a
    /// spill budget ([`StudyConfig::spill`]).
    pub spill: Option<SpillStats>,
}

impl StudyWindows {
    /// The analysis-side view of these windows.
    pub fn report_windows(&self) -> analysis::ReportWindows {
        analysis::ReportWindows {
            heartbeats: self.span,
            uptime: self.uptime,
            devices: self.devices,
            wifi: self.wifi,
            capacity: self.capacity,
            traffic: self.traffic,
        }
    }
}

impl StudyOutput {
    /// Compute the full per-figure report for this study.
    pub fn report(&self) -> analysis::StudyReport {
        analysis::StudyReport::compute(&self.datasets, self.windows.report_windows())
    }
}

/// Set the end-of-study gauges: deployment size and the size of each
/// collected data set. Gauges are written once, from this single-threaded
/// epilogue, so their exported values are deterministic.
fn publish_study_metrics(homes: &[HomeConfig], datasets: &Datasets) {
    obs::gauge("study_homes").set(homes.len() as u64);
    let hb: u64 = datasets.heartbeats.values().map(|log| log.total_heartbeats()).sum();
    obs::gauge("dataset_heartbeat_records").set(hb);
    obs::gauge("dataset_uptime_records").set(datasets.uptime.len() as u64);
    obs::gauge("dataset_capacity_records").set(datasets.capacity.len() as u64);
    obs::gauge("dataset_device_census_records").set(datasets.devices.len() as u64);
    obs::gauge("dataset_wifi_scan_records").set(datasets.wifi.len() as u64);
    obs::gauge("dataset_packet_stat_records").set(datasets.packet_stats.len() as u64);
    obs::gauge("dataset_flow_records").set(datasets.flows.len() as u64);
    obs::gauge("dataset_dns_records").set(datasets.dns.len() as u64);
    obs::gauge("dataset_mac_sighting_records").set(datasets.macs.len() as u64);
    obs::gauge("dataset_association_records").set(datasets.associations.len() as u64);
    obs::gauge("dataset_latency_records").set(datasets.latency.len() as u64);
    obs::gauge("dataset_nat_probe_records").set(datasets.nat_probes.len() as u64);
    obs::gauge("dataset_punch_trial_records").set(datasets.punch_trials.len() as u64);
    obs::gauge("dataset_upload_gap_records").set(datasets.upload_gaps.len() as u64);
}

/// Run the full study: build the deployment from `seed` (Table 1 at the
/// default 126 homes, mix-preserving generative scaling otherwise),
/// simulate every home over the configured span on `threads` workers, and
/// snapshot the collected data sets.
pub fn run_study(config: &StudyConfig) -> StudyOutput {
    let homes = build_deployment_scaled(config.seed, config.homes);
    // Compile the fault scenario (if any) against the actual deployment.
    // An empty plan keeps every home on the legacy direct-flush path.
    let fault_plan = match config.faults {
        Some(scenario) => {
            let routers: Vec<RouterId> = homes.iter().map(|h| RouterId(h.id.0)).collect();
            FaultPlan::scenario(scenario, config.seed, config.windows.span, &routers)
        }
        None => FaultPlan::empty(),
    };
    // Compile the CGN scenario (if any) against the deployment's country
    // mix. An empty plan leaves every home on the single-NAT path.
    let cgn_plan = match config.cgn {
        Some(scenario) => {
            let deployment: Vec<(RouterId, Country)> =
                homes.iter().map(|h| (RouterId(h.id.0), h.country)).collect();
            CgnPlan::scenario(scenario, config.seed, config.windows.span, &deployment)
        }
        None => CgnPlan::empty(),
    };
    let reliable_upload = !fault_plan.is_empty() || !cgn_plan.is_empty();
    let universe = DomainUniverse::standard();
    let zone = universe.build_zone();
    let collector = Collector::new();
    if let Some(spill) = &config.spill {
        collector
            .set_spill(spill)
            .expect("spill directory must be creatable before the study starts");
    }
    collector.set_outages(config.collector_outages.clone());
    if !fault_plan.collector_downtime.is_empty() {
        collector.set_downtime(fault_plan.collector_downtime.clone());
    }
    for home in &homes {
        collector.register(RouterMeta {
            router: RouterId(home.id.0),
            country: home.country,
            traffic_consent: home.traffic_consent,
        });
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let workers = config.threads.max(1);
    // simlint: allow(wall-clock) — operator-facing phase timing only; never feeds the simulation or its datasets
    let sim_start = std::time::Instant::now();
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if idx >= homes.len() {
                    break;
                }
                let sim = HomeSim::new(SimParams {
                    cfg: &homes[idx],
                    universe: &universe,
                    zone: &zone,
                    windows: &config.windows,
                    seed: config.seed,
                    reliable_upload,
                    faults: fault_plan.for_router(RouterId(homes[idx].id.0)),
                    cgn: cgn_plan.for_router(RouterId(homes[idx].id.0)),
                });
                sim.run(&collector);
            });
        }
    })
    .expect("home simulation threads must not panic");
    let simulate = sim_start.elapsed();
    // Every home is done uploading: consume the collector instead of
    // cloning 33M records out of it.
    // simlint: allow(wall-clock) — operator-facing phase timing only; never feeds the simulation or its datasets
    let snap_start = std::time::Instant::now();
    collector.publish_metrics();
    let upload_counters = collector.upload_counters();
    let dropped_in_downtime = collector.dropped_in_downtime();
    let spill = collector.spill_stats();
    let datasets = collector.into_datasets();
    let snapshot = snap_start.elapsed();
    publish_study_metrics(&homes, &datasets);
    if !cgn_plan.is_empty() {
        cgn_plan.publish_metrics();
    }
    // Wall-clock phase spans are host profiling: they reach the manifest's
    // text summary only, never metrics.json.
    obs::wall_span("study_simulate").record_micros(simulate.as_micros() as u64);
    obs::wall_span("study_snapshot").record_micros(snapshot.as_micros() as u64);
    StudyOutput {
        datasets,
        homes,
        windows: config.windows.clone(),
        timings: PhaseTimings { simulate, snapshot },
        fault_plan,
        cgn_plan,
        upload_counters,
        dropped_in_downtime,
        spill,
    }
}

/// One emitted stream window, handed to the [`run_study_stream`] sink
/// right after the window's delta was folded in and the rolling report
/// refreshed.
pub struct StreamWindow<'a> {
    /// Zero-based window index.
    pub index: u32,
    /// The slice of virtual time this window sealed.
    pub window: Window,
    /// The rolling report after this window (incremental state finalized
    /// against everything collected so far).
    pub report: &'a analysis::StudyReport,
    /// The accumulated data sets after this window.
    pub datasets: &'a Datasets,
    /// Wall-clock spent folding this window's delta into the incremental
    /// state (the part whose cost scales with the delta, not the history).
    pub update_cost: std::time::Duration,
    /// Wall-clock spent finalizing the rolling report from the partial
    /// state plus the accumulator.
    pub finalize_cost: std::time::Duration,
}

/// Everything a finished streaming study produces: the regular
/// [`StudyOutput`] (its datasets are the final accumulated snapshot) plus
/// the final rolling report and the window count.
pub struct StreamOutput {
    /// The study output, exactly as [`run_study`] would shape it.
    pub study: StudyOutput,
    /// The final rolling report — the differential harness proves it
    /// byte-identical to `study.report()` recomputed from scratch.
    pub report: analysis::StudyReport,
    /// Stream windows emitted (the last one ends exactly at span end).
    pub windows_run: u32,
}

/// Continuous-operation mode: run the same deployment as [`run_study`],
/// but pause every `cadence` of virtual time to drain the records sealed
/// behind the per-router watermark, fold them into the incremental
/// analysis state, and refresh the rolling report — calling `on_window`
/// with each window's results as it closes.
///
/// The stream always routes records through the store-and-forward upload
/// queue (a long-running collector never gets direct memory handoffs), so
/// the drained prefix is exactly what a batch run would have ingested by
/// the same virtual instant. After the final window the accumulated
/// datasets and the rolling report are byte-identical to a batch run of
/// the same config — at any thread count, spill armed or not, faults and
/// CGN included.
pub fn run_study_stream(
    config: &StudyConfig,
    cadence: SimDuration,
    mut on_window: impl FnMut(&StreamWindow<'_>),
) -> StreamOutput {
    assert!(cadence.as_micros() > 0, "stream cadence must be positive");
    let homes = build_deployment_scaled(config.seed, config.homes);
    let fault_plan = match config.faults {
        Some(scenario) => {
            let routers: Vec<RouterId> = homes.iter().map(|h| RouterId(h.id.0)).collect();
            FaultPlan::scenario(scenario, config.seed, config.windows.span, &routers)
        }
        None => FaultPlan::empty(),
    };
    let cgn_plan = match config.cgn {
        Some(scenario) => {
            let deployment: Vec<(RouterId, Country)> =
                homes.iter().map(|h| (RouterId(h.id.0), h.country)).collect();
            CgnPlan::scenario(scenario, config.seed, config.windows.span, &deployment)
        }
        None => CgnPlan::empty(),
    };
    let universe = DomainUniverse::standard();
    let zone = universe.build_zone();
    let collector = Collector::new();
    if let Some(spill) = &config.spill {
        collector
            .set_spill(spill)
            .expect("spill directory must be creatable before the study starts");
    }
    collector.set_outages(config.collector_outages.clone());
    if !fault_plan.collector_downtime.is_empty() {
        collector.set_downtime(fault_plan.collector_downtime.clone());
    }
    for home in &homes {
        collector.register(RouterMeta {
            router: RouterId(home.id.0),
            country: home.country,
            traffic_consent: home.traffic_consent,
        });
    }
    let mut sims: Vec<HomeSim<'_>> = homes
        .iter()
        .map(|home| {
            HomeSim::new(SimParams {
                cfg: home,
                universe: &universe,
                zone: &zone,
                windows: &config.windows,
                seed: config.seed,
                // A continuously-consumed stream always runs the reliable
                // upload path; with no faults armed the queue is invisible
                // and the delivered records are identical to direct flush.
                reliable_upload: true,
                faults: fault_plan.for_router(RouterId(home.id.0)),
                cgn: cgn_plan.for_router(RouterId(home.id.0)),
            })
        })
        .collect();

    let span = config.windows.span;
    let workers = config.threads.max(1);
    let mut inc = analysis::IncrementalReport::new(config.windows.report_windows());
    let mut acc = Datasets::default();
    let mut absorber = collector::DatasetsAbsorber::default();
    let mut report: Option<analysis::StudyReport> = None;
    let mut spill_total: Option<SpillStats> = None;
    let mut simulate = std::time::Duration::ZERO;
    let mut snapshot = std::time::Duration::ZERO;
    let mut index: u32 = 0;
    let mut cursor = span.start;
    while cursor < span.end {
        let until = (cursor + cadence).min(span.end);
        let last = until >= span.end;
        // simlint: allow(wall-clock) — operator-facing phase timing only; never feeds the simulation or its datasets
        let sim_start = std::time::Instant::now();
        // One barrier per window: advance every home to the boundary on
        // `workers` threads. Homes are mutually independent and the
        // collector is order-insensitive, so the chunking is free to be
        // static.
        let chunk = sims.len().div_ceil(workers).max(1);
        crossbeam::scope(|scope| {
            for part in sims.chunks_mut(chunk) {
                let collector = &collector;
                scope.spawn(move |_| {
                    for sim in part {
                        sim.run_until(until, collector);
                    }
                });
            }
        })
        .expect("home simulation threads must not panic");
        if last {
            // Span end: run the epilogues (flow teardown, monitor and
            // spool drains) so the final delta carries everything.
            let mut parts: Vec<Vec<HomeSim<'_>>> = Vec::new();
            while !sims.is_empty() {
                let at = sims.len().saturating_sub(chunk);
                parts.push(sims.split_off(at));
            }
            crossbeam::scope(|scope| {
                for part in parts {
                    let collector = &collector;
                    scope.spawn(move |_| {
                        for sim in part {
                            sim.finish(collector);
                        }
                    });
                }
            })
            .expect("home finish threads must not panic");
        }
        simulate += sim_start.elapsed();

        // Seal and fold the window: drain the applied-behind-watermark
        // prefix, update the incremental state from the delta alone, then
        // absorb the delta into the accumulated snapshot.
        //
        // Spill accounting first: draining moves sealed segments out with
        // the delta (the collector's live stats reset every window), so
        // the study-level totals must accumulate across drains.
        if let Some(stats) = collector.spill_stats() {
            let total = spill_total.get_or_insert_with(SpillStats::default);
            total.segments += stats.segments;
            total.bytes_written += stats.bytes_written;
            if total.error.is_none() {
                total.error = stats.error;
            }
        }
        // simlint: allow(wall-clock) — operator-facing phase timing only; never feeds the simulation or its datasets
        let drain_start = std::time::Instant::now();
        let delta = collector.drain_delta();
        snapshot += drain_start.elapsed();
        // simlint: allow(wall-clock) — per-window incremental-cost profiling for the bench harness; never feeds figures
        let update_start = std::time::Instant::now();
        inc.update(&delta);
        let update_cost = update_start.elapsed();
        // simlint: allow(wall-clock) — operator-facing phase timing only; never feeds the simulation or its datasets
        let absorb_start = std::time::Instant::now();
        acc.absorb(delta, &mut absorber);
        snapshot += absorb_start.elapsed();
        // simlint: allow(wall-clock) — per-window incremental-cost profiling for the bench harness; never feeds figures
        let finalize_start = std::time::Instant::now();
        let rolled = inc.finalize(&acc);
        let finalize_cost = finalize_start.elapsed();
        let emitted = StreamWindow {
            index,
            window: Window { start: cursor, end: until },
            report: &rolled,
            datasets: &acc,
            update_cost,
            finalize_cost,
        };
        on_window(&emitted);
        report = Some(rolled);
        obs::counter("stream_windows_total").add(1);
        index += 1;
        cursor = until;
    }
    let report = report.expect("span is non-empty, so at least one window ran");

    collector.publish_metrics();
    let upload_counters = collector.upload_counters();
    let dropped_in_downtime = collector.dropped_in_downtime();
    // Accumulated across the per-window drains above; the final drain left
    // the collector itself with no live segments to report.
    let spill = spill_total;
    drop(collector);
    publish_study_metrics(&homes, &acc);
    if !cgn_plan.is_empty() {
        cgn_plan.publish_metrics();
    }
    obs::wall_span("study_simulate").record_micros(simulate.as_micros() as u64);
    obs::wall_span("study_snapshot").record_micros(snapshot.as_micros() as u64);
    StreamOutput {
        study: StudyOutput {
            datasets: acc,
            homes,
            windows: config.windows.clone(),
            timings: PhaseTimings { simulate, snapshot },
            fault_plan,
            cgn_plan,
            upload_counters,
            dropped_in_downtime,
            spill,
        },
        report,
        windows_run: index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_windows_nest_inside_span() {
        let span = Window {
            start: SimTime::EPOCH,
            end: SimTime::EPOCH + SimDuration::from_days(10),
        };
        let w = StudyWindows::scaled(span);
        for sub in [&w.wifi, &w.uptime, &w.devices, &w.capacity, &w.traffic] {
            assert!(sub.start >= span.start && sub.end <= span.end);
            assert!(sub.end > sub.start, "window must be non-empty");
        }
        assert!(w.wifi.end <= w.uptime.start, "wifi precedes uptime as in Table 2");
        assert!(w.capacity.start >= w.devices.start);
    }

    #[test]
    fn table2_windows_match_collector() {
        let w = StudyWindows::table2();
        assert_eq!(w.span, windows::heartbeats());
        assert_eq!(w.traffic, windows::traffic());
    }

    #[test]
    fn quick_study_runs_and_covers_deployment() {
        let output = run_study(&StudyConfig::quick(7, 6));
        assert_eq!(output.homes.len(), 126);
        assert_eq!(output.datasets.routers.len(), 126);
        // Every home that was ever powered has heartbeats.
        assert!(output.datasets.heartbeats.len() > 100);
        assert!(!output.datasets.devices.is_empty());
        assert!(!output.datasets.wifi.is_empty());
        assert!(!output.datasets.capacity.is_empty());
        assert!(!output.datasets.flows.is_empty());
    }

    #[test]
    fn scaled_study_covers_the_requested_deployment() {
        let mut cfg = StudyConfig::quick(5, 3);
        cfg.homes = 10;
        let output = run_study(&cfg);
        assert_eq!(output.homes.len(), 10);
        assert_eq!(output.datasets.routers.len(), 10);
        assert!(!output.datasets.heartbeats.is_empty());
    }

    #[test]
    fn study_is_deterministic_across_thread_counts() {
        let mut a_cfg = StudyConfig::quick(3, 4);
        a_cfg.threads = 1;
        let mut b_cfg = StudyConfig::quick(3, 4);
        b_cfg.threads = 8;
        let a = run_study(&a_cfg);
        let b = run_study(&b_cfg);
        // Every table must be byte-identical, not just the easy ones: the
        // sharded collector's determinism guarantee covers the whole
        // snapshot regardless of upload interleaving.
        assert_eq!(a.datasets.routers, b.datasets.routers);
        assert_eq!(a.datasets.heartbeats, b.datasets.heartbeats);
        assert_eq!(a.datasets.uptime, b.datasets.uptime);
        assert_eq!(a.datasets.capacity, b.datasets.capacity);
        assert_eq!(a.datasets.devices, b.datasets.devices);
        assert_eq!(a.datasets.wifi, b.datasets.wifi);
        assert_eq!(a.datasets.packet_stats, b.datasets.packet_stats);
        assert_eq!(a.datasets.flows, b.datasets.flows);
        assert_eq!(a.datasets.dns, b.datasets.dns);
        assert_eq!(a.datasets.macs, b.datasets.macs);
        assert_eq!(a.datasets.associations, b.datasets.associations);
        assert_eq!(a.datasets.latency, b.datasets.latency);
        // ... and so must the rendered report built on top of them.
        let report_a = a.report().render(&a.datasets);
        let report_b = b.report().render(&b.datasets);
        assert_eq!(report_a, report_b);
    }

    #[test]
    fn streamed_study_matches_batch() {
        let cfg = StudyConfig::quick(7, 6);
        let batch = run_study(&cfg);
        let mut windows_seen = 0;
        let mut rolling_homes = 0;
        let streamed = run_study_stream(&cfg, SimDuration::from_hours(36), |w| {
            windows_seen = w.index + 1;
            rolling_homes = w.report.routers.len();
            assert_eq!(w.datasets.routers.len(), 126);
        });
        assert_eq!(streamed.windows_run, 4, "6 days at a 36 h cadence is 4 windows");
        assert_eq!(streamed.windows_run, windows_seen);
        assert_eq!(rolling_homes, streamed.report.routers.len());
        // The accumulated snapshot and the rolling report must be
        // byte-identical to the batch run's.
        assert_eq!(batch.datasets, streamed.study.datasets);
        assert_eq!(
            batch.report().render(&batch.datasets),
            streamed.report.render(&streamed.study.datasets),
            "final rolling report must equal the batch report"
        );
    }

    #[test]
    fn spilled_study_report_is_byte_identical_to_unbounded() {
        let unbounded = run_study(&StudyConfig::quick(11, 5));
        let mut cfg = StudyConfig::quick(11, 5);
        // Small enough that the traffic tables cross it many times over.
        cfg.spill = Some(SpillConfig { budget_bytes: 1 << 18, dir: None });
        let spilled = run_study(&cfg);
        let stats = spilled.spill.as_ref().expect("spill stats present when armed");
        assert!(stats.segments > 0, "budget must actually be exceeded");
        assert_eq!(stats.error, None);
        assert!(spilled.datasets.spilled_bytes() > 0);
        assert_eq!(unbounded.spill, None);
        assert_eq!(unbounded.datasets.packet_stats, spilled.datasets.packet_stats);
        assert_eq!(unbounded.datasets.flows, spilled.datasets.flows);
        assert_eq!(unbounded.datasets.dns, spilled.datasets.dns);
        assert_eq!(unbounded.datasets.macs, spilled.datasets.macs);
        assert_eq!(
            unbounded.report().render(&unbounded.datasets),
            spilled.report().render(&spilled.datasets),
            "spilled report must be byte-identical to the in-memory run"
        );
    }
}
