//! # bismark — end-to-end reproduction of "Peeking Behind the NAT" (IMC'13)
//!
//! This crate ties the substrate crates together: it instantiates the
//! 126-home, 19-country deployment of Table 1 ([`household`]), simulates
//! every home with its gateway firmware in virtual time ([`homesim`]),
//! collects the six data sets of Table 2 ([`collector`]), and exposes the
//! study runner ([`study`]) whose output feeds the [`analysis`] crate's
//! per-figure functions.
//!
//! ```no_run
//! use bismark::study::{run_study, StudyConfig};
//!
//! // The full six-month study (use `quick` for a fast scaled-down run).
//! let output = run_study(&StudyConfig::full(2013));
//! println!("{} records collected", output.datasets.record_count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod homesim;
pub mod study;
pub mod validation;

pub use study::{run_study, StudyConfig, StudyOutput, StudyWindows};
