//! Measurement validation: how close does the *measured* world come to the
//! simulated ground truth?
//!
//! The paper's §3.3 is explicit that heartbeats are an imperfect
//! instrument: they conflate "router off" with "path lossy", and lost
//! packets can masquerade as downtime. In the reproduction we hold the
//! ground truth (the generative availability schedule), so we can quantify
//! exactly how biased the instrument is — something the deployment never
//! could. This module recomputes each home's true reachable intervals from
//! the same derived random streams the simulation used and compares them
//! with what the heartbeat log measured.

use crate::study::{StudyOutput, StudyWindows};
use collector::windows::Window;
use firmware::records::RouterId;
use household::interval::{intersect, subtract, total_duration, Interval};
use household::HomeConfig;
use simnet::rng::DetRng;

/// Ground-truth reachable intervals for one home, recomputed from the same
/// `(seed, home id)` streams the simulation derived.
pub fn ground_truth_up(cfg: &HomeConfig, windows: &StudyWindows, seed: u64) -> Vec<Interval> {
    let root = DetRng::new(seed).derive_indexed("homesim", u64::from(cfg.id.0));
    let span = windows.span;
    let mut power_rng = root.derive("power");
    let powered = cfg.availability.power_intervals(span.start, span.end, &mut power_rng);
    let mut outage_rng = root.derive("outage");
    let outages = cfg.availability.isp_outages(span.start, span.end, &mut outage_rng);
    let isp_up = subtract(&[Interval::new(span.start, span.end)], &outages);
    intersect(&powered, &isp_up)
}

/// One home's measured-vs-truth comparison.
#[derive(Debug, Clone, Copy)]
pub struct HomeValidation {
    /// The home.
    pub router: RouterId,
    /// True fraction of the span the router was reachable.
    pub true_up_fraction: f64,
    /// Fraction the heartbeat log measured.
    pub measured_coverage: f64,
    /// Downtime events (≥10 min) in the ground truth.
    pub true_downtimes: usize,
    /// Downtime events the heartbeat analysis found.
    pub measured_downtimes: usize,
}

impl HomeValidation {
    /// Absolute coverage error of the instrument for this home.
    pub fn coverage_error(&self) -> f64 {
        (self.true_up_fraction - self.measured_coverage).abs()
    }
}

/// The full validation report.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// Per-home rows.
    pub homes: Vec<HomeValidation>,
    /// Mean absolute coverage error across homes.
    pub mean_coverage_error: f64,
    /// Mean |measured − true| downtime-count error, in events.
    pub mean_downtime_count_error: f64,
}

/// Validate a study's heartbeat instrument against ground truth.
pub fn validate_availability(output: &StudyOutput, seed: u64) -> ValidationReport {
    let span = output.windows.span;
    let window = Window { start: span.start, end: span.end };
    let threshold = analysis::availability::DOWNTIME_THRESHOLD;
    let mut homes = Vec::with_capacity(output.homes.len());
    for cfg in &output.homes {
        let router = RouterId(cfg.id.0);
        let truth = ground_truth_up(cfg, &output.windows, seed);
        let true_up = total_duration(&truth) / span.duration();
        let true_gaps = household::interval::gaps_within(
            &truth,
            Interval::new(window.start, window.end),
        )
        .into_iter()
        .filter(|g| g.duration() >= threshold)
        .count();
        let Some(log) = output.datasets.heartbeats.get(&router) else {
            continue;
        };
        let measured = log.coverage(window.start, window.end);
        let measured_gaps = log.downtimes(window.start, window.end, threshold).len();
        homes.push(HomeValidation {
            router,
            true_up_fraction: true_up,
            measured_coverage: measured,
            true_downtimes: true_gaps,
            measured_downtimes: measured_gaps,
        });
    }
    let n = homes.len().max(1) as f64;
    ValidationReport {
        mean_coverage_error: homes.iter().map(HomeValidation::coverage_error).sum::<f64>() / n,
        mean_downtime_count_error: homes
            .iter()
            .map(|h| (h.true_downtimes as f64 - h.measured_downtimes as f64).abs())
            .sum::<f64>()
            / n,
        homes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{run_study, StudyConfig};

    #[test]
    fn heartbeat_instrument_tracks_ground_truth() {
        let seed = 31337;
        let output = run_study(&StudyConfig::quick(seed, 8));
        let report = validate_availability(&output, seed);
        assert!(report.homes.len() > 100, "most homes validated");
        // The instrument is good: a minute-level sampler with sub-percent
        // loss should track coverage within a couple of percent on average.
        assert!(
            report.mean_coverage_error < 0.03,
            "mean coverage error {}",
            report.mean_coverage_error
        );
        // Downtime counts line up within a few events (boundary effects:
        // boot jitter, losses adjacent to real gaps).
        assert!(
            report.mean_downtime_count_error < 3.0,
            "mean downtime count error {}",
            report.mean_downtime_count_error
        );
    }

    #[test]
    fn lossy_paths_bias_toward_overcounted_downtime() {
        // With heavy WAN loss, measured coverage must drop below truth —
        // the §3.3 bias made quantitative. We rebuild one home with an
        // extreme loss probability and compare.
        use crate::homesim::{HomeSim, SimParams};
        use collector::{Collector, RouterMeta};
        use household::domains::DomainUniverse;
        let seed = 77;
        let windows = StudyWindows::scaled(Window {
            start: simnet::time::SimTime::EPOCH,
            end: simnet::time::SimTime::EPOCH + simnet::time::SimDuration::from_days(10),
        });
        let universe = DomainUniverse::standard();
        let zone = universe.build_zone();
        let root = DetRng::new(seed);
        let mut cfg = household::HomeConfig::sample(
            household::HomeId(0),
            household::Country::UnitedStates,
            &root.derive_indexed("home", 0),
        );
        cfg.traffic_consent = false;
        cfg.heartbeat_loss_prob = 0.35; // pathologically lossy path
        let collector = Collector::new();
        collector.register(RouterMeta {
            router: RouterId(0),
            country: cfg.country,
            traffic_consent: false,
        });
        HomeSim::new(SimParams {
            cfg: &cfg,
            universe: &universe,
            zone: &zone,
            windows: &windows,
            seed,
            reliable_upload: false,
            faults: None,
            cgn: None,
        })
        .run(&collector);
        let data = collector.snapshot();
        let truth = ground_truth_up(&cfg, &windows, seed);
        let true_up = total_duration(&truth) / windows.span.duration();
        let measured = data.heartbeats[&RouterId(0)]
            .coverage(windows.span.start, windows.span.end);
        // 35% independent loss still rarely produces 3-minute holes, but
        // the measured coverage cannot exceed the truth.
        assert!(measured <= true_up + 1e-9, "measured {measured} vs true {true_up}");
    }
}
