//! Property-based tests for the upload ingestion path: the watermark /
//! dedup / reorder-buffer machinery must make batch delivery *idempotent*
//! and *order-free*. Whatever arrival pattern the network produces —
//! duplicates from retries whose ack was lost, reorderings from parallel
//! paths, partial replays after a crash — as long as every batch is
//! eventually offered at least once, the resulting data sets are
//! byte-identical to a clean in-order delivery.

use collector::{Collector, Datasets, RouterMeta};
use firmware::records::{HeartbeatRecord, Record, RouterId, UptimeRecord};
use firmware::uploader::{GapCause, GapDecl};
use household::Country;
use proptest::prelude::*;
use simnet::time::{SimDuration, SimTime};

const ROUTERS: u32 = 3;
const BATCHES_PER_ROUTER: u64 = 5;
/// One router's sequence has a hole: batch 3 was destroyed and is covered
/// by a gap declaration riding on batch 4 instead of ever arriving.
const GAP_ROUTER: u32 = 2;
const GAP_SEQ: u64 = 3;

fn t(mins: u64) -> SimTime {
    SimTime::EPOCH + SimDuration::from_mins(mins)
}

/// The canonical contents of one batch. Heartbeat timestamps increase with
/// the sequence number, so *seq-order application* (which the collector
/// guarantees regardless of arrival order) keeps the run-length heartbeat
/// log's monotonicity invariant.
fn batch_records(router: RouterId, seq: u64) -> Vec<Record> {
    let base = seq * 100 + u64::from(router.0);
    vec![
        Record::Heartbeat(HeartbeatRecord { router, at: t(base) }),
        Record::Heartbeat(HeartbeatRecord { router, at: t(base + 1) }),
        Record::Uptime(UptimeRecord {
            router,
            at: t(base + 2),
            uptime: SimDuration::from_mins(base),
        }),
    ]
}

fn gaps_for(router: RouterId, seq: u64) -> Vec<GapDecl> {
    if router.0 == GAP_ROUTER && seq == GAP_SEQ + 1 {
        vec![GapDecl {
            first_seq: GAP_SEQ,
            last_seq: GAP_SEQ,
            records_lost: 3,
            from: t(GAP_SEQ * 100),
            to: t(GAP_SEQ * 100 + 2),
            cause: GapCause::FlashWipe,
        }]
    } else {
        Vec::new()
    }
}

/// Every (router, seq) batch that exists, in clean delivery order.
fn canonical_order() -> Vec<(RouterId, u64)> {
    let mut all = Vec::new();
    for r in 1..=ROUTERS {
        for seq in 1..=BATCHES_PER_ROUTER {
            if r == GAP_ROUTER && seq == GAP_SEQ {
                continue; // destroyed: covered by a gap declaration
            }
            all.push((RouterId(r), seq));
        }
    }
    all
}

fn fresh_collector() -> Collector {
    let collector = Collector::new();
    for r in 1..=ROUTERS {
        collector.register(RouterMeta {
            router: RouterId(r),
            country: Country::UnitedStates,
            traffic_consent: false,
        });
    }
    collector
}

fn deliver(collector: &Collector, router: RouterId, seq: u64, attempt: u32) {
    let mut records = batch_records(router, seq);
    let gaps = gaps_for(router, seq);
    collector.ingest_upload(t(10_000), router, seq, attempt, &gaps, &mut records);
}

fn reference_datasets() -> Datasets {
    let collector = fresh_collector();
    for (router, seq) in canonical_order() {
        deliver(&collector, router, seq, 0);
    }
    collector.snapshot()
}

proptest! {
    #[test]
    fn any_arrival_pattern_yields_identical_datasets(
        scramble in proptest::collection::vec(0u64..14, 0..60),
        attempts in proptest::collection::vec(0u64..3, 14),
    ) {
        let all = canonical_order();
        let reference = reference_datasets();
        let collector = fresh_collector();
        // Phase 1: an adversarial prefix — arbitrary batches arrive in an
        // arbitrary order, some of them many times (retries), some not at
        // all yet (still in flight).
        for &i in &scramble {
            let (router, seq) = all[i as usize];
            deliver(&collector, router, seq, attempts[i as usize] as u32);
        }
        // Phase 2: the reliable uploader eventually gets everything
        // through — replay the full sequence, backwards for good measure
        // (every batch has now been offered between 1 and N times).
        for &(router, seq) in all.iter().rev() {
            deliver(&collector, router, seq, 1);
        }
        let datasets = collector.snapshot();
        prop_assert!(
            datasets == reference,
            "scrambled delivery diverged from clean in-order delivery"
        );
        // The gap ledger is part of the equality above, but make the
        // expectation explicit: exactly one gap record, never duplicated.
        prop_assert_eq!(datasets.upload_gaps.len(), 1);
        prop_assert_eq!(datasets.upload_gaps[0].first_seq, GAP_SEQ);
        prop_assert_eq!(datasets.upload_gaps[0].records_lost, 3);
    }

    #[test]
    fn double_ingestion_of_any_prefix_is_invisible(
        prefix_len in 0u64..15,
    ) {
        let all = canonical_order();
        let reference = reference_datasets();
        let collector = fresh_collector();
        // Deliver a prefix, then the *entire* sequence again: the second
        // pass must ack the already-applied prefix as duplicates without
        // changing a single record.
        for &(router, seq) in all.iter().take(prefix_len as usize) {
            deliver(&collector, router, seq, 0);
        }
        for &(router, seq) in &all {
            deliver(&collector, router, seq, 1);
        }
        prop_assert!(collector.snapshot() == reference);
    }
}
