//! Parallel-ingest stress test: many home threads uploading through shard
//! handles while collector-side outage windows are in effect must land on
//! exactly the serial result — same drop count, same per-router heartbeat
//! run logs, same tables.

use collector::windows::Window;
use collector::{Collector, RouterMeta};
use firmware::records::{HeartbeatRecord, Record, RouterId, UptimeRecord};
use household::Country;
use simnet::time::{SimDuration, SimTime};

fn mins(m: u64) -> SimTime {
    SimTime::EPOCH + SimDuration::from_mins(m)
}

const MINUTES: u64 = 2_000;

/// Router IDs spanning many shards, including two that collide with
/// router 2 modulo the shard count so multi-router shards are exercised.
fn router_ids() -> Vec<RouterId> {
    (0..24u32).map(RouterId).chain([RouterId(130), RouterId(258)]).collect()
}

/// Three interleaved collector-side outage windows.
fn outages() -> Vec<Window> {
    vec![
        Window { start: mins(100), end: mins(160) },
        Window { start: mins(700), end: mins(730) },
        Window { start: mins(1_500), end: mins(1_800) },
    ]
}

fn records_for(router: RouterId) -> Vec<Record> {
    // Uptime every 10 minutes, phase-shifted per router so each home loses
    // a different subset to the outages.
    let offset = u64::from(router.0) % 7;
    (0..MINUTES)
        .filter(|m| m % 10 == offset)
        .map(|m| {
            Record::Uptime(UptimeRecord {
                router,
                at: mins(m),
                uptime: SimDuration::from_mins(m),
            })
        })
        .collect()
}

fn heartbeats_for(router: RouterId) -> Vec<HeartbeatRecord> {
    (0..MINUTES).map(|m| HeartbeatRecord { router, at: mins(m) }).collect()
}

fn register_all(collector: &Collector) {
    for router in router_ids() {
        collector.register(RouterMeta {
            router,
            country: Country::UnitedStates,
            traffic_consent: false,
        });
    }
}

fn serial_reference() -> Collector {
    let collector = Collector::new();
    collector.set_outages(outages());
    register_all(&collector);
    for router in router_ids() {
        for hb in heartbeats_for(router) {
            collector.ingest_heartbeat(hb);
        }
        collector.ingest_batch(records_for(router));
    }
    collector
}

#[test]
fn parallel_shard_ingest_matches_serial() {
    let reference = serial_reference();
    let expected_dropped = reference.dropped_in_outage();
    assert!(expected_dropped > 0, "outage windows must actually drop records");

    let parallel = Collector::new();
    parallel.set_outages(outages());
    register_all(&parallel);
    std::thread::scope(|scope| {
        for router in router_ids() {
            let collector = &parallel;
            scope.spawn(move || {
                let shard = collector.shard_handle(router);
                // Interleave heartbeats with small batch uploads so shard
                // locks are taken and released many times mid-stream while
                // other homes hammer the same and neighbouring shards.
                let mut pending = records_for(router).into_iter().peekable();
                for (i, hb) in heartbeats_for(router).into_iter().enumerate() {
                    shard.ingest_heartbeat(hb);
                    if i % 100 == 99 {
                        shard.ingest_batch(pending.by_ref().take(20).collect());
                    }
                }
                shard.ingest_batch(pending.collect());
            });
        }
    });

    assert_eq!(parallel.dropped_in_outage(), expected_dropped);

    let a = reference.into_datasets();
    let b = parallel.into_datasets();

    // Per-router heartbeat run logs are identical...
    assert_eq!(a.heartbeats.len(), b.heartbeats.len());
    for (router, log) in &a.heartbeats {
        let other = b.heartbeats.get(router).expect("router missing from parallel run");
        assert_eq!(log.total_heartbeats(), other.total_heartbeats(), "router {router:?}");
        assert_eq!(log.runs(), other.runs(), "router {router:?}");
    }

    // ...and so is everything else.
    assert_eq!(a.routers, b.routers);
    assert_eq!(a.uptime, b.uptime);
    assert_eq!(a.capacity, b.capacity);
    assert_eq!(a.devices, b.devices);
    assert_eq!(a.wifi, b.wifi);
    assert_eq!(a.packet_stats, b.packet_stats);
    assert_eq!(a.flows, b.flows);
    assert_eq!(a.dns, b.dns);
    assert_eq!(a.macs, b.macs);
    assert_eq!(a.associations, b.associations);
    assert_eq!(a.latency, b.latency);
}
