//! Property-based tests for the columnar dataset tables: pushing rows and
//! iterating them back must be exactly the legacy row-of-structs
//! representation, and merging columnar shards must equal merging the
//! equivalent row tables.
//!
//! The "legacy row representation" of a columnar table is its row model:
//! records grouped by ascending router, push order preserved within each
//! router. Merge equivalence is stated against the row-table merge
//! semantics the collector has always had — all chunks' rows, stably
//! sorted by (router, per-table subkey).

use collector::{DnsTable, FlowTable, PacketStatsTable};
use firmware::anonymize::{AnonMac, ReportedDomain};
use firmware::records::{DnsSampleRecord, FlowRecord, PacketStatsRecord, RouterId};
use proptest::prelude::*;
use simnet::dns::DomainName;
use simnet::packet::IpProtocol;
use simnet::time::SimTime;

/// Compact generated form of one flow: (router, start µs, duration µs,
/// device seed, domain selector, bytes). Expanded by [`flow_from`].
type FlowSpec = (u32, u64, u64, u8, u8, u64);

fn device_from(seed: u8) -> AnonMac {
    AnonMac { oui: u32::from(seed % 5) * 0x0001_0203, suffix_hash: u32::from(seed) }
}

/// A small closed set of domains so interning sees plenty of repeats, with
/// both clear and obfuscated variants.
fn domain_from(selector: u8) -> ReportedDomain {
    match selector % 4 {
        0 => ReportedDomain::Clear(DomainName::new("example.com").unwrap()),
        1 => ReportedDomain::Clear(DomainName::new("video.example.net").unwrap()),
        2 => ReportedDomain::Obfuscated(7),
        _ => ReportedDomain::Obfuscated(u64::from(selector)),
    }
}

fn flow_from(spec: FlowSpec) -> FlowRecord {
    let (router, start_us, dur_us, dev, dom, bytes) = spec;
    FlowRecord {
        router: RouterId(router),
        started: SimTime::from_micros(start_us),
        ended: SimTime::from_micros(start_us.saturating_add(dur_us)),
        device: device_from(dev),
        remote_ip_hash: u64::from(dev) << 8 | u64::from(dom),
        remote_port: u16::from(dom) | 443,
        proto: if dom % 2 == 0 { IpProtocol::Tcp } else { IpProtocol::Udp },
        domain: domain_from(dom),
        bytes_down: bytes,
        bytes_up: bytes / 3,
    }
}

fn dns_from(spec: FlowSpec) -> DnsSampleRecord {
    let (router, at_us, _, dev, dom, bytes) = spec;
    DnsSampleRecord {
        router: RouterId(router),
        at: SimTime::from_micros(at_us),
        device: device_from(dev),
        name: domain_from(dom),
        cname_links: dom % 3,
        resolved: bytes % 2 == 0,
    }
}

fn stats_from(spec: FlowSpec) -> PacketStatsRecord {
    let (router, at_us, _, dev, _, bytes) = spec;
    PacketStatsRecord {
        router: RouterId(router),
        at: SimTime::from_micros(at_us),
        bytes_down: bytes,
        bytes_up: bytes / 2,
        pkts_down: bytes / 1500 + 1,
        pkts_up: bytes / 3000,
        peak_down_1s: u64::from(dev) * 1000,
        peak_up_1s: u64::from(dev) * 250,
    }
}

/// The row model of a columnar table: group by ascending router, keep push
/// order within each router.
fn row_model<T: Clone>(rows: &[T], router: impl Fn(&T) -> RouterId) -> Vec<T> {
    let mut out = rows.to_vec();
    out.sort_by_key(&router); // stable: preserves push order per router
    out
}

/// Arbitrary flow specs over a handful of routers, with timestamps that
/// mix in-order and out-of-order arrivals and durations that cross the
/// narrow-column escape threshold (`u32::MAX` µs ≈ 71 minutes).
fn specs() -> impl Strategy<Value = Vec<FlowSpec>> {
    proptest::collection::vec(
        (0u32..6, 0u64..20_000_000_000, 0u64..8_000_000_000, 0u8..20, 0u8..16, 0u64..1 << 40),
        0..200,
    )
}

proptest! {
    #[test]
    fn flow_push_iterate_equals_legacy_rows(specs in specs()) {
        let rows: Vec<FlowRecord> = specs.into_iter().map(flow_from).collect();
        let mut table = FlowTable::default();
        for r in &rows {
            table.push(r.clone());
        }
        prop_assert_eq!(table.len(), rows.len());
        let legacy = row_model(&rows, |r: &FlowRecord| r.router);
        let back: Vec<FlowRecord> = table.iter().collect();
        prop_assert_eq!(back, legacy);
        // Per-router access is exactly the row filter, in push order.
        for router in (0..6).map(RouterId) {
            let expect: Vec<FlowRecord> =
                rows.iter().filter(|r| r.router == router).cloned().collect();
            let got: Vec<FlowRecord> = table.router(router).collect();
            prop_assert_eq!(got, expect);
        }
    }

    #[test]
    fn dns_and_stats_round_trip_equals_legacy_rows(specs in specs()) {
        let dns_rows: Vec<DnsSampleRecord> = specs.iter().map(|s| dns_from(*s)).collect();
        let stat_rows: Vec<PacketStatsRecord> = specs.iter().map(|s| stats_from(*s)).collect();
        let mut dns = DnsTable::default();
        let mut stats = PacketStatsTable::default();
        for r in &dns_rows {
            dns.push(r.clone());
        }
        for r in &stat_rows {
            stats.push(r.clone());
        }
        let dns_back: Vec<DnsSampleRecord> = dns.iter().collect();
        let stats_back: Vec<PacketStatsRecord> = stats.iter().collect();
        prop_assert_eq!(dns_back, row_model(&dns_rows, |r: &DnsSampleRecord| r.router));
        prop_assert_eq!(stats_back, row_model(&stat_rows, |r: &PacketStatsRecord| r.router));
    }

    #[test]
    fn shard_merge_equals_row_table_merge(specs in specs()) {
        // Two shards partitioned by router parity — faithful to the real
        // collector, where a router's records never span shards.
        let rows: Vec<FlowRecord> = specs.into_iter().map(flow_from).collect();
        let mut shard_a = FlowTable::default();
        let mut shard_b = FlowTable::default();
        for r in &rows {
            if r.router.0 % 2 == 0 {
                shard_a.push(r.clone());
            } else {
                shard_b.push(r.clone());
            }
        }
        let merged = FlowTable::merge(vec![shard_a, shard_b]);
        prop_assert_eq!(merged.len(), rows.len());

        // Row-table merge: every chunk's rows, stably sorted by
        // (router, ended, started, device).
        let mut legacy = rows.clone();
        legacy.sort_by_key(|r| (r.router, r.ended, r.started, r.device));
        let back: Vec<FlowRecord> = merged.iter().collect();
        prop_assert_eq!(back, legacy);
    }

    #[test]
    fn merge_of_presorted_shards_is_identity_on_order(specs in specs()) {
        // When each shard's per-router columns are already subkey-sorted
        // (the hot path: simulation time advances monotonically), merge
        // must concatenate without reordering anything.
        let mut rows: Vec<FlowRecord> = specs.into_iter().map(flow_from).collect();
        rows.sort_by_key(|r| (r.router, r.ended, r.started, r.device));
        let mut shard_a = FlowTable::default();
        let mut shard_b = FlowTable::default();
        for r in &rows {
            if r.router.0 % 2 == 0 {
                shard_a.push(r.clone());
            } else {
                shard_b.push(r.clone());
            }
        }
        let merged = FlowTable::merge(vec![shard_a, shard_b]);
        let back: Vec<FlowRecord> = merged.iter().collect();
        prop_assert_eq!(back, rows);
    }
}
