//! Property-based tests for the out-of-core spill path: a collector that
//! seals columnar segments to disk whenever its memory estimate crosses an
//! arbitrary budget must produce data sets *identical* to the unbounded
//! in-memory collector, for arbitrary record mixes, batch arrival orders,
//! and shard collision patterns.
//!
//! The in-memory columnar model is the specification: spilling is purely a
//! storage decision, so `into_datasets()` after any sequence of seals must
//! equal the run where nothing ever left RAM — including the degenerate
//! budget of zero bytes, where every batch seals its own segment.

use collector::{Collector, RouterMeta, SpillConfig};
use firmware::anonymize::{AnonMac, ReportedDomain};
use firmware::latency::LatencyRecord;
use firmware::records::{
    ApSighting, AssociationRecord, DnsSampleRecord, FlowRecord, MacSightingRecord, Medium,
    NatProbeRecord, NatType, PacketStatsRecord, PunchTrialRecord, Record, RouterId,
    WifiScanRecord,
};
use household::Country;
use proptest::prelude::*;
use simnet::dns::DomainName;
use simnet::packet::IpProtocol;
use simnet::time::{SimDuration, SimTime};
use simnet::wifi::Band;

/// Compact generated form of one record: (router selector, kind selector,
/// time µs, device seed, domain selector, bytes). Expanded by
/// [`record_from`].
type RecordSpec = (u8, u8, u64, u8, u8, u64);

/// Router IDs chosen so the specs cover single-router shards, two routers
/// colliding on one shard (1 and 129, 2 and 130), and a far shard.
const ROUTERS: [u32; 6] = [1, 2, 7, 129, 130, 257];

fn device_from(seed: u8) -> AnonMac {
    AnonMac { oui: u32::from(seed % 5) * 0x0001_0203, suffix_hash: u32::from(seed) }
}

fn domain_from(selector: u8) -> ReportedDomain {
    match selector % 4 {
        0 => ReportedDomain::Clear(DomainName::new("example.com").unwrap()),
        1 => ReportedDomain::Clear(DomainName::new("video.example.net").unwrap()),
        2 => ReportedDomain::Obfuscated(7),
        _ => ReportedDomain::Obfuscated(u64::from(selector)),
    }
}

/// Expand one spec into a columnar-table record; the kind selector cycles
/// through all nine spilled tables so every segment carries a mix.
fn record_from(spec: RecordSpec) -> Record {
    let (router_sel, kind, at_us, dev, dom, bytes) = spec;
    let router = RouterId(ROUTERS[usize::from(router_sel) % ROUTERS.len()]);
    let at = SimTime::from_micros(at_us);
    match kind % 9 {
        0 => Record::PacketStats(PacketStatsRecord {
            router,
            at,
            bytes_down: bytes,
            bytes_up: bytes / 2,
            pkts_down: bytes / 1500 + 1,
            pkts_up: bytes / 3000,
            peak_down_1s: u64::from(dev) * 1000,
            peak_up_1s: u64::from(dev) * 250,
        }),
        1 => Record::Flow(FlowRecord {
            router,
            started: at,
            ended: SimTime::from_micros(at_us.saturating_add(u64::from(dom) * 1_000_000)),
            device: device_from(dev),
            remote_ip_hash: u64::from(dev) << 8 | u64::from(dom),
            remote_port: u16::from(dom) | 443,
            proto: if dom % 2 == 0 { IpProtocol::Tcp } else { IpProtocol::Udp },
            domain: domain_from(dom),
            bytes_down: bytes,
            bytes_up: bytes / 3,
        }),
        2 => Record::DnsSample(DnsSampleRecord {
            router,
            at,
            device: device_from(dev),
            name: domain_from(dom),
            cname_links: dom % 3,
            resolved: bytes % 2 == 0,
        }),
        3 => Record::MacSighting(MacSightingRecord {
            router,
            first_seen: at,
            device: device_from(dev),
            bytes_total: bytes,
        }),
        4 => Record::WifiScan(WifiScanRecord {
            router,
            at,
            band: if dom % 2 == 0 { Band::Ghz24 } else { Band::Ghz5 },
            // AP lists of varying length, including empty, so the
            // flattened AP columns cross record boundaries.
            aps: (0..dev % 4)
                .map(|i| ApSighting {
                    bssid_hash: u64::from(dom) << 16 | u64::from(i),
                    channel_number: 1 + (i % 11),
                    signal_dbm: -30 - (dev % 60) as i8,
                })
                .collect(),
            associated_stations: dev % 9,
        }),
        5 => Record::Association(AssociationRecord {
            router,
            at,
            device: device_from(dev),
            medium: match dom % 3 {
                0 => Medium::Wired,
                1 => Medium::Wireless24,
                _ => Medium::Wireless5,
            },
        }),
        6 => Record::Latency(LatencyRecord {
            router,
            at,
            rtt_min: SimDuration::from_micros(u64::from(dev) * 997),
            rtt_median: SimDuration::from_micros(u64::from(dev) * 997 + u64::from(dom) * 131),
            // Cross the narrow-column escape for some specs.
            rtt_max: SimDuration::from_micros(bytes),
            lost: dom % 5,
        }),
        7 => Record::NatProbe(NatProbeRecord {
            router,
            at,
            nat_type: NatType::from_code(dom % 5).expect("codes 0..5 are valid"),
            mapped_ip_hash: bytes ^ (u64::from(dev) << 32),
            mapped_port: 1024 | u16::from(dom) << 4,
            cgn_detected: dev % 2 == 0,
        }),
        _ => Record::PunchTrial(PunchTrialRecord {
            router,
            at,
            peer: RouterId(ROUTERS[usize::from(dev) % ROUTERS.len()]),
            local_type: NatType::from_code(dom % 5).expect("codes 0..5 are valid"),
            peer_type: NatType::from_code(dev % 5).expect("codes 0..5 are valid"),
            success: bytes % 2 == 1,
        }),
    }
}

/// Arbitrary record specs: timestamps mix in-order and out-of-order
/// arrivals and byte counts cross the narrow-column escape threshold.
fn specs() -> impl Strategy<Value = Vec<RecordSpec>> {
    proptest::collection::vec(
        (0u8..6, 0u8..9, 0u64..20_000_000_000, 0u8..20, 0u8..16, 0u64..1 << 40),
        0..300,
    )
}

fn register_all(collector: &Collector) {
    for router in ROUTERS {
        collector.register(RouterMeta {
            router: RouterId(router),
            country: Country::UnitedStates,
            traffic_consent: true,
        });
    }
}

/// Ingest the same stream into a spilled and an unbounded collector in the
/// same chunked arrival order, then assert the merged data sets agree.
fn assert_spill_matches_memory(specs: Vec<RecordSpec>, batch: usize, budget: u64) {
    let records: Vec<Record> = specs.into_iter().map(record_from).collect();
    let spilled = Collector::new();
    spilled
        .set_spill(&SpillConfig { budget_bytes: budget, dir: None })
        .expect("spill dir creation");
    let unbounded = Collector::new();
    for c in [&spilled, &unbounded] {
        register_all(c);
        for chunk in records.chunks(batch.max(1)) {
            c.ingest_batch(chunk.to_vec());
        }
    }
    let stats = spilled.spill_stats().expect("spilling armed");
    assert_eq!(stats.error, None, "segment I/O must not fail");
    if budget == 0 && !records.is_empty() {
        assert!(stats.segments > 0, "budget 0 must seal every non-empty batch");
    }

    // snapshot() merges while the collector stays live; into_datasets()
    // merges again as a fresh generation. Both must equal the in-memory
    // model, row for row.
    let snap = spilled.snapshot();
    let owned = spilled.into_datasets();
    let model = unbounded.into_datasets();
    for got in [&snap, &owned] {
        assert_eq!(got.packet_stats, model.packet_stats);
        assert_eq!(got.flows, model.flows);
        assert_eq!(got.dns, model.dns);
        assert_eq!(got.macs, model.macs);
        assert_eq!(got.wifi, model.wifi);
        assert_eq!(got.associations, model.associations);
        assert_eq!(got.latency, model.latency);
        assert_eq!(got.nat_probes, model.nat_probes);
        assert_eq!(got.punch_trials, model.punch_trials);
    }
    assert_eq!(
        snap.flows.iter().collect::<Vec<_>>(),
        model.flows.iter().collect::<Vec<_>>(),
        "spilled per-row iteration must match the in-memory merge"
    );
    for router in ROUTERS {
        assert_eq!(
            snap.packet_stats.router(RouterId(router)).collect::<Vec<_>>(),
            model.packet_stats.router(RouterId(router)).collect::<Vec<_>>(),
        );
        assert_eq!(
            snap.wifi.router(RouterId(router)).collect::<Vec<_>>(),
            model.wifi.router(RouterId(router)).collect::<Vec<_>>(),
        );
        assert_eq!(
            snap.latency.router(RouterId(router)).collect::<Vec<_>>(),
            model.latency.router(RouterId(router)).collect::<Vec<_>>(),
        );
        assert_eq!(
            snap.nat_probes.router(RouterId(router)).collect::<Vec<_>>(),
            model.nat_probes.router(RouterId(router)).collect::<Vec<_>>(),
        );
        assert_eq!(
            snap.punch_trials.router(RouterId(router)).collect::<Vec<_>>(),
            model.punch_trials.router(RouterId(router)).collect::<Vec<_>>(),
        );
    }
}

proptest! {
    #[test]
    fn spill_merge_equals_in_memory_model(
        specs in specs(),
        batch in 1usize..64,
        budget in prop_oneof![Just(0u64), 1u64..8192],
    ) {
        assert_spill_matches_memory(specs, batch, budget);
    }

    #[test]
    fn spill_everything_budget_zero_equals_in_memory_model(
        specs in specs(),
        batch in 1usize..16,
    ) {
        assert_spill_matches_memory(specs, batch, 0);
    }
}
