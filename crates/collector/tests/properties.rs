//! Property-based tests for the collector: run-length heartbeat log
//! invariants under arbitrary arrival patterns.

use collector::RunLog;
use proptest::prelude::*;
use simnet::time::{SimDuration, SimTime};

fn log_from_minutes(minutes: &[u64]) -> RunLog {
    let mut sorted: Vec<u64> = minutes.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut log = RunLog::new();
    for m in sorted {
        log.push(SimTime::EPOCH + SimDuration::from_mins(m));
    }
    log
}

proptest! {
    #[test]
    fn total_heartbeats_preserved(minutes in proptest::collection::vec(0u64..100_000, 1..500)) {
        let mut dedup = minutes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        let log = log_from_minutes(&minutes);
        prop_assert_eq!(log.total_heartbeats() as usize, dedup.len());
    }

    #[test]
    fn runs_disjoint_ordered_and_gapped(minutes in proptest::collection::vec(0u64..100_000, 1..500)) {
        let log = log_from_minutes(&minutes);
        for pair in log.runs().windows(2) {
            prop_assert!(pair[0].last < pair[1].first);
            // Consecutive runs are separated by more than the tolerance.
            prop_assert!(
                pair[1].first.since(pair[0].last) > SimDuration::from_mins(3),
                "runs separated by <= tolerance should have merged"
            );
        }
    }

    #[test]
    fn downtimes_never_overlap_runs(minutes in proptest::collection::vec(0u64..50_000, 1..300)) {
        let log = log_from_minutes(&minutes);
        let start = SimTime::EPOCH;
        let end = SimTime::EPOCH + SimDuration::from_mins(50_000);
        let gaps = log.downtimes(start, end, SimDuration::from_mins(10));
        for (gs, ge) in &gaps {
            prop_assert!(ge > gs);
            prop_assert!(ge.since(*gs) >= SimDuration::from_mins(10));
            for run in log.runs() {
                // A gap may touch a run at its endpoints but never overlap
                // its interior.
                prop_assert!(*ge <= run.first || *gs >= run.last);
            }
        }
        // Gaps are ordered and disjoint.
        for pair in gaps.windows(2) {
            prop_assert!(pair[0].1 <= pair[1].0);
        }
    }

    #[test]
    fn coverage_bounded_and_monotone(minutes in proptest::collection::vec(0u64..10_000, 1..300)) {
        let log = log_from_minutes(&minutes);
        let start = SimTime::EPOCH;
        let end = SimTime::EPOCH + SimDuration::from_mins(10_001);
        let cov = log.coverage(start, end);
        prop_assert!((0.0..=1.0).contains(&cov));
        // Coverage over a window containing everything >= coverage over a
        // larger window (same covered time, larger denominator).
        let wider = log.coverage(start, end + SimDuration::from_mins(10_000));
        prop_assert!(wider <= cov + 1e-12);
    }

    #[test]
    fn downtime_plus_runs_cover_window(minutes in proptest::collection::vec(0u64..20_000, 1..200)) {
        // With threshold 0 every non-run moment is downtime, so runs+gaps
        // tile the window exactly.
        let log = log_from_minutes(&minutes);
        let start = SimTime::EPOCH;
        let end = SimTime::EPOCH + SimDuration::from_mins(20_001);
        let gaps = log.downtimes(start, end, SimDuration::from_micros(1));
        let gap_total: SimDuration = gaps
            .iter()
            .fold(SimDuration::ZERO, |acc, (s, e)| acc + e.since(*s));
        let run_total: SimDuration = log
            .runs()
            .iter()
            .fold(SimDuration::ZERO, |acc, r| acc + r.span());
        prop_assert_eq!(gap_total + run_total, end.since(start));
    }
}
