//! The central collection server: router registration, record ingestion
//! (including wire-level heartbeat packets), and snapshotting the six data
//! sets for analysis.
//!
//! The server is thread-safe behind a [`parking_lot::Mutex`] because the
//! study simulates independent homes on parallel threads, all uploading to
//! one collector — the same topology as the deployment.

use crate::runlog::RunLog;
use firmware::heartbeat::Heartbeat;
use firmware::records::{
    AssociationRecord, CapacityRecord, DeviceCensusRecord, DnsSampleRecord, FlowRecord,
    HeartbeatRecord, MacSightingRecord, PacketStatsRecord, Record, RouterId, UptimeRecord,
    WifiScanRecord,
};
use household::Country;
use parking_lot::Mutex;
use simnet::packet::ParseError;
use simnet::time::SimTime;
use std::collections::HashMap;

/// Registration metadata for one router (what the deployment knew about
/// each shipped unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RouterMeta {
    /// The router.
    pub router: RouterId,
    /// The country it shipped to.
    pub country: Country,
    /// Whether the household signed the Traffic consent form.
    pub traffic_consent: bool,
}

/// An immutable snapshot of everything collected, handed to the analysis.
#[derive(Debug, Clone, Default)]
pub struct Datasets {
    /// Router registration metadata.
    pub routers: Vec<RouterMeta>,
    /// Compressed heartbeat logs per router.
    pub heartbeats: HashMap<RouterId, RunLog>,
    /// Uptime reports.
    pub uptime: Vec<UptimeRecord>,
    /// Capacity measurements.
    pub capacity: Vec<CapacityRecord>,
    /// Hourly device censuses.
    pub devices: Vec<DeviceCensusRecord>,
    /// WiFi scans.
    pub wifi: Vec<WifiScanRecord>,
    /// Per-second packet statistics (Traffic).
    pub packet_stats: Vec<PacketStatsRecord>,
    /// Flow records (Traffic).
    pub flows: Vec<FlowRecord>,
    /// DNS samples (Traffic).
    pub dns: Vec<DnsSampleRecord>,
    /// MAC sightings (Traffic).
    pub macs: Vec<MacSightingRecord>,
    /// Hourly per-device association reports (Devices companion).
    pub associations: Vec<AssociationRecord>,
    /// Latency probes (platform companion data set).
    pub latency: Vec<firmware::latency::LatencyRecord>,
}

impl Datasets {
    /// Metadata for one router, if registered.
    pub fn meta(&self, router: RouterId) -> Option<&RouterMeta> {
        self.routers.iter().find(|m| m.router == router)
    }

    /// Routers in the Traffic data set (consented).
    pub fn traffic_routers(&self) -> Vec<RouterId> {
        self.routers.iter().filter(|m| m.traffic_consent).map(|m| m.router).collect()
    }

    /// Total records across all sets (diagnostic).
    pub fn record_count(&self) -> usize {
        self.heartbeats.values().map(|l| l.total_heartbeats() as usize).sum::<usize>()
            + self.uptime.len()
            + self.capacity.len()
            + self.devices.len()
            + self.wifi.len()
            + self.packet_stats.len()
            + self.flows.len()
            + self.dns.len()
            + self.macs.len()
            + self.associations.len()
            + self.latency.len()
    }
}

#[derive(Debug, Default)]
struct Inner {
    data: Datasets,
    rejected_heartbeats: u64,
    /// Windows during which the collection infrastructure itself was down
    /// (§3.3: "various outages and failures — both of the routers
    /// themselves and of the collection infrastructure"). Records arriving
    /// inside one are lost, exactly as on the deployment.
    outages: Vec<crate::windows::Window>,
    dropped_in_outage: u64,
}

impl Inner {
    fn in_outage(&self, at: SimTime) -> bool {
        self.outages.iter().any(|w| w.contains(at))
    }
}

/// The collection server.
#[derive(Debug, Default)]
pub struct Collector {
    inner: Mutex<Inner>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Collector {
        Collector::default()
    }

    /// Register a shipped router.
    pub fn register(&self, meta: RouterMeta) {
        self.inner.lock().data.routers.push(meta);
    }

    /// Inject collection-infrastructure outages: any record whose
    /// timestamp falls inside one of these windows is silently lost.
    pub fn set_outages(&self, outages: Vec<crate::windows::Window>) {
        self.inner.lock().outages = outages;
    }

    /// Records lost to collector-side outages so far.
    pub fn dropped_in_outage(&self) -> u64 {
        self.inner.lock().dropped_in_outage
    }

    /// Ingest a heartbeat that arrived as a raw packet: parse, validate,
    /// and log. Malformed packets are counted and dropped, as a real
    /// server would.
    pub fn ingest_heartbeat_wire(&self, at: SimTime, wire: &[u8]) -> Result<(), ParseError> {
        match Heartbeat::parse(wire) {
            Ok((hb, _src)) => {
                let mut inner = self.inner.lock();
                if inner.in_outage(at) {
                    inner.dropped_in_outage += 1;
                    return Ok(());
                }
                inner.data.heartbeats.entry(hb.router).or_default().push(at);
                Ok(())
            }
            Err(e) => {
                self.inner.lock().rejected_heartbeats += 1;
                Err(e)
            }
        }
    }

    /// Ingest an already-parsed heartbeat record (the fast path the home
    /// simulations use for the bulk of the six-month log; a sampled subset
    /// goes through [`Collector::ingest_heartbeat_wire`] to keep the wire
    /// path honest).
    pub fn ingest_heartbeat(&self, rec: HeartbeatRecord) {
        let mut inner = self.inner.lock();
        if inner.in_outage(rec.at) {
            inner.dropped_in_outage += 1;
            return;
        }
        inner.data.heartbeats.entry(rec.router).or_default().push(rec.at);
    }

    /// Ingest any other record.
    pub fn ingest(&self, record: Record) {
        let mut inner = self.inner.lock();
        if inner.in_outage(record.at()) {
            inner.dropped_in_outage += 1;
            return;
        }
        match record {
            Record::Heartbeat(r) => {
                inner.data.heartbeats.entry(r.router).or_default().push(r.at)
            }
            Record::Uptime(r) => inner.data.uptime.push(r),
            Record::Capacity(r) => inner.data.capacity.push(r),
            Record::DeviceCensus(r) => inner.data.devices.push(r),
            Record::WifiScan(r) => inner.data.wifi.push(r),
            Record::PacketStats(r) => inner.data.packet_stats.push(r),
            Record::Flow(r) => inner.data.flows.push(r),
            Record::DnsSample(r) => inner.data.dns.push(r),
            Record::MacSighting(r) => inner.data.macs.push(r),
            Record::Association(r) => inner.data.associations.push(r),
            Record::Latency(r) => inner.data.latency.push(r),
        }
    }

    /// Ingest a batch (one lock acquisition).
    pub fn ingest_batch(&self, records: Vec<Record>) {
        let mut inner = self.inner.lock();
        for record in records {
            if inner.in_outage(record.at()) {
                inner.dropped_in_outage += 1;
                continue;
            }
            match record {
                Record::Heartbeat(r) => {
                    inner.data.heartbeats.entry(r.router).or_default().push(r.at)
                }
                Record::Uptime(r) => inner.data.uptime.push(r),
                Record::Capacity(r) => inner.data.capacity.push(r),
                Record::DeviceCensus(r) => inner.data.devices.push(r),
                Record::WifiScan(r) => inner.data.wifi.push(r),
                Record::PacketStats(r) => inner.data.packet_stats.push(r),
                Record::Flow(r) => inner.data.flows.push(r),
                Record::DnsSample(r) => inner.data.dns.push(r),
                Record::MacSighting(r) => inner.data.macs.push(r),
                Record::Association(r) => inner.data.associations.push(r),
                Record::Latency(r) => inner.data.latency.push(r),
            }
        }
    }

    /// Malformed heartbeat packets rejected so far.
    pub fn rejected_heartbeats(&self) -> u64 {
        self.inner.lock().rejected_heartbeats
    }

    /// Snapshot everything collected so far. Records are sorted by
    /// (router, time) so snapshots are deterministic regardless of the
    /// upload interleaving across home threads.
    pub fn snapshot(&self) -> Datasets {
        let mut data = self.inner.lock().data.clone();
        data.routers.sort_by_key(|m| m.router);
        data.uptime.sort_by_key(|r| (r.router, r.at));
        data.capacity.sort_by_key(|r| (r.router, r.at));
        data.devices.sort_by_key(|r| (r.router, r.at));
        data.wifi.sort_by_key(|r| (r.router, r.at, r.band));
        data.packet_stats.sort_by_key(|r| (r.router, r.at));
        data.flows.sort_by_key(|r| (r.router, r.ended, r.started, r.device));
        data.dns.sort_by_key(|r| (r.router, r.at, r.device));
        data.macs.sort_by_key(|r| (r.router, r.first_seen, r.device));
        data.associations.sort_by_key(|r| (r.router, r.at, r.device, r.medium));
        data.latency.sort_by_key(|r| (r.router, r.at));
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::time::SimDuration;
    use std::net::Ipv4Addr;

    fn m(mins: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_mins(mins)
    }

    #[test]
    fn wire_heartbeats_accumulate_into_runs() {
        let collector = Collector::new();
        let wan = Ipv4Addr::new(100, 64, 0, 3);
        for i in 0..30u64 {
            let hb = Heartbeat { router: RouterId(9), seq: i };
            collector.ingest_heartbeat_wire(m(i), &hb.emit(wan)).unwrap();
        }
        let snap = collector.snapshot();
        let log = &snap.heartbeats[&RouterId(9)];
        assert_eq!(log.runs().len(), 1);
        assert_eq!(log.total_heartbeats(), 30);
    }

    #[test]
    fn malformed_heartbeats_rejected_and_counted() {
        let collector = Collector::new();
        assert!(collector.ingest_heartbeat_wire(m(0), &[0u8; 44]).is_err());
        assert_eq!(collector.rejected_heartbeats(), 1);
        assert!(collector.snapshot().heartbeats.is_empty());
    }

    #[test]
    fn records_routed_to_their_sets() {
        let collector = Collector::new();
        collector.ingest(Record::Uptime(UptimeRecord {
            router: RouterId(1),
            at: m(5),
            uptime: SimDuration::from_mins(5),
        }));
        collector.ingest(Record::DeviceCensus(DeviceCensusRecord {
            router: RouterId(1),
            at: m(60),
            wired: 1,
            wireless_24: 3,
            wireless_5: 1,
        }));
        let snap = collector.snapshot();
        assert_eq!(snap.uptime.len(), 1);
        assert_eq!(snap.devices.len(), 1);
        assert_eq!(snap.record_count(), 2);
    }

    #[test]
    fn snapshot_is_sorted_despite_interleaving() {
        let collector = Collector::new();
        for (router, at) in [(2u32, 100u64), (1, 50), (2, 10), (1, 200)] {
            collector.ingest(Record::Uptime(UptimeRecord {
                router: RouterId(router),
                at: m(at),
                uptime: SimDuration::ZERO,
            }));
        }
        let snap = collector.snapshot();
        let order: Vec<(u32, SimTime)> = snap.uptime.iter().map(|r| (r.router.0, r.at)).collect();
        assert_eq!(order, vec![(1, m(50)), (1, m(200)), (2, m(10)), (2, m(100))]);
    }

    #[test]
    fn parallel_ingest_is_safe() {
        let collector = Collector::new();
        crossbeam::scope(|scope| {
            for router in 0..8u32 {
                let collector = &collector;
                scope.spawn(move |_| {
                    for i in 0..1_000u64 {
                        collector.ingest_heartbeat(HeartbeatRecord {
                            router: RouterId(router),
                            at: m(i),
                        });
                    }
                });
            }
        })
        .expect("threads join");
        let snap = collector.snapshot();
        assert_eq!(snap.heartbeats.len(), 8);
        for log in snap.heartbeats.values() {
            assert_eq!(log.total_heartbeats(), 1_000);
        }
    }

    #[test]
    fn collector_outage_swallows_records() {
        use crate::windows::Window;
        let collector = Collector::new();
        collector.set_outages(vec![Window { start: m(10), end: m(20) }]);
        for i in 0..30u64 {
            collector.ingest_heartbeat(HeartbeatRecord { router: RouterId(0), at: m(i) });
        }
        let snap = collector.snapshot();
        assert_eq!(snap.heartbeats[&RouterId(0)].total_heartbeats(), 20);
        assert_eq!(collector.dropped_in_outage(), 10);
        // The gap in the log matches the outage window.
        let gaps = snap.heartbeats[&RouterId(0)].downtimes(
            m(0),
            m(30),
            SimDuration::from_mins(5),
        );
        assert_eq!(gaps, vec![(m(9), m(20))]);
    }

    #[test]
    fn registration_and_consent_lookup() {
        let collector = Collector::new();
        collector.register(RouterMeta {
            router: RouterId(3),
            country: Country::UnitedStates,
            traffic_consent: true,
        });
        collector.register(RouterMeta {
            router: RouterId(4),
            country: Country::India,
            traffic_consent: false,
        });
        let snap = collector.snapshot();
        assert_eq!(snap.traffic_routers(), vec![RouterId(3)]);
        assert_eq!(snap.meta(RouterId(4)).unwrap().country, Country::India);
    }
}
