//! The central collection server: router registration, record ingestion
//! (including wire-level heartbeat packets), and snapshotting the six data
//! sets for analysis.
//!
//! The server shards its mutable state by router: each [`RouterId`] maps to
//! one of [`NUM_SHARDS`] independently locked shards, so home simulations
//! running on parallel threads never contend on the bulk upload path (homes
//! never share a router ID, and the 126-router deployment maps onto 128
//! shards collision-free). Snapshotting merges the shards back into one
//! deterministic, (router, time)-sorted [`Datasets`] — concatenating
//! already-ordered shard runs where possible and falling back to a stable
//! sort otherwise — so the result is bit-identical regardless of how many
//! threads uploaded.

use crate::runlog::RunLog;
use firmware::heartbeat::Heartbeat;
use firmware::records::{
    AssociationRecord, CapacityRecord, DeviceCensusRecord, DnsSampleRecord, FlowRecord,
    HeartbeatRecord, MacSightingRecord, PacketStatsRecord, Record, RouterId, UptimeRecord,
    WifiScanRecord,
};
use household::Country;
use parking_lot::Mutex;
use simnet::packet::ParseError;
use simnet::time::SimTime;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of independently locked ingestion shards. A power of two larger
/// than the deployment so the study's 126 routers land on distinct shards.
pub const NUM_SHARDS: usize = 128;

fn shard_index(router: RouterId) -> usize {
    router.0 as usize % NUM_SHARDS
}

/// Registration metadata for one router (what the deployment knew about
/// each shipped unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RouterMeta {
    /// The router.
    pub router: RouterId,
    /// The country it shipped to.
    pub country: Country,
    /// Whether the household signed the Traffic consent form.
    pub traffic_consent: bool,
}

/// An immutable snapshot of everything collected, handed to the analysis.
#[derive(Debug, Clone, Default)]
pub struct Datasets {
    /// Router registration metadata, sorted by router ID.
    pub routers: Vec<RouterMeta>,
    /// Compressed heartbeat logs per router.
    pub heartbeats: HashMap<RouterId, RunLog>,
    /// Uptime reports.
    pub uptime: Vec<UptimeRecord>,
    /// Capacity measurements.
    pub capacity: Vec<CapacityRecord>,
    /// Hourly device censuses.
    pub devices: Vec<DeviceCensusRecord>,
    /// WiFi scans.
    pub wifi: Vec<WifiScanRecord>,
    /// Per-second packet statistics (Traffic).
    pub packet_stats: Vec<PacketStatsRecord>,
    /// Flow records (Traffic).
    pub flows: Vec<FlowRecord>,
    /// DNS samples (Traffic).
    pub dns: Vec<DnsSampleRecord>,
    /// MAC sightings (Traffic).
    pub macs: Vec<MacSightingRecord>,
    /// Hourly per-device association reports (Devices companion).
    pub associations: Vec<AssociationRecord>,
    /// Latency probes (platform companion data set).
    pub latency: Vec<firmware::latency::LatencyRecord>,
}

impl Datasets {
    /// Metadata for one router, if registered. Snapshots keep `routers`
    /// sorted by ID, so this is a binary search, not a linear scan.
    pub fn meta(&self, router: RouterId) -> Option<&RouterMeta> {
        self.routers
            .binary_search_by_key(&router, |m| m.router)
            .ok()
            .map(|i| &self.routers[i])
    }

    /// Routers in the Traffic data set (consented).
    pub fn traffic_routers(&self) -> Vec<RouterId> {
        self.routers.iter().filter(|m| m.traffic_consent).map(|m| m.router).collect()
    }

    /// Total records across all sets (diagnostic).
    pub fn record_count(&self) -> usize {
        self.heartbeats.values().map(|l| l.total_heartbeats() as usize).sum::<usize>()
            + self.uptime.len()
            + self.capacity.len()
            + self.devices.len()
            + self.wifi.len()
            + self.packet_stats.len()
            + self.flows.len()
            + self.dns.len()
            + self.macs.len()
            + self.associations.len()
            + self.latency.len()
    }
}

/// One shard's worth of collected state: the same tables as [`Datasets`]
/// minus registration (which is global and rare), plus this shard's copy of
/// the outage schedule so the hot path never reaches for shared state.
#[derive(Debug, Default)]
struct Shard {
    heartbeats: HashMap<RouterId, RunLog>,
    uptime: Vec<UptimeRecord>,
    capacity: Vec<CapacityRecord>,
    devices: Vec<DeviceCensusRecord>,
    wifi: Vec<WifiScanRecord>,
    packet_stats: Vec<PacketStatsRecord>,
    flows: Vec<FlowRecord>,
    dns: Vec<DnsSampleRecord>,
    macs: Vec<MacSightingRecord>,
    associations: Vec<AssociationRecord>,
    latency: Vec<firmware::latency::LatencyRecord>,
    /// Windows during which the collection infrastructure itself was down
    /// (§3.3: "various outages and failures — both of the routers
    /// themselves and of the collection infrastructure"). Records arriving
    /// inside one are lost, exactly as on the deployment.
    outages: Vec<crate::windows::Window>,
    dropped_in_outage: u64,
}

impl Shard {
    fn in_outage(&self, at: SimTime) -> bool {
        self.outages.iter().any(|w| w.contains(at))
    }

    /// Append a record to its table, with no outage check.
    fn route(&mut self, record: Record) {
        match record {
            Record::Heartbeat(r) => self.heartbeats.entry(r.router).or_default().push(r.at),
            Record::Uptime(r) => self.uptime.push(r),
            Record::Capacity(r) => self.capacity.push(r),
            Record::DeviceCensus(r) => self.devices.push(r),
            Record::WifiScan(r) => self.wifi.push(r),
            Record::PacketStats(r) => self.packet_stats.push(r),
            Record::Flow(r) => self.flows.push(r),
            Record::DnsSample(r) => self.dns.push(r),
            Record::MacSighting(r) => self.macs.push(r),
            Record::Association(r) => self.associations.push(r),
            Record::Latency(r) => self.latency.push(r),
        }
    }

    fn ingest(&mut self, record: Record) {
        if !self.outages.is_empty() && self.in_outage(record.at()) {
            self.dropped_in_outage += 1;
            return;
        }
        self.route(record);
    }

    /// Batch ingestion: the outage-schedule check is hoisted out of the
    /// record loop, so the common no-outage configuration never re-scans
    /// the (empty) window list per record.
    fn ingest_many(&mut self, records: impl IntoIterator<Item = Record>) {
        if self.outages.is_empty() {
            for record in records {
                self.route(record);
            }
        } else {
            for record in records {
                if self.in_outage(record.at()) {
                    self.dropped_in_outage += 1;
                } else {
                    self.route(record);
                }
            }
        }
    }

    fn ingest_heartbeat(&mut self, rec: HeartbeatRecord) {
        if !self.outages.is_empty() && self.in_outage(rec.at) {
            self.dropped_in_outage += 1;
            return;
        }
        self.heartbeats.entry(rec.router).or_default().push(rec.at);
    }
}

/// The collection server.
#[derive(Debug)]
pub struct Collector {
    shards: Vec<Mutex<Shard>>,
    routers: Mutex<Vec<RouterMeta>>,
    rejected_heartbeats: AtomicU64,
}

impl Default for Collector {
    fn default() -> Collector {
        Collector {
            shards: (0..NUM_SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            routers: Mutex::new(Vec::new()),
            rejected_heartbeats: AtomicU64::new(0),
        }
    }
}

/// A borrowed handle onto the shard owning one router's records. Home
/// simulations grab one before their upload loop so the bulk path is a
/// single uncontended lock per flush, with no per-record shard routing.
#[derive(Debug, Clone, Copy)]
pub struct ShardHandle<'a> {
    shard: &'a Mutex<Shard>,
}

impl ShardHandle<'_> {
    /// Ingest one record. The caller is responsible for only sending
    /// records belonging to this handle's shard.
    pub fn ingest(&self, record: Record) {
        self.shard.lock().ingest(record);
    }

    /// Ingest a batch under one lock acquisition.
    pub fn ingest_batch(&self, records: Vec<Record>) {
        if records.is_empty() {
            return;
        }
        self.shard.lock().ingest_many(records);
    }

    /// Ingest by draining the caller's buffer under one lock acquisition.
    /// The buffer is left empty with its capacity intact, so a simulation
    /// flushing every few thousand records reuses one allocation for the
    /// whole run.
    pub fn ingest_drain(&self, records: &mut Vec<Record>) {
        if records.is_empty() {
            return;
        }
        self.shard.lock().ingest_many(records.drain(..));
    }

    /// Ingest an already-parsed heartbeat record.
    pub fn ingest_heartbeat(&self, rec: HeartbeatRecord) {
        self.shard.lock().ingest_heartbeat(rec);
    }
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Collector {
        Collector::default()
    }

    /// The ingestion handle for one router's shard.
    pub fn shard_handle(&self, router: RouterId) -> ShardHandle<'_> {
        ShardHandle { shard: &self.shards[shard_index(router)] }
    }

    /// Register a shipped router.
    pub fn register(&self, meta: RouterMeta) {
        self.routers.lock().push(meta);
    }

    /// Inject collection-infrastructure outages: any record whose
    /// timestamp falls inside one of these windows is silently lost.
    /// Each shard keeps its own copy so the hot path stays lock-local.
    pub fn set_outages(&self, outages: Vec<crate::windows::Window>) {
        for shard in &self.shards {
            shard.lock().outages = outages.clone();
        }
    }

    /// Records lost to collector-side outages so far.
    pub fn dropped_in_outage(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().dropped_in_outage).sum()
    }

    /// Ingest a heartbeat that arrived as a raw packet: parse, validate,
    /// and log. Malformed packets are counted and dropped, as a real
    /// server would — the reject counter is a lock-free atomic, so the
    /// error path never touches a shard lock.
    pub fn ingest_heartbeat_wire(&self, at: SimTime, wire: &[u8]) -> Result<(), ParseError> {
        match Heartbeat::parse(wire) {
            Ok((hb, _src)) => {
                self.shards[shard_index(hb.router)]
                    .lock()
                    .ingest_heartbeat(HeartbeatRecord { router: hb.router, at });
                Ok(())
            }
            Err(e) => {
                self.rejected_heartbeats.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Ingest an already-parsed heartbeat record (the fast path the home
    /// simulations use for the bulk of the six-month log; a sampled subset
    /// goes through [`Collector::ingest_heartbeat_wire`] to keep the wire
    /// path honest).
    pub fn ingest_heartbeat(&self, rec: HeartbeatRecord) {
        self.shards[shard_index(rec.router)].lock().ingest_heartbeat(rec);
    }

    /// Ingest any other record.
    pub fn ingest(&self, record: Record) {
        self.shards[shard_index(record.router())].lock().ingest(record);
    }

    /// Ingest a batch. Runs of consecutive records for the same shard are
    /// ingested under one lock acquisition; a single-router batch (what
    /// home simulations upload) locks exactly once.
    pub fn ingest_batch(&self, records: Vec<Record>) {
        let mut records = records.into_iter().peekable();
        while let Some(first) = records.next() {
            let idx = shard_index(first.router());
            let mut shard = self.shards[idx].lock();
            shard.ingest(first);
            while records.peek().map(|r| shard_index(r.router())) == Some(idx) {
                shard.ingest(records.next().expect("peeked"));
            }
        }
    }

    /// Malformed heartbeat packets rejected so far.
    pub fn rejected_heartbeats(&self) -> u64 {
        self.rejected_heartbeats.load(Ordering::Relaxed)
    }

    /// Snapshot everything collected so far, without disturbing ongoing
    /// ingestion. Records are cloned out of each shard and merged sorted by
    /// (router, time), so snapshots are deterministic regardless of the
    /// upload interleaving across home threads. Finished callers should
    /// prefer [`Collector::into_datasets`], which skips the clone.
    pub fn snapshot(&self) -> Datasets {
        let chunks: Vec<ShardChunk> = self
            .shards
            .iter()
            .map(|s| {
                let shard = s.lock();
                ShardChunk {
                    heartbeats: shard.heartbeats.clone(),
                    uptime: shard.uptime.clone(),
                    capacity: shard.capacity.clone(),
                    devices: shard.devices.clone(),
                    wifi: shard.wifi.clone(),
                    packet_stats: shard.packet_stats.clone(),
                    flows: shard.flows.clone(),
                    dns: shard.dns.clone(),
                    macs: shard.macs.clone(),
                    associations: shard.associations.clone(),
                    latency: shard.latency.clone(),
                }
            })
            .collect();
        merge_chunks(self.routers.lock().clone(), chunks)
    }

    /// Consume the collector and merge every shard into one sorted
    /// [`Datasets`] without cloning a single record. The per-table merges
    /// run on scoped threads, and shards that are already internally
    /// ordered with disjoint router ranges (the steady-state shape, since
    /// every router maps to one shard and emits chronologically)
    /// concatenate in O(n) instead of re-sorting.
    pub fn into_datasets(self) -> Datasets {
        let chunks: Vec<ShardChunk> = self
            .shards
            .into_iter()
            .map(|s| {
                let shard = s.into_inner();
                ShardChunk {
                    heartbeats: shard.heartbeats,
                    uptime: shard.uptime,
                    capacity: shard.capacity,
                    devices: shard.devices,
                    wifi: shard.wifi,
                    packet_stats: shard.packet_stats,
                    flows: shard.flows,
                    dns: shard.dns,
                    macs: shard.macs,
                    associations: shard.associations,
                    latency: shard.latency,
                }
            })
            .collect();
        merge_chunks(self.routers.into_inner(), chunks)
    }
}

/// The movable per-shard table set fed into the merge.
struct ShardChunk {
    heartbeats: HashMap<RouterId, RunLog>,
    uptime: Vec<UptimeRecord>,
    capacity: Vec<CapacityRecord>,
    devices: Vec<DeviceCensusRecord>,
    wifi: Vec<WifiScanRecord>,
    packet_stats: Vec<PacketStatsRecord>,
    flows: Vec<FlowRecord>,
    dns: Vec<DnsSampleRecord>,
    macs: Vec<MacSightingRecord>,
    associations: Vec<AssociationRecord>,
    latency: Vec<firmware::latency::LatencyRecord>,
}

/// Merge per-shard chunks of one table into a single sorted table.
///
/// Fast path: if every chunk is internally non-decreasing by `key` and the
/// chunks' key ranges don't overlap once ordered by first key, the sorted
/// result is just their concatenation — O(n) moves, no comparison sort.
/// Every per-table sort key here starts with the router ID and each router
/// lives on exactly one shard, so shards whose records were emitted in
/// order hit this path. Otherwise fall back to concatenation plus a stable
/// sort (run-adaptive, so nearly-sorted input stays cheap). Chunks arrive
/// in shard-index order, which is a pure function of router ID — never of
/// thread schedule — so both paths are deterministic.
fn merge_table<T, K: Ord, F: Fn(&T) -> K>(mut chunks: Vec<Vec<T>>, key: F) -> Vec<T> {
    chunks.retain(|c| !c.is_empty());
    if chunks.is_empty() {
        return Vec::new();
    }
    chunks.sort_by(|a, b| key(&a[0]).cmp(&key(&b[0])));
    let sorted_disjoint = chunks.iter().all(|c| c.windows(2).all(|w| key(&w[0]) <= key(&w[1])))
        && chunks.windows(2).all(|w| key(w[0].last().expect("non-empty")) <= key(&w[1][0]));
    let total = chunks.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for chunk in chunks {
        out.extend(chunk);
    }
    if !sorted_disjoint {
        out.sort_by(|a, b| key(a).cmp(&key(b)));
    }
    out
}

fn merge_chunks(mut routers: Vec<RouterMeta>, chunks: Vec<ShardChunk>) -> Datasets {
    let mut uptime = Vec::new();
    let mut capacity = Vec::new();
    let mut devices = Vec::new();
    let mut wifi = Vec::new();
    let mut packet_stats = Vec::new();
    let mut flows = Vec::new();
    let mut dns = Vec::new();
    let mut macs = Vec::new();
    let mut associations = Vec::new();
    let mut latency = Vec::new();
    let mut heartbeats: HashMap<RouterId, RunLog> = HashMap::new();
    for chunk in chunks {
        uptime.push(chunk.uptime);
        capacity.push(chunk.capacity);
        devices.push(chunk.devices);
        wifi.push(chunk.wifi);
        packet_stats.push(chunk.packet_stats);
        flows.push(chunk.flows);
        dns.push(chunk.dns);
        macs.push(chunk.macs);
        associations.push(chunk.associations);
        latency.push(chunk.latency);
        // Routers are partitioned across shards, so no key collides.
        heartbeats.extend(chunk.heartbeats);
    }
    routers.sort_by_key(|m| m.router);

    let mut data = Datasets { routers, heartbeats, ..Datasets::default() };
    // The per-table merges are independent; run them on scoped threads so a
    // snapshot of a 33M-record study sorts all ten tables concurrently.
    crossbeam::scope(|scope| {
        let uptime = scope.spawn(|_| merge_table(uptime, |r: &UptimeRecord| (r.router, r.at)));
        let capacity =
            scope.spawn(|_| merge_table(capacity, |r: &CapacityRecord| (r.router, r.at)));
        let devices =
            scope.spawn(|_| merge_table(devices, |r: &DeviceCensusRecord| (r.router, r.at)));
        let wifi =
            scope.spawn(|_| merge_table(wifi, |r: &WifiScanRecord| (r.router, r.at, r.band)));
        let packet_stats = scope
            .spawn(|_| merge_table(packet_stats, |r: &PacketStatsRecord| (r.router, r.at)));
        let flows = scope.spawn(|_| {
            merge_table(flows, |r: &FlowRecord| (r.router, r.ended, r.started, r.device))
        });
        let dns =
            scope.spawn(|_| merge_table(dns, |r: &DnsSampleRecord| (r.router, r.at, r.device)));
        let macs = scope.spawn(|_| {
            merge_table(macs, |r: &MacSightingRecord| (r.router, r.first_seen, r.device))
        });
        let associations = scope.spawn(|_| {
            merge_table(associations, |r: &AssociationRecord| {
                (r.router, r.at, r.device, r.medium)
            })
        });
        let latency = scope.spawn(|_| {
            merge_table(latency, |r: &firmware::latency::LatencyRecord| (r.router, r.at))
        });
        data.uptime = uptime.join().expect("merge uptime");
        data.capacity = capacity.join().expect("merge capacity");
        data.devices = devices.join().expect("merge devices");
        data.wifi = wifi.join().expect("merge wifi");
        data.packet_stats = packet_stats.join().expect("merge packet_stats");
        data.flows = flows.join().expect("merge flows");
        data.dns = dns.join().expect("merge dns");
        data.macs = macs.join().expect("merge macs");
        data.associations = associations.join().expect("merge associations");
        data.latency = latency.join().expect("merge latency");
    })
    .expect("merge threads join");
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::time::SimDuration;
    use std::net::Ipv4Addr;

    fn m(mins: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_mins(mins)
    }

    #[test]
    fn wire_heartbeats_accumulate_into_runs() {
        let collector = Collector::new();
        let wan = Ipv4Addr::new(100, 64, 0, 3);
        for i in 0..30u64 {
            let hb = Heartbeat { router: RouterId(9), seq: i };
            collector.ingest_heartbeat_wire(m(i), &hb.emit(wan)).unwrap();
        }
        let snap = collector.snapshot();
        let log = &snap.heartbeats[&RouterId(9)];
        assert_eq!(log.runs().len(), 1);
        assert_eq!(log.total_heartbeats(), 30);
    }

    #[test]
    fn malformed_heartbeats_rejected_and_counted() {
        let collector = Collector::new();
        assert!(collector.ingest_heartbeat_wire(m(0), &[0u8; 44]).is_err());
        assert_eq!(collector.rejected_heartbeats(), 1);
        assert!(collector.snapshot().heartbeats.is_empty());
    }

    #[test]
    fn records_routed_to_their_sets() {
        let collector = Collector::new();
        collector.ingest(Record::Uptime(UptimeRecord {
            router: RouterId(1),
            at: m(5),
            uptime: SimDuration::from_mins(5),
        }));
        collector.ingest(Record::DeviceCensus(DeviceCensusRecord {
            router: RouterId(1),
            at: m(60),
            wired: 1,
            wireless_24: 3,
            wireless_5: 1,
        }));
        let snap = collector.snapshot();
        assert_eq!(snap.uptime.len(), 1);
        assert_eq!(snap.devices.len(), 1);
        assert_eq!(snap.record_count(), 2);
    }

    #[test]
    fn snapshot_is_sorted_despite_interleaving() {
        let collector = Collector::new();
        for (router, at) in [(2u32, 100u64), (1, 50), (2, 10), (1, 200)] {
            collector.ingest(Record::Uptime(UptimeRecord {
                router: RouterId(router),
                at: m(at),
                uptime: SimDuration::ZERO,
            }));
        }
        let snap = collector.snapshot();
        let order: Vec<(u32, SimTime)> = snap.uptime.iter().map(|r| (r.router.0, r.at)).collect();
        assert_eq!(order, vec![(1, m(50)), (1, m(200)), (2, m(10)), (2, m(100))]);
    }

    #[test]
    fn shard_handle_matches_global_ingest() {
        let direct = Collector::new();
        let via_handle = Collector::new();
        let records: Vec<Record> = (0..100u64)
            .map(|i| {
                Record::Uptime(UptimeRecord {
                    router: RouterId(7),
                    at: m(i),
                    uptime: SimDuration::from_mins(i),
                })
            })
            .collect();
        direct.ingest_batch(records.clone());
        via_handle.shard_handle(RouterId(7)).ingest_batch(records);
        assert_eq!(direct.snapshot().uptime, via_handle.snapshot().uptime);
    }

    #[test]
    fn into_datasets_matches_snapshot() {
        let collector = Collector::new();
        collector.register(RouterMeta {
            router: RouterId(4),
            country: Country::India,
            traffic_consent: false,
        });
        collector.register(RouterMeta {
            router: RouterId(3),
            country: Country::UnitedStates,
            traffic_consent: true,
        });
        // Routers 130 and 2 collide with 2 mod 128: exercises the in-shard
        // stable-sort fallback as well as the disjoint fast path.
        for (router, at) in [(130u32, 5u64), (2, 9), (3, 1), (130, 7), (2, 4)] {
            collector.ingest(Record::Uptime(UptimeRecord {
                router: RouterId(router),
                at: m(at),
                uptime: SimDuration::ZERO,
            }));
        }
        // Heartbeat logs require chronological pushes per router.
        for (router, at) in [(2u32, 4u64), (2, 9), (3, 1), (130, 5), (130, 7)] {
            collector.ingest_heartbeat(HeartbeatRecord { router: RouterId(router), at: m(at) });
        }
        let snap = collector.snapshot();
        let owned = collector.into_datasets();
        assert_eq!(snap.routers, owned.routers);
        assert_eq!(snap.uptime, owned.uptime);
        assert_eq!(
            snap.uptime.iter().map(|r| (r.router.0, r.at)).collect::<Vec<_>>(),
            vec![(2, m(4)), (2, m(9)), (3, m(1)), (130, m(5)), (130, m(7))]
        );
        assert_eq!(snap.heartbeats.len(), owned.heartbeats.len());
        for (router, log) in &snap.heartbeats {
            assert_eq!(log.runs(), owned.heartbeats[router].runs());
        }
    }

    #[test]
    fn parallel_ingest_is_safe() {
        let collector = Collector::new();
        crossbeam::scope(|scope| {
            for router in 0..8u32 {
                let collector = &collector;
                scope.spawn(move |_| {
                    for i in 0..1_000u64 {
                        collector.ingest_heartbeat(HeartbeatRecord {
                            router: RouterId(router),
                            at: m(i),
                        });
                    }
                });
            }
        })
        .expect("threads join");
        let snap = collector.snapshot();
        assert_eq!(snap.heartbeats.len(), 8);
        for log in snap.heartbeats.values() {
            assert_eq!(log.total_heartbeats(), 1_000);
        }
    }

    #[test]
    fn collector_outage_swallows_records() {
        use crate::windows::Window;
        let collector = Collector::new();
        collector.set_outages(vec![Window { start: m(10), end: m(20) }]);
        for i in 0..30u64 {
            collector.ingest_heartbeat(HeartbeatRecord { router: RouterId(0), at: m(i) });
        }
        let snap = collector.snapshot();
        assert_eq!(snap.heartbeats[&RouterId(0)].total_heartbeats(), 20);
        assert_eq!(collector.dropped_in_outage(), 10);
        // The gap in the log matches the outage window.
        let gaps = snap.heartbeats[&RouterId(0)].downtimes(
            m(0),
            m(30),
            SimDuration::from_mins(5),
        );
        assert_eq!(gaps, vec![(m(9), m(20))]);
    }

    #[test]
    fn registration_and_consent_lookup() {
        let collector = Collector::new();
        collector.register(RouterMeta {
            router: RouterId(3),
            country: Country::UnitedStates,
            traffic_consent: true,
        });
        collector.register(RouterMeta {
            router: RouterId(4),
            country: Country::India,
            traffic_consent: false,
        });
        let snap = collector.snapshot();
        assert_eq!(snap.traffic_routers(), vec![RouterId(3)]);
        assert_eq!(snap.meta(RouterId(4)).unwrap().country, Country::India);
    }
}
