//! The central collection server: router registration, record ingestion
//! (including wire-level heartbeat packets), and snapshotting the six data
//! sets for analysis.
//!
//! The server shards its mutable state by router: each [`RouterId`] maps to
//! one of [`NUM_SHARDS`] independently locked shards, so home simulations
//! running on parallel threads never contend on the bulk upload path (homes
//! never share a router ID, and the 126-router deployment maps onto 128
//! shards collision-free). Snapshotting merges the shards back into one
//! deterministic, (router, time)-sorted [`Datasets`] — concatenating
//! already-ordered shard runs where possible and falling back to a stable
//! sort otherwise — so the result is bit-identical regardless of how many
//! threads uploaded.

use crate::columns::{
    AbsorbState, AssociationTable, DnsTable, FlowTable, LatencyTable, MacTable, NatProbeTable,
    PacketStatsTable, PunchTrialTable, WifiTable,
};
use crate::runlog::{RunLog, UploadCounters};
use crate::spill::{SealedSegment, SegmentStore, SpillConfig, SpillError, TableToc, SEGMENT_MAGIC};
use crate::windows::Window;
use firmware::heartbeat::Heartbeat;
use firmware::records::{
    CapacityRecord, DeviceCensusRecord, HeartbeatRecord, Record, RouterId, UptimeRecord,
};
use firmware::uploader::{GapCause, GapDecl};
use household::Country;
use parking_lot::Mutex;
use simnet::packet::ParseError;
use simnet::time::SimTime;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of independently locked ingestion shards. A power of two larger
/// than the deployment so the study's 126 routers land on distinct shards.
pub const NUM_SHARDS: usize = 128;

fn shard_index(router: RouterId) -> usize {
    router.0 as usize % NUM_SHARDS
}

/// Per-record growth estimates (bytes) for the seven columnar tables,
/// accumulated on the ingest path to decide when a shard crosses its spill
/// budget. These match the steady-state per-record costs documented in
/// [`crate::columns`], keeping the running estimate within a few percent of
/// `heap_bytes()` without walking the tables per record.
const EST_PACKET_STATS: usize = 28;
const EST_FLOW: usize = 40;
const EST_DNS: usize = 18;
const EST_MAC: usize = 16;
const EST_WIFI_BASE: usize = 10;
const EST_WIFI_AP: usize = 10;
const EST_ASSOCIATION: usize = 14;
const EST_LATENCY: usize = 19;
const EST_NAT_PROBE: usize = 16;
const EST_PUNCH_TRIAL: usize = 12;

/// Registration metadata for one router (what the deployment knew about
/// each shipped unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RouterMeta {
    /// The router.
    pub router: RouterId,
    /// The country it shipped to.
    pub country: Country,
    /// Whether the household signed the Traffic consent form.
    pub traffic_consent: bool,
}

/// One row of the gap ledger: a range of upload batches a router declared
/// lost for good (spool eviction or flash wipe). The ledger is the explicit
/// record of every batch the collector will never receive — lost data is
/// declared, never silent.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct UploadGapRecord {
    /// The declaring router.
    pub router: RouterId,
    /// First lost batch (inclusive).
    pub first_seq: u64,
    /// Last lost batch (inclusive).
    pub last_seq: u64,
    /// Records lost across the range.
    pub records_lost: u64,
    /// Earliest record timestamp in the lost range.
    pub from: SimTime,
    /// Latest record timestamp in the lost range.
    pub to: SimTime,
    /// What destroyed the data.
    pub cause: GapCause,
}

/// Outcome of one batch upload attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UploadOutcome {
    /// First sighting of this sequence number: applied (or buffered until
    /// the batches before it arrive). The batch buffer has been drained.
    Accepted,
    /// The sequence number was already known — a replay after a lost ack.
    /// Acknowledged so the router stops retrying; the payload is discarded.
    Duplicate,
    /// The collector is down: nothing was read. The router should retry at
    /// or after `retry_at` (the end of the current downtime window).
    Down {
        /// When the current downtime window ends.
        retry_at: SimTime,
    },
}

impl UploadOutcome {
    /// Did the collector take responsibility for the batch (fresh or
    /// duplicate)? `false` means the router must retry.
    pub fn is_ack(self) -> bool {
        matches!(self, UploadOutcome::Accepted | UploadOutcome::Duplicate)
    }
}

/// An immutable snapshot of everything collected, handed to the analysis.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Datasets {
    /// Router registration metadata, sorted by router ID.
    pub routers: Vec<RouterMeta>,
    /// Compressed heartbeat logs per router.
    pub heartbeats: BTreeMap<RouterId, RunLog>,
    /// Uptime reports.
    pub uptime: Vec<UptimeRecord>,
    /// Capacity measurements.
    pub capacity: Vec<CapacityRecord>,
    /// Hourly device censuses.
    pub devices: Vec<DeviceCensusRecord>,
    /// WiFi scans, in columnar form.
    pub wifi: WifiTable,
    /// Per-minute packet statistics (Traffic), in columnar form.
    pub packet_stats: PacketStatsTable,
    /// Flow records (Traffic), in columnar form.
    pub flows: FlowTable,
    /// DNS samples (Traffic), in columnar form.
    pub dns: DnsTable,
    /// MAC sightings (Traffic), in columnar form.
    pub macs: MacTable,
    /// Hourly per-device association reports (Devices companion), in
    /// columnar form.
    pub associations: AssociationTable,
    /// Latency probes (platform companion data set), in columnar form.
    pub latency: LatencyTable,
    /// STUN-style NAT-type probes (CGN characterization), in columnar
    /// form. Empty unless a CGN scenario is armed.
    pub nat_probes: NatProbeTable,
    /// Pairwise hole-punch trials (CGN characterization), in columnar
    /// form. Empty unless a CGN scenario is armed.
    pub punch_trials: PunchTrialTable,
    /// The gap ledger: batch ranges declared lost by routers, sorted by
    /// (router, first_seq). Empty unless faults destroyed spooled data.
    pub upload_gaps: Vec<UploadGapRecord>,
    /// Downtime windows the collection infrastructure announced for this
    /// run (injected by a fault plan). Empty in normal operation.
    pub collector_downtime: Vec<Window>,
}

/// Cross-window absorb state for a streamed study: every table's
/// per-router accumulated tail, so [`Datasets::absorb`] can take the
/// append fast path for in-order window deltas and fall back to a
/// per-router stable re-sort only when a delta steps backwards in time
/// (clock skew across a drain boundary).
#[derive(Debug, Default)]
pub struct DatasetsAbsorber {
    wifi: AbsorbState<firmware::records::WifiScanRecord>,
    packet_stats: AbsorbState<firmware::records::PacketStatsRecord>,
    flows: AbsorbState<firmware::records::FlowRecord>,
    dns: AbsorbState<firmware::records::DnsSampleRecord>,
    macs: AbsorbState<firmware::records::MacSightingRecord>,
    associations: AbsorbState<firmware::records::AssociationRecord>,
    latency: AbsorbState<firmware::latency::LatencyRecord>,
    nat_probes: AbsorbState<firmware::records::NatProbeRecord>,
    punch_trials: AbsorbState<firmware::records::PunchTrialRecord>,
}

impl Datasets {
    /// Metadata for one router, if registered. Snapshots keep `routers`
    /// sorted by ID, so this is a binary search, not a linear scan.
    pub fn meta(&self, router: RouterId) -> Option<&RouterMeta> {
        self.routers
            .binary_search_by_key(&router, |m| m.router)
            .ok()
            .and_then(|i| self.routers.get(i))
    }

    /// Routers in the Traffic data set (consented).
    pub fn traffic_routers(&self) -> Vec<RouterId> {
        self.routers.iter().filter(|m| m.traffic_consent).map(|m| m.router).collect()
    }

    /// Total records across all sets (diagnostic).
    pub fn record_count(&self) -> usize {
        self.heartbeats.values().map(|l| l.total_heartbeats() as usize).sum::<usize>()
            + self.uptime.len()
            + self.capacity.len()
            + self.devices.len()
            + self.wifi.len()
            + self.packet_stats.len()
            + self.flows.len()
            + self.dns.len()
            + self.macs.len()
            + self.associations.len()
            + self.latency.len()
            + self.nat_probes.len()
            + self.punch_trials.len()
    }

    /// Heap bytes held by the seven columnar high-volume tables. The
    /// remaining row tables and heartbeat run-logs are small by
    /// comparison; this is the number that moves when the deployment is
    /// scaled with more homes.
    pub fn columnar_heap_bytes(&self) -> usize {
        self.packet_stats.heap_bytes()
            + self.flows.heap_bytes()
            + self.dns.heap_bytes()
            + self.macs.heap_bytes()
            + self.wifi.heap_bytes()
            + self.associations.heap_bytes()
            + self.latency.heap_bytes()
            + self.nat_probes.heap_bytes()
            + self.punch_trials.heap_bytes()
    }

    /// Bytes of columnar data living in on-disk segment files rather than
    /// RAM. Zero unless the collector ran with a spill budget and crossed
    /// it; rows behind these bytes stream in lazily during iteration.
    pub fn spilled_bytes(&self) -> u64 {
        self.packet_stats.spilled_bytes()
            + self.flows.spilled_bytes()
            + self.dns.spilled_bytes()
            + self.macs.spilled_bytes()
            + self.wifi.spilled_bytes()
            + self.associations.spilled_bytes()
            + self.latency.spilled_bytes()
            + self.nat_probes.spilled_bytes()
            + self.punch_trials.spilled_bytes()
    }

    /// Fold one stream-window delta (from [`Collector::drain_delta`])
    /// into this accumulator. Per router the deltas concatenate in the
    /// exact batch arrival order (the drain hands over only what was
    /// applied behind the watermark), so after the final window every
    /// table here is byte-identical to the single batch snapshot —
    /// row tables merge with ties keeping the earlier window, columnar
    /// tables append behind each router's tail (see the per-table
    /// `absorb`), and heartbeat logs splice at run granularity.
    ///
    /// The accumulator stays fully resident; a spill-backed delta
    /// streams its rows in from disk and its merged segment files are
    /// reclaimed before returning.
    pub fn absorb(&mut self, mut delta: Datasets, state: &mut DatasetsAbsorber) {
        // Registration and announced downtime are global, not windowed:
        // every drain clones the full current sets into the delta.
        self.routers = std::mem::take(&mut delta.routers);
        self.collector_downtime = std::mem::take(&mut delta.collector_downtime);
        for (router, log) in &delta.heartbeats {
            match self.heartbeats.get_mut(router) {
                Some(acc) => acc.append(log),
                None => {
                    self.heartbeats.insert(*router, log.clone());
                }
            }
        }
        absorb_rows(&mut self.uptime, std::mem::take(&mut delta.uptime), |r| (r.router, r.at));
        absorb_rows(&mut self.capacity, std::mem::take(&mut delta.capacity), |r| {
            (r.router, r.at)
        });
        absorb_rows(&mut self.devices, std::mem::take(&mut delta.devices), |r| {
            (r.router, r.at)
        });
        absorb_rows(&mut self.upload_gaps, std::mem::take(&mut delta.upload_gaps), |r| {
            (r.router, r.first_seq)
        });
        self.wifi.absorb(&delta.wifi, &mut state.wifi);
        self.packet_stats.absorb(&delta.packet_stats, &mut state.packet_stats);
        self.flows.absorb(&delta.flows, &mut state.flows);
        self.dns.absorb(&delta.dns, &mut state.dns);
        self.macs.absorb(&delta.macs, &mut state.macs);
        self.associations.absorb(&delta.associations, &mut state.associations);
        self.latency.absorb(&delta.latency, &mut state.latency);
        self.nat_probes.absorb(&delta.nat_probes, &mut state.nat_probes);
        self.punch_trials.absorb(&delta.punch_trials, &mut state.punch_trials);
        // Every spilled row is resident now; reclaim the delta's merged
        // segment files instead of letting one pile up per window until
        // the store drops.
        delta.wifi.release_spilled();
        delta.packet_stats.release_spilled();
        delta.flows.release_spilled();
        delta.dns.release_spilled();
        delta.macs.release_spilled();
        delta.associations.release_spilled();
        delta.latency.release_spilled();
        delta.nat_probes.release_spilled();
        delta.punch_trials.release_spilled();
    }
}

/// Fold one window's sorted rows behind an accumulated sorted row table.
///
/// Both sides are already sorted by `key` (the accumulator inductively,
/// the delta by its shard merge); the steady state is a plain append, and
/// a delta that starts before the accumulated tail takes a two-pointer
/// stable merge with ties keeping the accumulated side — element for
/// element the order one batch-wide stable sort of all arrivals produces.
fn absorb_rows<T, K: Ord>(acc: &mut Vec<T>, delta: Vec<T>, key: impl Fn(&T) -> K) {
    let Some(first) = delta.first() else { return };
    if acc.last().map_or(true, |last| key(last) <= key(first)) {
        acc.extend(delta);
        return;
    }
    let old = std::mem::replace(acc, Vec::with_capacity(acc.len() + delta.len()));
    let mut a = old.into_iter().peekable();
    let mut b = delta.into_iter().peekable();
    loop {
        let take_a = match (a.peek(), b.peek()) {
            (Some(x), Some(y)) => key(x) <= key(y),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        let next = if take_a { a.next() } else { b.next() };
        acc.extend(next);
    }
}

/// Per-shard out-of-core state, armed by [`Collector::set_spill`].
#[derive(Debug)]
struct ShardSpill {
    /// Shared segment store (one directory per collector, removed on drop).
    store: Arc<SegmentStore>,
    /// This shard's index, used in segment file names.
    index: usize,
    /// Resident-columnar budget for this shard in bytes — the study budget
    /// split evenly across shards. A budget of 0 seals on every batch.
    budget: usize,
    /// Segments sealed so far, in seal order. Seal order concatenated with
    /// the resident tail reproduces each router's exact arrival order, which
    /// is what keeps the spilled merge byte-identical to the in-memory one.
    segments: Vec<SealedSegment>,
    /// First seal failure, if any. Spilling disables on error and data
    /// stays resident from then on — degraded to unbounded memory, never
    /// data loss.
    error: Option<String>,
}

/// One shard's worth of collected state: the same tables as [`Datasets`]
/// minus registration (which is global and rare), plus this shard's copy of
/// the outage schedule so the hot path never reaches for shared state.
#[derive(Debug, Default)]
struct Shard {
    heartbeats: BTreeMap<RouterId, RunLog>,
    uptime: Vec<UptimeRecord>,
    capacity: Vec<CapacityRecord>,
    devices: Vec<DeviceCensusRecord>,
    wifi: WifiTable,
    packet_stats: PacketStatsTable,
    flows: FlowTable,
    dns: DnsTable,
    macs: MacTable,
    associations: AssociationTable,
    latency: LatencyTable,
    nat_probes: NatProbeTable,
    punch_trials: PunchTrialTable,
    /// Windows during which the collection infrastructure itself was down
    /// (§3.3: "various outages and failures — both of the routers
    /// themselves and of the collection infrastructure"). Records arriving
    /// inside one are lost, exactly as on the deployment.
    outages: Vec<crate::windows::Window>,
    dropped_in_outage: u64,
    /// Downtime windows for the *reliable* upload path: batch uploads
    /// arriving inside one are nacked (the router retries), and heartbeat
    /// datagrams are dropped (they are fire-and-forget). Unlike `outages`,
    /// nothing batched is ever silently lost to these.
    downtime: Vec<Window>,
    /// Heartbeat datagrams dropped because the collector was down.
    dropped_in_downtime: u64,
    /// Per-router sequence tracking for idempotent batch ingestion.
    seq: BTreeMap<RouterId, SeqState>,
    /// Gap-ledger rows accepted by this shard.
    upload_gaps: Vec<UploadGapRecord>,
    /// Delivery accounting for the batch upload path.
    counters: UploadCounters,
    /// Estimated resident heap bytes of the seven columnar tables, grown by
    /// per-record constants on the ingest path and reset at each seal.
    columnar_est: usize,
    /// Out-of-core state; `None` (the default) runs fully in memory.
    spill: Option<ShardSpill>,
}

/// A batch known to exist but not yet applicable, keyed by sequence number.
#[derive(Debug)]
enum Pending {
    /// Arrived ahead of the watermark; applied once contiguous.
    Batch(Vec<Record>),
    /// Declared lost; applying it is a no-op that advances the watermark.
    Gap,
}

/// Sequence bookkeeping for one router: the high-watermark (every batch
/// with `seq <= watermark` has been applied or declared lost) plus batches
/// and gap declarations buffered ahead of it. The invariant that batches
/// apply in strict sequence order is what lets the run logs keep their
/// "arrivals are non-decreasing" contract even when retries and replays
/// deliver batches out of order.
#[derive(Debug, Default)]
struct SeqState {
    watermark: u64,
    pending: BTreeMap<u64, Pending>,
}

impl Shard {
    fn in_outage(&self, at: SimTime) -> bool {
        self.outages.iter().any(|w| w.contains(at))
    }

    /// Append a record to its table, with no outage check. The columnar
    /// arms also grow the resident-size estimate that drives spilling.
    fn route(&mut self, record: Record) {
        match record {
            Record::Heartbeat(r) => self.heartbeats.entry(r.router).or_default().push(r.at),
            Record::Uptime(r) => self.uptime.push(r),
            Record::Capacity(r) => self.capacity.push(r),
            Record::DeviceCensus(r) => self.devices.push(r),
            Record::WifiScan(r) => {
                self.columnar_est += EST_WIFI_BASE + EST_WIFI_AP * r.aps.len();
                self.wifi.push(r);
            }
            Record::PacketStats(r) => {
                self.columnar_est += EST_PACKET_STATS;
                self.packet_stats.push(r);
            }
            Record::Flow(r) => {
                self.columnar_est += EST_FLOW;
                self.flows.push(r);
            }
            Record::DnsSample(r) => {
                self.columnar_est += EST_DNS;
                self.dns.push(r);
            }
            Record::MacSighting(r) => {
                self.columnar_est += EST_MAC;
                self.macs.push(r);
            }
            Record::Association(r) => {
                self.columnar_est += EST_ASSOCIATION;
                self.associations.push(r);
            }
            Record::Latency(r) => {
                self.columnar_est += EST_LATENCY;
                self.latency.push(r);
            }
            Record::NatProbe(r) => {
                self.columnar_est += EST_NAT_PROBE;
                self.nat_probes.push(r);
            }
            Record::PunchTrial(r) => {
                self.columnar_est += EST_PUNCH_TRIAL;
                self.punch_trials.push(r);
            }
        }
    }

    fn ingest(&mut self, record: Record) {
        if !self.outages.is_empty() && self.in_outage(record.at()) {
            self.dropped_in_outage += 1;
            return;
        }
        self.route(record);
        self.maybe_spill();
    }

    /// Batch ingestion: the outage-schedule check is hoisted out of the
    /// record loop, so the common no-outage configuration never re-scans
    /// the (empty) window list per record.
    fn ingest_many(&mut self, records: impl IntoIterator<Item = Record>) {
        if self.outages.is_empty() {
            for record in records {
                self.route(record);
            }
        } else {
            for record in records {
                if self.in_outage(record.at()) {
                    self.dropped_in_outage += 1;
                } else {
                    self.route(record);
                }
            }
        }
        self.maybe_spill();
    }

    /// Seal the columnar tables to disk if spilling is armed and the
    /// resident estimate has crossed this shard's budget slice. On the hot
    /// path after every ingest call: the common cases (spill disabled, or
    /// under budget) are two branches and zero allocation.
    fn maybe_spill(&mut self) {
        let Some(sp) = &self.spill else { return };
        if sp.error.is_some() || self.columnar_est <= sp.budget {
            return;
        }
        self.seal_columns();
    }

    /// Seal unconditionally, recording (rather than propagating) any I/O
    /// failure: the ingest path has no caller that can retry, so on error
    /// the shard falls back to keeping data resident.
    fn seal_columns(&mut self) {
        if let Err(e) = self.try_seal() {
            if let Some(sp) = &mut self.spill {
                // simlint: allow(hot-path-transitive) — error path only; rendering the failure once is not per-record work
                sp.error = Some(e.to_string());
            }
        }
    }

    /// Encode the seven columnar tables into one segment file, remember its
    /// table of contents, and reset the tables to fresh empty columns.
    ///
    /// The buffer is fully encoded *before* the tables are reset, so an
    /// I/O error leaves every record resident — sealing is all-or-nothing.
    fn try_seal(&mut self) -> Result<(), SpillError> {
        if self.columnar_est == 0 {
            return Ok(());
        }
        // simlint: allow(hot-path-transitive) — one segment-sized buffer per seal, a batch boundary, not per-record work
        let mut buf = Vec::with_capacity(self.columnar_est / 2 + 1024);
        buf.extend_from_slice(SEGMENT_MAGIC);
        let packet_stats = self.packet_stats.encode_segment(&mut buf);
        let flows = self.flows.encode_segment(&mut buf);
        let dns = self.dns.encode_segment(&mut buf);
        let macs = self.macs.encode_segment(&mut buf);
        let wifi = self.wifi.encode_segment(&mut buf);
        let associations = self.associations.encode_segment(&mut buf);
        let latency = self.latency.encode_segment(&mut buf);
        let nat_probes = self.nat_probes.encode_segment(&mut buf);
        let punch_trials = self.punch_trials.encode_segment(&mut buf);
        let Some(sp) = &mut self.spill else { return Ok(()) };
        // simlint: allow(hot-path-transitive) — one file name per sealed segment, a batch boundary, not per-record work
        let file = format!("shard{:03}-seg{:05}.seg", sp.index, sp.segments.len());
        sp.store.write_file(&file, &buf)?;
        let bytes = buf.len() as u64;
        sp.segments.push(SealedSegment {
            file,
            packet_stats,
            flows,
            dns,
            macs,
            wifi,
            associations,
            latency,
            nat_probes,
            punch_trials,
            bytes,
        });
        self.packet_stats = PacketStatsTable::default();
        self.flows = FlowTable::default();
        self.dns = DnsTable::default();
        self.macs = MacTable::default();
        self.wifi = WifiTable::default();
        self.associations = AssociationTable::default();
        self.latency = LatencyTable::default();
        self.nat_probes = NatProbeTable::default();
        self.punch_trials = PunchTrialTable::default();
        self.columnar_est = 0;
        Ok(())
    }

    fn ingest_heartbeat(&mut self, rec: HeartbeatRecord) {
        if !self.downtime.is_empty() && self.downtime_at(rec.at).is_some() {
            self.dropped_in_downtime += 1;
            return;
        }
        if !self.outages.is_empty() && self.in_outage(rec.at) {
            self.dropped_in_outage += 1;
            return;
        }
        self.heartbeats.entry(rec.router).or_default().push(rec.at);
    }

    fn downtime_at(&self, at: SimTime) -> Option<Window> {
        self.downtime.iter().find(|w| w.contains(at)).copied()
    }

    /// Idempotent batch ingestion with per-router sequence tracking.
    ///
    /// * During a downtime window nothing is read; the caller gets a nack
    ///   with a retry hint.
    /// * Gap declarations riding with the attempt are applied first (and
    ///   exactly once, however often they are replayed).
    /// * A batch whose sequence number is already known is acknowledged
    ///   and discarded; a fresh batch is applied immediately when it is
    ///   the next in sequence, or buffered until the batches before it
    ///   show up. Either way batches hit the tables in strict sequence
    ///   order, which keeps per-router record streams chronological.
    fn ingest_upload(
        &mut self,
        at: SimTime,
        router: RouterId,
        seq: u64,
        attempt: u32,
        gaps: &[GapDecl],
        records: &mut Vec<Record>,
    ) -> UploadOutcome {
        if let Some(w) = self.downtime_at(at) {
            self.counters.rejected += 1;
            return UploadOutcome::Down { retry_at: w.end };
        }
        for g in gaps {
            self.accept_gap_decl(router, g);
        }
        enum Disposition {
            Duplicate,
            Apply,
            Buffered,
        }
        let disposition = {
            let state = self.seq.entry(router).or_default();
            if seq <= state.watermark || state.pending.contains_key(&seq) {
                Disposition::Duplicate
            } else if seq == state.watermark + 1 {
                state.watermark += 1;
                Disposition::Apply
            } else {
                state.pending.insert(seq, Pending::Batch(std::mem::take(records)));
                Disposition::Buffered
            }
        };
        let outcome = match disposition {
            Disposition::Duplicate => {
                self.counters.duplicates += 1;
                records.clear();
                UploadOutcome::Duplicate
            }
            Disposition::Apply => {
                self.counters.watermark_advances += 1;
                self.counters.accepted += 1;
                if attempt > 0 {
                    self.counters.retried_accepted += 1;
                }
                self.ingest_many(records.drain(..));
                UploadOutcome::Accepted
            }
            Disposition::Buffered => {
                self.counters.accepted += 1;
                if attempt > 0 {
                    self.counters.retried_accepted += 1;
                }
                UploadOutcome::Accepted
            }
        };
        self.drain_contiguous(router);
        outcome
    }

    /// Put a declared-lost batch range on the ledger, once. Replays are
    /// recognized either by the watermark having passed the range or by
    /// the range's first sequence number already being marked as a gap.
    fn accept_gap_decl(&mut self, router: RouterId, g: &GapDecl) {
        let state = self.seq.entry(router).or_default();
        if g.last_seq <= state.watermark
            || matches!(state.pending.get(&g.first_seq), Some(Pending::Gap))
        {
            return;
        }
        for s in g.first_seq.max(state.watermark + 1)..=g.last_seq {
            state.pending.entry(s).or_insert(Pending::Gap);
        }
        self.upload_gaps.push(UploadGapRecord {
            router,
            first_seq: g.first_seq,
            last_seq: g.last_seq,
            records_lost: g.records_lost,
            from: g.from,
            to: g.to,
            cause: g.cause,
        });
        self.counters.gap_declarations += 1;
    }

    /// Apply buffered batches (and skip declared gaps) while they continue
    /// the sequence at the watermark.
    fn drain_contiguous(&mut self, router: RouterId) {
        loop {
            let next = {
                let Some(state) = self.seq.get_mut(&router) else { return };
                match state.pending.remove(&(state.watermark + 1)) {
                    Some(p) => {
                        state.watermark += 1;
                        p
                    }
                    None => return,
                }
            };
            self.counters.watermark_advances += 1;
            if let Pending::Batch(mut batch) = next {
                self.ingest_many(batch.drain(..));
            }
        }
    }
}

/// The collection server.
#[derive(Debug)]
pub struct Collector {
    shards: Vec<Mutex<Shard>>,
    routers: Mutex<Vec<RouterMeta>>,
    rejected_heartbeats: AtomicU64,
    /// The announced downtime schedule, kept once for the snapshot (each
    /// shard holds its own copy for lock-local checks on the hot path).
    downtime: Mutex<Vec<Window>>,
    /// The shared segment store when out-of-core mode is armed. Shards hold
    /// their own `Arc` for lock-local sealing; this copy feeds the merge.
    spill: Mutex<Option<Arc<SegmentStore>>>,
}

impl Default for Collector {
    fn default() -> Collector {
        Collector {
            shards: (0..NUM_SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            routers: Mutex::new(Vec::new()),
            rejected_heartbeats: AtomicU64::new(0),
            downtime: Mutex::new(Vec::new()),
            spill: Mutex::new(None),
        }
    }
}

/// Aggregated out-of-core accounting across all shards. Only available
/// when a spill budget was armed via [`Collector::set_spill`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Segment files sealed across all shards.
    pub segments: u64,
    /// Bytes written across all sealed segments.
    pub bytes_written: u64,
    /// First seal failure observed on any shard, if any. A failing shard
    /// keeps its data resident (unbounded memory, never data loss).
    pub error: Option<String>,
}

/// A borrowed handle onto the shard owning one router's records. Home
/// simulations grab one before their upload loop so the bulk path is a
/// single uncontended lock per flush, with no per-record shard routing.
#[derive(Debug, Clone, Copy)]
pub struct ShardHandle<'a> {
    shard: &'a Mutex<Shard>,
}

impl ShardHandle<'_> {
    /// Ingest one record. The caller is responsible for only sending
    /// records belonging to this handle's shard.
    pub fn ingest(&self, record: Record) {
        self.shard.lock().ingest(record);
    }

    /// Ingest a batch under one lock acquisition.
    pub fn ingest_batch(&self, records: Vec<Record>) {
        if records.is_empty() {
            return;
        }
        self.shard.lock().ingest_many(records);
    }

    /// Ingest by draining the caller's buffer under one lock acquisition.
    /// The buffer is left empty with its capacity intact, so a simulation
    /// flushing every few thousand records reuses one allocation for the
    /// whole run.
    pub fn ingest_drain(&self, records: &mut Vec<Record>) {
        if records.is_empty() {
            return;
        }
        self.shard.lock().ingest_many(records.drain(..));
    }

    /// Ingest an already-parsed heartbeat record.
    pub fn ingest_heartbeat(&self, rec: HeartbeatRecord) {
        self.shard.lock().ingest_heartbeat(rec);
    }

    /// Offer a sequence-numbered batch (plus any gap declarations riding
    /// with it) under one lock acquisition. On [`UploadOutcome::Accepted`]
    /// and [`UploadOutcome::Duplicate`] the buffer is left drained with
    /// its capacity intact (unless the batch had to be buffered ahead of
    /// the watermark, in which case its storage moves to the collector);
    /// on [`UploadOutcome::Down`] it is untouched and the caller retries.
    #[allow(clippy::too_many_arguments)]
    pub fn ingest_upload(
        &self,
        at: SimTime,
        router: RouterId,
        seq: u64,
        attempt: u32,
        gaps: &[GapDecl],
        records: &mut Vec<Record>,
    ) -> UploadOutcome {
        self.shard.lock().ingest_upload(at, router, seq, attempt, gaps, records)
    }
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Collector {
        Collector::default()
    }

    /// The shard owning one router's records. Every caller routes through
    /// here so the bounds argument lives in exactly one place.
    fn shard(&self, router: RouterId) -> &Mutex<Shard> {
        // simlint: allow(panic-in-ingest) — shard_index reduces modulo NUM_SHARDS and shards holds NUM_SHARDS entries, so the index is always in bounds
        &self.shards[shard_index(router)]
    }

    /// The ingestion handle for one router's shard.
    pub fn shard_handle(&self, router: RouterId) -> ShardHandle<'_> {
        ShardHandle { shard: self.shard(router) }
    }

    /// Register a shipped router.
    pub fn register(&self, meta: RouterMeta) {
        self.routers.lock().push(meta);
    }

    /// Inject collection-infrastructure outages: any record whose
    /// timestamp falls inside one of these windows is silently lost.
    /// Each shard keeps its own copy so the hot path stays lock-local.
    pub fn set_outages(&self, outages: Vec<crate::windows::Window>) {
        for shard in &self.shards {
            shard.lock().outages = outages.clone();
        }
    }

    /// Records lost to collector-side outages so far.
    pub fn dropped_in_outage(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().dropped_in_outage).sum()
    }

    /// Announce collector downtime windows for the reliable upload path:
    /// batch uploads arriving inside one are nacked (and retried by the
    /// router — no batched record is ever lost to downtime), while
    /// heartbeat datagrams are dropped, leaving the correlated silence
    /// that `analysis::artifacts` hunts for. The windows land in
    /// [`Datasets::collector_downtime`] as the run's ground truth.
    pub fn set_downtime(&self, mut windows: Vec<Window>) {
        windows.sort_by_key(|w| (w.start, w.end));
        for shard in &self.shards {
            shard.lock().downtime = windows.clone();
        }
        *self.downtime.lock() = windows;
    }

    /// Heartbeat datagrams dropped during announced downtime so far.
    pub fn dropped_in_downtime(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().dropped_in_downtime).sum()
    }

    /// Arm out-of-core mode: every shard gets an even slice of
    /// `config.budget_bytes` as its resident-columnar budget and seals its
    /// columnar tables into segment files (under `config.dir`, or the OS
    /// temp directory) whenever ingestion crosses that slice. Call before
    /// ingestion starts; the snapshot merge reunifies spilled and resident
    /// rows deterministically, so reports are byte-identical to an
    /// unbounded run. Fails only if the spill directory cannot be created.
    pub fn set_spill(&self, config: &SpillConfig) -> std::io::Result<()> {
        let store = Arc::new(SegmentStore::create(config.dir.as_deref())?);
        let budget = (config.budget_bytes / NUM_SHARDS as u64) as usize;
        for (index, shard) in self.shards.iter().enumerate() {
            shard.lock().spill = Some(ShardSpill {
                store: Arc::clone(&store),
                index,
                budget,
                segments: Vec::new(),
                error: None,
            });
        }
        *self.spill.lock() = Some(store);
        Ok(())
    }

    /// Out-of-core accounting, if spilling is armed (`None` otherwise).
    pub fn spill_stats(&self) -> Option<SpillStats> {
        self.spill.lock().as_ref()?;
        let mut stats = SpillStats::default();
        for shard in &self.shards {
            let shard = shard.lock();
            let Some(sp) = &shard.spill else { continue };
            stats.segments += sp.segments.len() as u64;
            stats.bytes_written += sp.segments.iter().map(|s| s.bytes).sum::<u64>();
            if stats.error.is_none() {
                stats.error = sp.error.clone();
            }
        }
        Some(stats)
    }

    /// Combined delivery accounting across all shards.
    pub fn upload_counters(&self) -> UploadCounters {
        let mut total = UploadCounters::default();
        for shard in &self.shards {
            total.merge(shard.lock().counters);
        }
        total
    }

    /// Offer a sequence-numbered batch for one router (see
    /// [`ShardHandle::ingest_upload`] for the single-lock fast path).
    #[allow(clippy::too_many_arguments)]
    pub fn ingest_upload(
        &self,
        at: SimTime,
        router: RouterId,
        seq: u64,
        attempt: u32,
        gaps: &[GapDecl],
        records: &mut Vec<Record>,
    ) -> UploadOutcome {
        self.shard(router).lock().ingest_upload(at, router, seq, attempt, gaps, records)
    }

    /// Ingest a heartbeat that arrived as a raw packet: parse, validate,
    /// and log. Malformed packets are counted and dropped, as a real
    /// server would — the reject counter is a lock-free atomic, so the
    /// error path never touches a shard lock.
    pub fn ingest_heartbeat_wire(&self, at: SimTime, wire: &[u8]) -> Result<(), ParseError> {
        match Heartbeat::parse(wire) {
            Ok((hb, _src)) => {
                self.shard(hb.router)
                    .lock()
                    .ingest_heartbeat(HeartbeatRecord { router: hb.router, at });
                Ok(())
            }
            Err(e) => {
                self.rejected_heartbeats.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Ingest an already-parsed heartbeat record (the fast path the home
    /// simulations use for the bulk of the six-month log; a sampled subset
    /// goes through [`Collector::ingest_heartbeat_wire`] to keep the wire
    /// path honest).
    pub fn ingest_heartbeat(&self, rec: HeartbeatRecord) {
        self.shard(rec.router).lock().ingest_heartbeat(rec);
    }

    /// Ingest any other record.
    pub fn ingest(&self, record: Record) {
        self.shard(record.router()).lock().ingest(record);
    }

    /// Ingest a batch. Runs of consecutive records for the same shard are
    /// ingested under one lock acquisition; a single-router batch (what
    /// home simulations upload) locks exactly once.
    pub fn ingest_batch(&self, records: Vec<Record>) {
        let mut records = records.into_iter().peekable();
        while let Some(first) = records.next() {
            let idx = shard_index(first.router());
            let mut shard = self.shard(first.router()).lock();
            shard.ingest(first);
            while let Some(next) = records.next_if(|r| shard_index(r.router()) == idx) {
                shard.ingest(next);
            }
        }
    }

    /// Malformed heartbeat packets rejected so far.
    pub fn rejected_heartbeats(&self) -> u64 {
        self.rejected_heartbeats.load(Ordering::Relaxed)
    }

    /// Fold the server's delivery accounting into the global `obs`
    /// registry. Every value is a sum over shards, so the publish is
    /// order-independent; the study runner calls this once after the
    /// simulation phase, never on the ingest hot path.
    pub fn publish_metrics(&self) {
        let c = self.upload_counters();
        obs::counter("collector_accepted_total").add(c.accepted);
        obs::counter("collector_retried_accepted_total").add(c.retried_accepted);
        obs::counter("collector_duplicates_total").add(c.duplicates);
        obs::counter("collector_rejected_total").add(c.rejected);
        obs::counter("collector_gap_declarations_total").add(c.gap_declarations);
        obs::counter("collector_watermark_advances_total").add(c.watermark_advances);
        obs::counter("collector_heartbeats_rejected_total").add(self.rejected_heartbeats());
        obs::counter("collector_records_dropped_outage_total").add(self.dropped_in_outage());
        obs::counter("collector_heartbeats_dropped_downtime_total")
            .add(self.dropped_in_downtime());
        // Spill metrics register only when out-of-core mode is armed, so
        // the manifest key set stays stable for ordinary in-memory runs.
        if let Some(s) = self.spill_stats() {
            obs::counter("spill_segments_written_total").add(s.segments);
            obs::counter("spill_bytes_written_total").add(s.bytes_written);
            obs::counter("spill_errors_total").add(u64::from(s.error.is_some()));
        }
    }

    /// Snapshot everything collected so far, without disturbing ongoing
    /// ingestion. Records are cloned out of each shard and merged sorted by
    /// (router, time), so snapshots are deterministic regardless of the
    /// upload interleaving across home threads. Finished callers should
    /// prefer [`Collector::into_datasets`], which skips the clone.
    ///
    /// Panics if a spilled run's segment merge hits an I/O error; use
    /// [`Collector::try_snapshot`] to handle that case. In-memory runs
    /// (the default) cannot fail.
    pub fn snapshot(&self) -> Datasets {
        match self.try_snapshot() {
            Ok(data) => data,
            // simlint: allow(panic-in-ingest) — this is the analysis boundary, not the ingest path; callers that can recover from a failed segment merge use try_snapshot
            Err(e) => panic!("spill segment merge failed during snapshot: {e}"),
        }
    }

    /// Fallible [`Collector::snapshot`]: surfaces spill-merge I/O errors
    /// instead of panicking. Always `Ok` when spilling is disabled.
    pub fn try_snapshot(&self) -> Result<Datasets, SpillError> {
        let chunks: Vec<ShardChunk> = self
            .shards
            .iter()
            .map(|s| {
                let shard = s.lock();
                ShardChunk {
                    heartbeats: shard.heartbeats.clone(),
                    uptime: shard.uptime.clone(),
                    capacity: shard.capacity.clone(),
                    devices: shard.devices.clone(),
                    wifi: shard.wifi.clone(),
                    packet_stats: shard.packet_stats.clone(),
                    flows: shard.flows.clone(),
                    dns: shard.dns.clone(),
                    macs: shard.macs.clone(),
                    associations: shard.associations.clone(),
                    latency: shard.latency.clone(),
                    nat_probes: shard.nat_probes.clone(),
                    punch_trials: shard.punch_trials.clone(),
                    upload_gaps: shard.upload_gaps.clone(),
                    segments: shard
                        .spill
                        .as_ref()
                        .map(|sp| sp.segments.clone())
                        .unwrap_or_default(),
                }
            })
            .collect();
        merge_chunks(
            self.routers.lock().clone(),
            self.downtime.lock().clone(),
            self.spill.lock().clone(),
            chunks,
        )
    }

    /// Consume the collector and merge every shard into one sorted
    /// [`Datasets`] without cloning a single record. The per-table merges
    /// run on scoped threads, and shards that are already internally
    /// ordered with disjoint router ranges (the steady-state shape, since
    /// every router maps to one shard and emits chronologically)
    /// concatenate in O(n) instead of re-sorting.
    ///
    /// Panics if a spilled run's segment merge hits an I/O error; use
    /// [`Collector::try_into_datasets`] to handle that case. In-memory
    /// runs (the default) cannot fail.
    pub fn into_datasets(self) -> Datasets {
        match self.try_into_datasets() {
            Ok(data) => data,
            // simlint: allow(panic-in-ingest) — this is the analysis boundary, not the ingest path; callers that can recover from a failed segment merge use try_into_datasets
            Err(e) => panic!("spill segment merge failed while finalizing datasets: {e}"),
        }
    }

    /// Fallible [`Collector::into_datasets`]: surfaces spill-merge I/O
    /// errors instead of panicking. Always `Ok` when spilling is disabled.
    pub fn try_into_datasets(self) -> Result<Datasets, SpillError> {
        let spill = self.spill.into_inner();
        let chunks: Vec<ShardChunk> = self
            .shards
            .into_iter()
            .map(|s| {
                let mut shard = s.into_inner();
                let segments = shard.spill.take().map(|sp| sp.segments).unwrap_or_default();
                ShardChunk {
                    heartbeats: shard.heartbeats,
                    uptime: shard.uptime,
                    capacity: shard.capacity,
                    devices: shard.devices,
                    wifi: shard.wifi,
                    packet_stats: shard.packet_stats,
                    flows: shard.flows,
                    dns: shard.dns,
                    macs: shard.macs,
                    associations: shard.associations,
                    latency: shard.latency,
                    nat_probes: shard.nat_probes,
                    punch_trials: shard.punch_trials,
                    upload_gaps: shard.upload_gaps,
                    segments,
                }
            })
            .collect();
        merge_chunks(self.routers.into_inner(), self.downtime.into_inner(), spill, chunks)
    }

    /// Drain everything applied behind the per-router watermarks since
    /// the previous drain (or since startup) as one merged window delta,
    /// leaving the collector running: batches buffered ahead of a
    /// watermark, sequence state, delivery counters, and the outage and
    /// downtime schedules all stay in place, so later uploads keep
    /// composing with earlier ones exactly as in one batch run. Per
    /// router, concatenating successive deltas reproduces the batch
    /// arrival sequence record for record — the invariant the stream
    /// mode's batch-equality proof rests on.
    ///
    /// With a spill budget armed, the shards' sealed segments move into
    /// the delta (whose merge may write one merged file per table, later
    /// reclaimed by [`Datasets::absorb`]) and each shard keeps spilling
    /// the next window against a reset resident estimate.
    ///
    /// Panics if a spilled delta's segment merge hits an I/O error; use
    /// [`Collector::try_drain_delta`] to handle that case.
    pub fn drain_delta(&self) -> Datasets {
        match self.try_drain_delta() {
            Ok(data) => data,
            // simlint: allow(panic-in-ingest) — the analysis boundary, not the ingest path; stream drivers that can recover from a failed segment merge use try_drain_delta
            Err(e) => panic!("spill segment merge failed during stream drain: {e}"),
        }
    }

    /// Fallible [`Collector::drain_delta`]: surfaces spill-merge I/O
    /// errors instead of panicking. Always `Ok` when spilling is
    /// disabled.
    pub fn try_drain_delta(&self) -> Result<Datasets, SpillError> {
        let chunks: Vec<ShardChunk> = self
            .shards
            .iter()
            .map(|s| {
                let mut shard = s.lock();
                let shard = &mut *shard;
                let segments = match &mut shard.spill {
                    Some(sp) => std::mem::take(&mut sp.segments),
                    None => Vec::new(),
                };
                shard.columnar_est = 0;
                ShardChunk {
                    heartbeats: std::mem::take(&mut shard.heartbeats),
                    uptime: std::mem::take(&mut shard.uptime),
                    capacity: std::mem::take(&mut shard.capacity),
                    devices: std::mem::take(&mut shard.devices),
                    wifi: std::mem::take(&mut shard.wifi),
                    packet_stats: std::mem::take(&mut shard.packet_stats),
                    flows: std::mem::take(&mut shard.flows),
                    dns: std::mem::take(&mut shard.dns),
                    macs: std::mem::take(&mut shard.macs),
                    associations: std::mem::take(&mut shard.associations),
                    latency: std::mem::take(&mut shard.latency),
                    nat_probes: std::mem::take(&mut shard.nat_probes),
                    punch_trials: std::mem::take(&mut shard.punch_trials),
                    upload_gaps: std::mem::take(&mut shard.upload_gaps),
                    segments,
                }
            })
            .collect();
        merge_chunks(
            self.routers.lock().clone(),
            self.downtime.lock().clone(),
            self.spill.lock().clone(),
            chunks,
        )
    }
}

/// The movable per-shard table set fed into the merge.
struct ShardChunk {
    heartbeats: BTreeMap<RouterId, RunLog>,
    uptime: Vec<UptimeRecord>,
    capacity: Vec<CapacityRecord>,
    devices: Vec<DeviceCensusRecord>,
    wifi: WifiTable,
    packet_stats: PacketStatsTable,
    flows: FlowTable,
    dns: DnsTable,
    macs: MacTable,
    associations: AssociationTable,
    latency: LatencyTable,
    nat_probes: NatProbeTable,
    punch_trials: PunchTrialTable,
    upload_gaps: Vec<UploadGapRecord>,
    /// Segments this shard sealed to disk, in seal order. Empty unless
    /// out-of-core mode was armed and this shard crossed its budget.
    segments: Vec<SealedSegment>,
}

/// Merge per-shard chunks of one table into a single sorted table.
///
/// Fast path: if every chunk is internally non-decreasing by `key` and the
/// chunks' key ranges don't overlap once ordered by first key, the sorted
/// result is just their concatenation — O(n) moves, no comparison sort.
/// Every per-table sort key here starts with the router ID and each router
/// lives on exactly one shard, so shards whose records were emitted in
/// order hit this path. Otherwise fall back to concatenation plus a stable
/// sort (run-adaptive, so nearly-sorted input stays cheap). Chunks arrive
/// in shard-index order, which is a pure function of router ID — never of
/// thread schedule — so both paths are deterministic.
fn merge_table<T, K: Ord, F: Fn(&T) -> K>(mut chunks: Vec<Vec<T>>, key: F) -> Vec<T> {
    chunks.retain(|c| !c.is_empty());
    if chunks.is_empty() {
        return Vec::new();
    }
    chunks.sort_by(|a, b| a.first().map(&key).cmp(&b.first().map(&key)));
    let internally_sorted =
        chunks.iter().all(|c| c.iter().zip(c.iter().skip(1)).all(|(a, b)| key(a) <= key(b)));
    let ranges_disjoint =
        chunks.iter().zip(chunks.iter().skip(1)).all(|(a, b)| match (a.last(), b.first()) {
            (Some(end), Some(start)) => key(end) <= key(start),
            _ => true,
        });
    let sorted_disjoint = internally_sorted && ranges_disjoint;
    let total = chunks.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for chunk in chunks {
        out.extend(chunk);
    }
    if !sorted_disjoint {
        out.sort_by(|a, b| key(a).cmp(&key(b)));
    }
    out
}

/// Collect one merge worker's table. A worker is pure comparison-and-move
/// code, so the only failure mode is a panic; re-raising the original
/// payload on the snapshot caller is the correct propagation (there is no
/// half-merged data worth salvaging).
fn join_merged<T>(handle: crossbeam::thread::ScopedJoinHandle<'_, T>) -> T {
    handle.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic))
}

/// Per-shard table-of-contents lists for the seven columnar tables, split
/// out of each shard's [`SealedSegment`] run so every table's k-way merge
/// can run on its own thread with only its own blocks.
struct SegmentTocs {
    packet_stats: Vec<Vec<TableToc>>,
    flows: Vec<Vec<TableToc>>,
    dns: Vec<Vec<TableToc>>,
    macs: Vec<Vec<TableToc>>,
    wifi: Vec<Vec<TableToc>>,
    associations: Vec<Vec<TableToc>>,
    latency: Vec<Vec<TableToc>>,
    nat_probes: Vec<Vec<TableToc>>,
    punch_trials: Vec<Vec<TableToc>>,
}

fn split_tocs(segments: Vec<Vec<SealedSegment>>) -> SegmentTocs {
    let mut tocs = SegmentTocs {
        packet_stats: Vec::with_capacity(segments.len()),
        flows: Vec::with_capacity(segments.len()),
        dns: Vec::with_capacity(segments.len()),
        macs: Vec::with_capacity(segments.len()),
        wifi: Vec::with_capacity(segments.len()),
        associations: Vec::with_capacity(segments.len()),
        latency: Vec::with_capacity(segments.len()),
        nat_probes: Vec::with_capacity(segments.len()),
        punch_trials: Vec::with_capacity(segments.len()),
    };
    for segs in segments {
        let mut ps = Vec::with_capacity(segs.len());
        let mut fl = Vec::with_capacity(segs.len());
        let mut dn = Vec::with_capacity(segs.len());
        let mut mc = Vec::with_capacity(segs.len());
        let mut wf = Vec::with_capacity(segs.len());
        let mut ac = Vec::with_capacity(segs.len());
        let mut lt = Vec::with_capacity(segs.len());
        let mut np = Vec::with_capacity(segs.len());
        let mut pt = Vec::with_capacity(segs.len());
        for seg in segs {
            ps.push(TableToc { file: seg.file.clone(), blocks: seg.packet_stats });
            fl.push(TableToc { file: seg.file.clone(), blocks: seg.flows });
            dn.push(TableToc { file: seg.file.clone(), blocks: seg.dns });
            mc.push(TableToc { file: seg.file.clone(), blocks: seg.macs });
            wf.push(TableToc { file: seg.file.clone(), blocks: seg.wifi });
            ac.push(TableToc { file: seg.file.clone(), blocks: seg.associations });
            lt.push(TableToc { file: seg.file.clone(), blocks: seg.latency });
            np.push(TableToc { file: seg.file.clone(), blocks: seg.nat_probes });
            pt.push(TableToc { file: seg.file, blocks: seg.punch_trials });
        }
        tocs.packet_stats.push(ps);
        tocs.flows.push(fl);
        tocs.dns.push(dn);
        tocs.macs.push(mc);
        tocs.wifi.push(wf);
        tocs.associations.push(ac);
        tocs.latency.push(lt);
        tocs.nat_probes.push(np);
        tocs.punch_trials.push(pt);
    }
    tocs
}

fn merge_chunks(
    mut routers: Vec<RouterMeta>,
    collector_downtime: Vec<Window>,
    spill: Option<Arc<SegmentStore>>,
    chunks: Vec<ShardChunk>,
) -> Result<Datasets, SpillError> {
    let mut uptime = Vec::new();
    let mut capacity = Vec::new();
    let mut devices = Vec::new();
    let mut wifi = Vec::new();
    let mut packet_stats = Vec::new();
    let mut flows = Vec::new();
    let mut dns = Vec::new();
    let mut macs = Vec::new();
    let mut associations = Vec::new();
    let mut latency = Vec::new();
    let mut nat_probes = Vec::new();
    let mut punch_trials = Vec::new();
    let mut upload_gaps = Vec::new();
    let mut segments = Vec::new();
    let mut heartbeats: BTreeMap<RouterId, RunLog> = BTreeMap::new();
    for chunk in chunks {
        uptime.push(chunk.uptime);
        capacity.push(chunk.capacity);
        devices.push(chunk.devices);
        wifi.push(chunk.wifi);
        packet_stats.push(chunk.packet_stats);
        flows.push(chunk.flows);
        dns.push(chunk.dns);
        macs.push(chunk.macs);
        associations.push(chunk.associations);
        latency.push(chunk.latency);
        nat_probes.push(chunk.nat_probes);
        punch_trials.push(chunk.punch_trials);
        upload_gaps.push(chunk.upload_gaps);
        segments.push(chunk.segments);
        // Routers are partitioned across shards, so no key collides.
        heartbeats.extend(chunk.heartbeats);
    }
    routers.sort_by_key(|m| m.router);

    // The spilled merge path engages only when some shard actually sealed a
    // segment: a spill-armed run that stayed under budget takes the plain
    // in-memory path and produces bit-identical in-memory Datasets.
    let total_segments: usize = segments.iter().map(Vec::len).sum();
    let spill = spill.filter(|_| total_segments > 0);

    let mut data = Datasets {
        routers,
        heartbeats,
        collector_downtime,
        // The ledger is tiny (one row per declared loss); merge it inline
        // rather than on the scoped threads below.
        upload_gaps: merge_table(upload_gaps, |r: &UploadGapRecord| (r.router, r.first_seq)),
        ..Datasets::default()
    };
    // The per-table merges are independent; run them on scoped threads so a
    // snapshot of a 33M-record study sorts all ten tables concurrently.
    crossbeam::scope(|scope| -> Result<(), SpillError> {
        let uptime = scope.spawn(|_| merge_table(uptime, |r: &UptimeRecord| (r.router, r.at)));
        let capacity =
            scope.spawn(|_| merge_table(capacity, |r: &CapacityRecord| (r.router, r.at)));
        let devices =
            scope.spawn(|_| merge_table(devices, |r: &DeviceCensusRecord| (r.router, r.at)));
        let (packet_stats, flows, dns, macs, wifi, associations, latency, nat_probes, punch_trials) =
            match &spill {
                None => (
                    scope.spawn(|_| Ok(PacketStatsTable::merge(packet_stats))),
                    scope.spawn(|_| Ok(FlowTable::merge(flows))),
                    scope.spawn(|_| Ok(DnsTable::merge(dns))),
                    scope.spawn(|_| Ok(MacTable::merge(macs))),
                    scope.spawn(|_| Ok(WifiTable::merge(wifi))),
                    scope.spawn(|_| Ok(AssociationTable::merge(associations))),
                    scope.spawn(|_| Ok(LatencyTable::merge(latency))),
                    scope.spawn(|_| Ok(NatProbeTable::merge(nat_probes))),
                    scope.spawn(|_| Ok(PunchTrialTable::merge(punch_trials))),
                ),
                Some(store) => {
                    // Merge fan-in: every sealed segment plus every shard with
                    // resident columnar rows contributes one sorted input run.
                    let resident_shards = packet_stats
                        .iter()
                        .zip(&flows)
                        .zip(&dns)
                        .zip(&macs)
                        .zip(&wifi)
                        .zip(&associations)
                        .zip(&latency)
                        .zip(&nat_probes)
                        .zip(&punch_trials)
                        .filter(|((((((((p, f), d), m), w), a), l), n), u)| {
                            p.len()
                                + f.len()
                                + d.len()
                                + m.len()
                                + w.len()
                                + a.len()
                                + l.len()
                                + n.len()
                                + u.len()
                                > 0
                        })
                        .count();
                    obs::gauge("spill_merge_fanin").set((total_segments + resident_shards) as u64);
                    // Snapshots can merge repeatedly over the same store, so
                    // every merged output gets a unique file-name generation.
                    let merge_id = store.next_merge_id();
                    let tocs = split_tocs(std::mem::take(&mut segments));
                    let ps_in: Vec<_> = tocs.packet_stats.into_iter().zip(packet_stats).collect();
                    let fl_in: Vec<_> = tocs.flows.into_iter().zip(flows).collect();
                    let dn_in: Vec<_> = tocs.dns.into_iter().zip(dns).collect();
                    let mc_in: Vec<_> = tocs.macs.into_iter().zip(macs).collect();
                    let wf_in: Vec<_> = tocs.wifi.into_iter().zip(wifi).collect();
                    let ac_in: Vec<_> = tocs.associations.into_iter().zip(associations).collect();
                    let lt_in: Vec<_> = tocs.latency.into_iter().zip(latency).collect();
                    let np_in: Vec<_> = tocs.nat_probes.into_iter().zip(nat_probes).collect();
                    let pt_in: Vec<_> = tocs.punch_trials.into_iter().zip(punch_trials).collect();
                    let (s1, s2, s3, s4) = (
                        Arc::clone(store),
                        Arc::clone(store),
                        Arc::clone(store),
                        Arc::clone(store),
                    );
                    let (s5, s6, s7) =
                        (Arc::clone(store), Arc::clone(store), Arc::clone(store));
                    let (s8, s9) = (Arc::clone(store), Arc::clone(store));
                    (
                        scope.spawn(move |_| {
                            PacketStatsTable::merge_spilled(
                                ps_in,
                                &s1,
                                &format!("merged-{merge_id}-packet-stats.col"),
                            )
                        }),
                        scope.spawn(move |_| {
                            FlowTable::merge_spilled(
                                fl_in,
                                &s2,
                                &format!("merged-{merge_id}-flows.col"),
                            )
                        }),
                        scope.spawn(move |_| {
                            DnsTable::merge_spilled(dn_in, &s3, &format!("merged-{merge_id}-dns.col"))
                        }),
                        scope.spawn(move |_| {
                            MacTable::merge_spilled(mc_in, &s4, &format!("merged-{merge_id}-macs.col"))
                        }),
                        scope.spawn(move |_| {
                            WifiTable::merge_spilled(
                                wf_in,
                                &s5,
                                &format!("merged-{merge_id}-wifi.col"),
                            )
                        }),
                        scope.spawn(move |_| {
                            AssociationTable::merge_spilled(
                                ac_in,
                                &s6,
                                &format!("merged-{merge_id}-associations.col"),
                            )
                        }),
                        scope.spawn(move |_| {
                            LatencyTable::merge_spilled(
                                lt_in,
                                &s7,
                                &format!("merged-{merge_id}-latency.col"),
                            )
                        }),
                        scope.spawn(move |_| {
                            NatProbeTable::merge_spilled(
                                np_in,
                                &s8,
                                &format!("merged-{merge_id}-nat-probes.col"),
                            )
                        }),
                        scope.spawn(move |_| {
                            PunchTrialTable::merge_spilled(
                                pt_in,
                                &s9,
                                &format!("merged-{merge_id}-punch-trials.col"),
                            )
                        }),
                    )
                }
            };
        data.uptime = join_merged(uptime);
        data.capacity = join_merged(capacity);
        data.devices = join_merged(devices);
        data.packet_stats = join_merged(packet_stats)?;
        data.flows = join_merged(flows)?;
        data.dns = join_merged(dns)?;
        data.macs = join_merged(macs)?;
        data.wifi = join_merged(wifi)?;
        data.associations = join_merged(associations)?;
        data.latency = join_merged(latency)?;
        data.nat_probes = join_merged(nat_probes)?;
        data.punch_trials = join_merged(punch_trials)?;
        Ok(())
    })
    .unwrap_or_else(|panic| std::panic::resume_unwind(panic))?;
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::time::SimDuration;
    use std::net::Ipv4Addr;

    fn m(mins: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_mins(mins)
    }

    #[test]
    fn wire_heartbeats_accumulate_into_runs() {
        let collector = Collector::new();
        let wan = Ipv4Addr::new(100, 64, 0, 3);
        for i in 0..30u64 {
            let hb = Heartbeat { router: RouterId(9), seq: i };
            collector.ingest_heartbeat_wire(m(i), &hb.emit(wan)).unwrap();
        }
        let snap = collector.snapshot();
        let log = &snap.heartbeats[&RouterId(9)];
        assert_eq!(log.runs().len(), 1);
        assert_eq!(log.total_heartbeats(), 30);
    }

    #[test]
    fn malformed_heartbeats_rejected_and_counted() {
        let collector = Collector::new();
        assert!(collector.ingest_heartbeat_wire(m(0), &[0u8; 44]).is_err());
        assert_eq!(collector.rejected_heartbeats(), 1);
        assert!(collector.snapshot().heartbeats.is_empty());
    }

    #[test]
    fn records_routed_to_their_sets() {
        let collector = Collector::new();
        collector.ingest(Record::Uptime(UptimeRecord {
            router: RouterId(1),
            at: m(5),
            uptime: SimDuration::from_mins(5),
        }));
        collector.ingest(Record::DeviceCensus(DeviceCensusRecord {
            router: RouterId(1),
            at: m(60),
            wired: 1,
            wireless_24: 3,
            wireless_5: 1,
        }));
        let snap = collector.snapshot();
        assert_eq!(snap.uptime.len(), 1);
        assert_eq!(snap.devices.len(), 1);
        assert_eq!(snap.record_count(), 2);
    }

    #[test]
    fn snapshot_is_sorted_despite_interleaving() {
        let collector = Collector::new();
        for (router, at) in [(2u32, 100u64), (1, 50), (2, 10), (1, 200)] {
            collector.ingest(Record::Uptime(UptimeRecord {
                router: RouterId(router),
                at: m(at),
                uptime: SimDuration::ZERO,
            }));
        }
        let snap = collector.snapshot();
        let order: Vec<(u32, SimTime)> = snap.uptime.iter().map(|r| (r.router.0, r.at)).collect();
        assert_eq!(order, vec![(1, m(50)), (1, m(200)), (2, m(10)), (2, m(100))]);
    }

    #[test]
    fn shard_handle_matches_global_ingest() {
        let direct = Collector::new();
        let via_handle = Collector::new();
        let records: Vec<Record> = (0..100u64)
            .map(|i| {
                Record::Uptime(UptimeRecord {
                    router: RouterId(7),
                    at: m(i),
                    uptime: SimDuration::from_mins(i),
                })
            })
            .collect();
        direct.ingest_batch(records.clone());
        via_handle.shard_handle(RouterId(7)).ingest_batch(records);
        assert_eq!(direct.snapshot().uptime, via_handle.snapshot().uptime);
    }

    #[test]
    fn into_datasets_matches_snapshot() {
        let collector = Collector::new();
        collector.register(RouterMeta {
            router: RouterId(4),
            country: Country::India,
            traffic_consent: false,
        });
        collector.register(RouterMeta {
            router: RouterId(3),
            country: Country::UnitedStates,
            traffic_consent: true,
        });
        // Routers 130 and 2 collide with 2 mod 128: exercises the in-shard
        // stable-sort fallback as well as the disjoint fast path.
        for (router, at) in [(130u32, 5u64), (2, 9), (3, 1), (130, 7), (2, 4)] {
            collector.ingest(Record::Uptime(UptimeRecord {
                router: RouterId(router),
                at: m(at),
                uptime: SimDuration::ZERO,
            }));
        }
        // Heartbeat logs require chronological pushes per router.
        for (router, at) in [(2u32, 4u64), (2, 9), (3, 1), (130, 5), (130, 7)] {
            collector.ingest_heartbeat(HeartbeatRecord { router: RouterId(router), at: m(at) });
        }
        let snap = collector.snapshot();
        let owned = collector.into_datasets();
        assert_eq!(snap.routers, owned.routers);
        assert_eq!(snap.uptime, owned.uptime);
        assert_eq!(
            snap.uptime.iter().map(|r| (r.router.0, r.at)).collect::<Vec<_>>(),
            vec![(2, m(4)), (2, m(9)), (3, m(1)), (130, m(5)), (130, m(7))]
        );
        assert_eq!(snap.heartbeats.len(), owned.heartbeats.len());
        for (router, log) in &snap.heartbeats {
            assert_eq!(log.runs(), owned.heartbeats[router].runs());
        }
    }

    #[test]
    fn parallel_ingest_is_safe() {
        let collector = Collector::new();
        crossbeam::scope(|scope| {
            for router in 0..8u32 {
                let collector = &collector;
                scope.spawn(move |_| {
                    for i in 0..1_000u64 {
                        collector.ingest_heartbeat(HeartbeatRecord {
                            router: RouterId(router),
                            at: m(i),
                        });
                    }
                });
            }
        })
        .expect("threads join");
        let snap = collector.snapshot();
        assert_eq!(snap.heartbeats.len(), 8);
        for log in snap.heartbeats.values() {
            assert_eq!(log.total_heartbeats(), 1_000);
        }
    }

    #[test]
    fn collector_outage_swallows_records() {
        use crate::windows::Window;
        let collector = Collector::new();
        collector.set_outages(vec![Window { start: m(10), end: m(20) }]);
        for i in 0..30u64 {
            collector.ingest_heartbeat(HeartbeatRecord { router: RouterId(0), at: m(i) });
        }
        let snap = collector.snapshot();
        assert_eq!(snap.heartbeats[&RouterId(0)].total_heartbeats(), 20);
        assert_eq!(collector.dropped_in_outage(), 10);
        // The gap in the log matches the outage window.
        let gaps = snap.heartbeats[&RouterId(0)].downtimes(
            m(0),
            m(30),
            SimDuration::from_mins(5),
        );
        assert_eq!(gaps, vec![(m(9), m(20))]);
    }

    fn uptime_batch(router: u32, mins: std::ops::Range<u64>) -> Vec<Record> {
        mins.map(|i| {
            Record::Uptime(UptimeRecord {
                router: RouterId(router),
                at: m(i),
                uptime: SimDuration::from_mins(i),
            })
        })
        .collect()
    }

    #[test]
    fn upload_in_order_applies_and_acks() {
        let collector = Collector::new();
        let handle = collector.shard_handle(RouterId(7));
        let mut batch = uptime_batch(7, 0..10);
        let out = handle.ingest_upload(m(10), RouterId(7), 1, 0, &[], &mut batch);
        assert_eq!(out, UploadOutcome::Accepted);
        assert!(batch.is_empty(), "accepted batch is drained");
        assert_eq!(collector.snapshot().uptime.len(), 10);
        let c = collector.upload_counters();
        assert_eq!((c.accepted, c.retried_accepted, c.duplicates, c.rejected), (1, 0, 0, 0));
    }

    #[test]
    fn upload_replay_is_acked_but_discarded() {
        let collector = Collector::new();
        let handle = collector.shard_handle(RouterId(7));
        let mut batch = uptime_batch(7, 0..10);
        assert!(handle.ingest_upload(m(10), RouterId(7), 1, 0, &[], &mut batch).is_ack());
        let mut replay = uptime_batch(7, 0..10);
        let out = handle.ingest_upload(m(11), RouterId(7), 1, 2, &[], &mut replay);
        assert_eq!(out, UploadOutcome::Duplicate);
        assert!(replay.is_empty());
        assert_eq!(collector.snapshot().uptime.len(), 10, "no double ingestion");
        assert_eq!(collector.upload_counters().duplicates, 1);
    }

    #[test]
    fn out_of_order_batches_apply_in_sequence_order() {
        let collector = Collector::new();
        let handle = collector.shard_handle(RouterId(3));
        // Heartbeat records force chronological application: run logs
        // assert non-decreasing arrivals, so applying batch 2 before
        // batch 1 would blow up in debug builds.
        let mut second: Vec<Record> = (10..20u64)
            .map(|i| Record::Heartbeat(HeartbeatRecord { router: RouterId(3), at: m(i) }))
            .collect();
        let mut first: Vec<Record> = (0..10u64)
            .map(|i| Record::Heartbeat(HeartbeatRecord { router: RouterId(3), at: m(i) }))
            .collect();
        assert_eq!(
            handle.ingest_upload(m(30), RouterId(3), 2, 1, &[], &mut second),
            UploadOutcome::Accepted,
            "arrives first, buffered ahead of the watermark"
        );
        assert_eq!(collector.snapshot().heartbeats.len(), 0, "not applied yet");
        assert_eq!(
            handle.ingest_upload(m(31), RouterId(3), 1, 0, &[], &mut first),
            UploadOutcome::Accepted
        );
        let snap = collector.snapshot();
        assert_eq!(snap.heartbeats[&RouterId(3)].total_heartbeats(), 20);
        assert_eq!(snap.heartbeats[&RouterId(3)].runs().len(), 1);
    }

    #[test]
    fn downtime_nacks_batches_and_drops_heartbeat_datagrams() {
        use crate::windows::Window;
        let collector = Collector::new();
        collector.set_downtime(vec![Window { start: m(10), end: m(20) }]);
        let handle = collector.shard_handle(RouterId(5));
        let mut batch = uptime_batch(5, 0..4);
        let out = handle.ingest_upload(m(15), RouterId(5), 1, 0, &mut [], &mut batch);
        assert_eq!(out, UploadOutcome::Down { retry_at: m(20) });
        assert_eq!(batch.len(), 4, "nacked batch is untouched");
        assert_eq!(collector.upload_counters().rejected, 1);
        // Retry after the window: accepted, nothing lost.
        let retry = handle.ingest_upload(m(20), RouterId(5), 1, 1, &[], &mut batch);
        assert_eq!(retry, UploadOutcome::Accepted);
        assert_eq!(collector.upload_counters().retried_accepted, 1);
        assert_eq!(collector.snapshot().uptime.len(), 4);
        // Heartbeat datagrams are fire-and-forget: dropped, counted.
        collector.ingest_heartbeat(HeartbeatRecord { router: RouterId(5), at: m(15) });
        collector.ingest_heartbeat(HeartbeatRecord { router: RouterId(5), at: m(25) });
        assert_eq!(collector.dropped_in_downtime(), 1);
        assert_eq!(collector.snapshot().heartbeats[&RouterId(5)].total_heartbeats(), 1);
        assert_eq!(collector.snapshot().collector_downtime.len(), 1);
    }

    #[test]
    fn gap_declarations_advance_watermark_and_ledger_once() {
        use firmware::uploader::{GapCause, GapDecl};
        let collector = Collector::new();
        let handle = collector.shard_handle(RouterId(9));
        let decl = GapDecl {
            first_seq: 1,
            last_seq: 2,
            records_lost: 100,
            from: m(0),
            to: m(40),
            cause: GapCause::FlashWipe,
        };
        // Batch 3 carries the declaration that 1..=2 are gone.
        let mut batch = uptime_batch(9, 40..50);
        let out = handle.ingest_upload(m(50), RouterId(9), 3, 0, &[decl], &mut batch);
        assert_eq!(out, UploadOutcome::Accepted);
        assert_eq!(collector.snapshot().uptime.len(), 10, "batch 3 applied past the gap");
        // Replaying the declaration (with a duplicate batch) adds nothing.
        let mut replay = uptime_batch(9, 40..50);
        handle.ingest_upload(m(51), RouterId(9), 3, 1, &[decl], &mut replay);
        let snap = collector.snapshot();
        assert_eq!(snap.upload_gaps.len(), 1);
        let row = snap.upload_gaps[0];
        assert_eq!(
            (row.router, row.first_seq, row.last_seq, row.records_lost, row.cause),
            (RouterId(9), 1, 2, 100, GapCause::FlashWipe)
        );
        assert_eq!(collector.upload_counters().gap_declarations, 1);
    }

    fn traffic_records(router: u32, n: u64) -> Vec<Record> {
        use firmware::records::PacketStatsRecord;
        (0..n)
            .map(|i| {
                Record::PacketStats(PacketStatsRecord {
                    router: RouterId(router),
                    at: m(i),
                    bytes_down: i * 100,
                    bytes_up: i * 10,
                    pkts_down: i,
                    pkts_up: i / 2,
                    peak_down_1s: i,
                    peak_up_1s: i,
                })
            })
            .collect()
    }

    #[test]
    fn spill_budget_zero_spills_everything_and_matches_in_memory() {
        let dir = std::env::temp_dir().join(format!("bismark-spill-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let unbounded = Collector::new();
        let spilled = Collector::new();
        spilled
            .set_spill(&SpillConfig { budget_bytes: 0, dir: Some(dir.clone()) })
            .expect("spill dir creation");
        for c in [&unbounded, &spilled] {
            c.register(RouterMeta {
                router: RouterId(2),
                country: Country::UnitedStates,
                traffic_consent: true,
            });
            // Two colliding routers on one shard, uploaded in several
            // batches so multiple segments seal per shard.
            for router in [2u32, 130, 7] {
                for chunk in 0..4u64 {
                    c.ingest_batch(traffic_records(router, 50 + chunk));
                }
            }
        }
        let stats = spilled.spill_stats().expect("spilling armed");
        assert!(stats.segments > 0, "budget 0 must seal every batch");
        assert!(stats.bytes_written > 0);
        assert_eq!(stats.error, None);
        assert_eq!(unbounded.spill_stats(), None, "unarmed collector reports no stats");

        let snap = spilled.snapshot();
        let from_memory = unbounded.into_datasets();
        assert_eq!(snap.packet_stats, from_memory.packet_stats);
        assert!(snap.spilled_bytes() > 0);
        assert_eq!(from_memory.spilled_bytes(), 0);
        assert_eq!(
            snap.packet_stats.iter().collect::<Vec<_>>(),
            from_memory.packet_stats.iter().collect::<Vec<_>>()
        );

        // A second merge from the same collector (snapshot then consume)
        // must agree with the first — unique merged-file generations.
        let owned = spilled.into_datasets();
        assert_eq!(owned.packet_stats, from_memory.packet_stats);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spill_under_budget_stays_resident_and_identical() {
        let spilled = Collector::new();
        spilled
            .set_spill(&SpillConfig { budget_bytes: 1 << 30, dir: None })
            .expect("spill dir creation");
        let unbounded = Collector::new();
        for c in [&spilled, &unbounded] {
            c.ingest_batch(traffic_records(3, 100));
        }
        let stats = spilled.spill_stats().expect("spilling armed");
        assert_eq!(stats.segments, 0, "under budget: nothing seals");
        let a = spilled.into_datasets();
        let b = unbounded.into_datasets();
        assert_eq!(a.packet_stats, b.packet_stats);
        assert_eq!(a.spilled_bytes(), 0, "under-budget run is purely in-memory");
    }

    #[test]
    fn windowed_drain_absorb_matches_batch_snapshot() {
        windowed_drain_matches_batch(None);
    }

    #[test]
    fn windowed_drain_absorb_matches_batch_under_spill() {
        // Budget 0 seals every batch, so every window's delta arrives
        // spill-backed and the absorb streams it in from disk.
        windowed_drain_matches_batch(Some(0));
    }

    /// The stream-mode core claim at collector granularity: the same
    /// arrival sequence pushed through N drain+absorb windows must equal
    /// the single batch snapshot field for field.
    fn windowed_drain_matches_batch(spill_budget: Option<u64>) {
        let stream = Collector::new();
        if let Some(budget_bytes) = spill_budget {
            stream.set_spill(&SpillConfig { budget_bytes, dir: None }).expect("spill dir");
        }
        let batch = Collector::new();
        for c in [&stream, &batch] {
            c.register(RouterMeta {
                router: RouterId(2),
                country: Country::UnitedStates,
                traffic_consent: true,
            });
            c.register(RouterMeta {
                router: RouterId(130),
                country: Country::India,
                traffic_consent: false,
            });
        }
        let mut acc = Datasets::default();
        let mut absorber = DatasetsAbsorber::default();
        let per = 30u64;
        for w in 0..4u64 {
            let (lo, hi) = (w * per, (w + 1) * per);
            for c in [&stream, &batch] {
                // Routers 2 and 130 share a shard (130 ≡ 2 mod 128):
                // the in-shard merge paths run every window.
                for router in [2u32, 130, 7] {
                    c.ingest_batch(
                        (lo..hi)
                            .map(|i| {
                                Record::PacketStats(firmware::records::PacketStatsRecord {
                                    router: RouterId(router),
                                    at: m(i),
                                    bytes_down: i * 100,
                                    bytes_up: i * 10,
                                    pkts_down: i,
                                    pkts_up: i / 2,
                                    peak_down_1s: i,
                                    peak_up_1s: i,
                                })
                            })
                            .collect(),
                    );
                    c.ingest(Record::Uptime(UptimeRecord {
                        router: RouterId(router),
                        at: m(hi),
                        uptime: SimDuration::from_mins(hi),
                    }));
                    for i in lo..hi {
                        c.ingest_heartbeat(HeartbeatRecord {
                            router: RouterId(router),
                            at: m(i),
                        });
                    }
                }
                // Router 9's clock steps backwards across every window
                // boundary: absorb must take the per-router re-sort
                // fallback (row and columnar) and still match the batch
                // merge's stable sort.
                c.ingest(Record::Uptime(UptimeRecord {
                    router: RouterId(9),
                    at: m(1000 - lo),
                    uptime: SimDuration::from_mins(w),
                }));
                c.ingest(Record::PacketStats(firmware::records::PacketStatsRecord {
                    router: RouterId(9),
                    at: m(2000 - lo),
                    bytes_down: w,
                    bytes_up: w,
                    pkts_down: w,
                    pkts_up: w,
                    peak_down_1s: w,
                    peak_up_1s: w,
                }));
            }
            acc.absorb(stream.drain_delta(), &mut absorber);
        }
        if spill_budget.is_some() {
            let stats = stream.spill_stats().expect("spilling armed");
            assert_eq!(stats.segments, 0, "sealed segments moved into the deltas");
            assert_eq!(stats.error, None);
        }
        assert_eq!(acc.spilled_bytes(), 0, "the accumulator stays resident");
        let expect = batch.into_datasets();
        assert_eq!(acc, expect);
    }

    #[test]
    fn registration_and_consent_lookup() {
        let collector = Collector::new();
        collector.register(RouterMeta {
            router: RouterId(3),
            country: Country::UnitedStates,
            traffic_consent: true,
        });
        collector.register(RouterMeta {
            router: RouterId(4),
            country: Country::India,
            traffic_consent: false,
        });
        let snap = collector.snapshot();
        assert_eq!(snap.traffic_routers(), vec![RouterId(3)]);
        assert_eq!(snap.meta(RouterId(4)).unwrap().country, Country::India);
    }
}
