//! # collector — the central measurement server
//!
//! The deployment's back end: routers upload records ([`server`]), the
//! collector compresses the firehose of heartbeats into run logs
//! ([`runlog`]), stores the high-volume Traffic tables in compact
//! columnar form ([`columns`]), spills those columns to bounded-memory
//! disk segments when a budget is set ([`spill`]), clips analyses to the
//! per-data-set collection windows of Table 2 ([`windows`]), and exports
//! the PII-free public release ([`export`] — everything except Traffic,
//! exactly as the paper did).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod columns;
pub mod export;
pub mod runlog;
pub mod server;
pub mod spill;
pub mod windows;

pub use columns::{
    AbsorbState, AssociationTable, DnsTable, FlowTable, LatencyTable, MacTable, NatProbeTable,
    PacketStatsTable, PunchTrialTable, WifiTable,
};
pub use runlog::{HeartbeatRun, RunLog, UploadCounters};
pub use server::{
    Collector, Datasets, DatasetsAbsorber, RouterMeta, ShardHandle, SpillStats, UploadGapRecord,
    UploadOutcome, NUM_SHARDS,
};
pub use spill::{SpillConfig, SpillError};
pub use windows::Window;
