//! Public data release (§3.2: "we have released all measurements that do
//! not have personally identifying information — everything except the
//! Traffic data set").
//!
//! The exporter serializes the five releasable data sets to JSON and
//! refuses to include Traffic records, enforcing in code the policy the
//! paper enforced editorially.

use crate::server::Datasets;
use serde::Serialize;

/// The released subset of the data: everything but Traffic.
#[derive(Debug, Serialize)]
pub struct PublicRelease<'a> {
    /// Router metadata (country, but no consent flags — those reveal which
    /// households were monitored).
    pub routers: Vec<PublicRouter>,
    /// Heartbeat run logs.
    pub heartbeats: Vec<(u32, &'a crate::runlog::RunLog)>,
    /// Uptime reports.
    pub uptime: &'a [firmware::records::UptimeRecord],
    /// Capacity measurements.
    pub capacity: &'a [firmware::records::CapacityRecord],
    /// Device censuses.
    pub devices: &'a [firmware::records::DeviceCensusRecord],
    /// WiFi scans, materialized from the columnar table in its global
    /// (router, time, band) order.
    pub wifi: Vec<firmware::records::WifiScanRecord>,
}

/// Router metadata in the release.
#[derive(Debug, Serialize)]
pub struct PublicRouter {
    /// Router id.
    pub router: u32,
    /// ISO country code.
    pub country: String,
}

/// Build the public release view over a snapshot.
pub fn public_release(data: &Datasets) -> PublicRelease<'_> {
    // `Datasets::heartbeats` is a BTreeMap, so iteration is already in
    // ascending router order — the order the release format promises.
    let heartbeats: Vec<(u32, &crate::runlog::RunLog)> =
        data.heartbeats.iter().map(|(router, log)| (router.0, log)).collect();
    PublicRelease {
        routers: data
            .routers
            .iter()
            .map(|m| PublicRouter { router: m.router.0, country: m.country.code().to_string() })
            .collect(),
        heartbeats,
        uptime: &data.uptime,
        capacity: &data.capacity,
        devices: &data.devices,
        wifi: data.wifi.iter().collect(),
    }
}

/// Serialize the public release to JSON.
pub fn to_json(data: &Datasets) -> serde_json::Result<String> {
    serde_json::to_string(&public_release(data))
}

fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// The CSV files of the public release, as `(file name, contents)` pairs —
/// the deployment published its data as flat files in this spirit.
pub fn to_csv(data: &Datasets) -> Vec<(String, String)> {
    let mut files = Vec::new();

    let mut routers = String::from("router,country\n");
    let mut sorted_meta = data.routers.clone();
    sorted_meta.sort_by_key(|m| m.router);
    for meta in &sorted_meta {
        routers.push_str(&format!("{},{}\n", meta.router.0, csv_escape(meta.country.code())));
    }
    files.push(("routers.csv".to_string(), routers));

    let mut heartbeats = String::from("router,run_first_us,run_last_us,count\n");
    for (router, log) in data.heartbeats.iter() {
        for run in log.runs() {
            heartbeats.push_str(&format!(
                "{},{},{},{}\n",
                router.0,
                run.first.as_micros(),
                run.last.as_micros(),
                run.count
            ));
        }
    }
    files.push(("heartbeats.csv".to_string(), heartbeats));

    let mut uptime = String::from("router,at_us,uptime_us\n");
    for r in &data.uptime {
        uptime.push_str(&format!("{},{},{}\n", r.router.0, r.at.as_micros(), r.uptime.as_micros()));
    }
    files.push(("uptime.csv".to_string(), uptime));

    let mut capacity = String::from("router,at_us,down_bps,up_bps,shaping\n");
    for r in &data.capacity {
        capacity.push_str(&format!(
            "{},{},{},{},{}\n",
            r.router.0,
            r.at.as_micros(),
            r.down_bps,
            r.up_bps,
            r.shaping_detected
        ));
    }
    files.push(("capacity.csv".to_string(), capacity));

    let mut devices = String::from("router,at_us,wired,wireless_24,wireless_5\n");
    for r in &data.devices {
        devices.push_str(&format!(
            "{},{},{},{},{}\n",
            r.router.0,
            r.at.as_micros(),
            r.wired,
            r.wireless_24,
            r.wireless_5
        ));
    }
    files.push(("devices.csv".to_string(), devices));

    let mut wifi = String::from("router,at_us,band,associated,visible_aps\n");
    for r in &data.wifi {
        wifi.push_str(&format!(
            "{},{},{:?},{},{}\n",
            r.router.0,
            r.at.as_micros(),
            r.band,
            r.associated_stations,
            r.aps.len()
        ));
    }
    files.push(("wifi.csv".to_string(), wifi));

    files
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmware::records::{FlowRecord, RouterId};
    use firmware::{AnonMac, ReportedDomain};
    use household::Country;
    use simnet::packet::IpProtocol;
    use simnet::time::SimTime;


    #[test]
    fn traffic_never_leaves() {
        let mut data = Datasets::default();
        data.routers.push(crate::server::RouterMeta {
            router: RouterId(1),
            country: Country::UnitedStates,
            traffic_consent: true,
        });
        data.flows.push(FlowRecord {
            router: RouterId(1),
            started: SimTime::EPOCH,
            ended: SimTime::EPOCH,
            device: AnonMac { oui: 0x0017F2, suffix_hash: 0x1234 },
            remote_ip_hash: 99,
            remote_port: 443,
            proto: IpProtocol::Tcp,
            domain: ReportedDomain::Obfuscated(0x5EC237),
            bytes_down: 1,
            bytes_up: 1,
        });
        let json = to_json(&data).unwrap();
        assert!(!json.contains("remote_ip_hash"), "flow fields must not appear");
        assert!(!json.contains("traffic_consent"), "consent flags must not appear");
        assert!(json.contains("\"US\""));
    }

    #[test]
    fn csv_release_has_one_file_per_public_set() {
        let collector = crate::Collector::new();
        collector.register(crate::server::RouterMeta {
            router: RouterId(3),
            country: Country::UnitedStates,
            traffic_consent: true,
        });
        collector.ingest(firmware::records::Record::Heartbeat(
            firmware::records::HeartbeatRecord { router: RouterId(3), at: SimTime::EPOCH },
        ));
        let files = to_csv(&collector.snapshot());
        let names: Vec<&str> = files.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec!["routers.csv", "heartbeats.csv", "uptime.csv", "capacity.csv", "devices.csv", "wifi.csv"]
        );
        for (name, body) in &files {
            assert!(body.ends_with('\n') || body.lines().count() == 1, "{name} malformed");
            assert!(!body.to_lowercase().contains("flow"), "{name} leaks traffic fields");
        }
        let hb = &files[1].1;
        assert_eq!(hb.lines().count(), 2, "header + one run");
        assert!(hb.lines().nth(1).unwrap().starts_with("3,0,0,1"));
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn release_includes_five_sets() {
        let data = Datasets::default();
        let json = to_json(&data).unwrap();
        for key in ["routers", "heartbeats", "uptime", "capacity", "devices", "wifi"] {
            assert!(json.contains(key), "missing {key}");
        }
    }
}
