//! The collection windows of Table 2, as offsets from the study epoch
//! (Monday, October 1, 2012).
//!
//! | Data set   | Dates                        |
//! |------------|------------------------------|
//! | Heartbeats | Oct 1, 2012 – Apr 15, 2013   |
//! | Capacity   | Apr 1 – Apr 15, 2013         |
//! | Uptime     | Mar 6 – Apr 15, 2013         |
//! | Devices    | Mar 6 – Apr 15, 2013         |
//! | WiFi       | Nov 1 – Nov 15, 2012         |
//! | Traffic    | Apr 1 – Apr 15, 2013         |

use simnet::time::{SimDuration, SimTime};

/// Day index (from the Oct 1 epoch) of November 1, 2012.
pub const NOV_1: u64 = 31;
/// Day index of November 16, 2012 (exclusive end of the WiFi window).
pub const NOV_16: u64 = 46;
/// Day index of March 6, 2013.
pub const MAR_6: u64 = 156;
/// Day index of April 1, 2013.
pub const APR_1: u64 = 182;
/// Day index of April 16, 2013 (exclusive end of the spring windows).
pub const APR_16: u64 = 197;

fn day(d: u64) -> SimTime {
    SimTime::EPOCH + SimDuration::from_days(d)
}

/// A half-open collection window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Inclusive start.
    pub start: SimTime,
    /// Exclusive end.
    pub end: SimTime,
}

impl Window {
    /// Window length.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }

    /// Does the window contain `t`?
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// Heartbeats: October 1, 2012 – April 15, 2013.
pub fn heartbeats() -> Window {
    Window { start: day(0), end: day(APR_16) }
}

/// Uptime: March 6 – April 15, 2013.
pub fn uptime() -> Window {
    Window { start: day(MAR_6), end: day(APR_16) }
}

/// Devices: March 6 – April 15, 2013.
pub fn devices() -> Window {
    Window { start: day(MAR_6), end: day(APR_16) }
}

/// WiFi: November 1 – November 15, 2012.
pub fn wifi() -> Window {
    Window { start: day(NOV_1), end: day(NOV_16) }
}

/// Capacity: April 1 – April 15, 2013.
pub fn capacity() -> Window {
    Window { start: day(APR_1), end: day(APR_16) }
}

/// Traffic: April 1 – April 15, 2013.
pub fn traffic() -> Window {
    Window { start: day(APR_1), end: day(APR_16) }
}

/// The full study span (equal to the Heartbeats window).
pub fn full_study() -> Window {
    heartbeats()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_lengths_match_table2() {
        assert_eq!(heartbeats().duration().as_days_f64(), 197.0);
        assert_eq!(wifi().duration().as_days_f64(), 15.0);
        assert_eq!(capacity().duration().as_days_f64(), 15.0);
        assert_eq!(traffic().duration().as_days_f64(), 15.0);
        assert_eq!(uptime().duration().as_days_f64(), 41.0);
        assert_eq!(devices(), uptime());
    }

    #[test]
    fn calendar_offsets_consistent() {
        // Oct 31 days, Nov 30, Dec 31, Jan 31, Feb 28, Mar 31.
        assert_eq!(NOV_1, 31);
        assert_eq!(MAR_6, 31 + 30 + 31 + 31 + 28 + 5);
        assert_eq!(APR_1, 31 + 30 + 31 + 31 + 28 + 31);
    }

    #[test]
    fn containment() {
        let w = wifi();
        assert!(w.contains(day(NOV_1)));
        assert!(w.contains(day(NOV_16) - SimDuration::from_secs(1)));
        assert!(!w.contains(day(NOV_16)));
        assert!(!w.contains(day(0)));
    }
}
