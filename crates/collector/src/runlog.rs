//! Run-length-encoded heartbeat logs.
//!
//! The deployment received one heartbeat per router per minute for six
//! months — tens of millions of timestamps. Since every §4 analysis only
//! cares about *gaps of ten minutes or more*, the collector compresses
//! consecutive-minute heartbeats into runs at ingest time: a run is a
//! `(first, last, count)` triple of heartbeats no more than a tolerance
//! apart. Isolated heartbeat losses (a 2-minute hole) stay inside a run
//! and — exactly as in the paper — remain invisible to the downtime
//! analysis; only sustained silence splits runs.

use serde::{Deserialize, Serialize};
use simnet::time::{SimDuration, SimTime};

/// Heartbeats arrive nominally 60 s apart; anything up to this tolerance
/// extends the current run. Three minutes spans up to two consecutive
/// losses, which can never amount to the ten-minute downtime threshold.
pub const RUN_TOLERANCE: SimDuration = SimDuration::from_secs(3 * 60);

/// A maximal run of regularly received heartbeats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeartbeatRun {
    /// Arrival of the first heartbeat in the run.
    pub first: SimTime,
    /// Arrival of the last heartbeat in the run.
    pub last: SimTime,
    /// Number of heartbeats received in the run.
    pub count: u64,
}

impl HeartbeatRun {
    /// Span covered by the run.
    pub fn span(&self) -> SimDuration {
        self.last.since(self.first)
    }
}

/// The compressed heartbeat log for one router.
///
/// ```
/// use collector::RunLog;
/// use simnet::time::{SimDuration, SimTime};
///
/// let minute = |m: u64| SimTime::EPOCH + SimDuration::from_mins(m);
/// let mut log = RunLog::new();
/// for m in (0..30).chain(60..90) {
///     log.push(minute(m)); // a 30-minute silence splits two runs
/// }
/// assert_eq!(log.runs().len(), 2);
/// let gaps = log.downtimes(minute(0), minute(90), SimDuration::from_mins(10));
/// assert_eq!(gaps, vec![(minute(29), minute(60))]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunLog {
    runs: Vec<HeartbeatRun>,
}

impl RunLog {
    /// An empty log.
    pub fn new() -> RunLog {
        RunLog::default()
    }

    /// Record a heartbeat arrival. Arrivals must be non-decreasing.
    pub fn push(&mut self, at: SimTime) {
        match self.runs.last_mut() {
            Some(run) if at >= run.last && at.since(run.last) <= RUN_TOLERANCE => {
                run.last = at;
                run.count += 1;
            }
            Some(run) => {
                debug_assert!(at >= run.last, "heartbeats must arrive in order");
                self.runs.push(HeartbeatRun { first: at, last: at, count: 1 });
            }
            None => self.runs.push(HeartbeatRun { first: at, last: at, count: 1 }),
        }
    }

    /// Append a later log onto this one — the stream-mode fold of one
    /// window's heartbeats behind the accumulated history. When the
    /// other log's first run starts within [`RUN_TOLERANCE`] of this
    /// log's last heartbeat the two boundary runs merge, so the result
    /// is exactly the log a single [`RunLog::push`] stream of all the
    /// arrivals would have produced.
    pub fn append(&mut self, other: &RunLog) {
        let mut incoming = other.runs.iter();
        if let (Some(last), Some(first)) = (self.runs.last_mut(), other.runs.first()) {
            debug_assert!(first.first >= last.last, "window logs must arrive in order");
            if first.first >= last.last && first.first.since(last.last) <= RUN_TOLERANCE {
                last.last = first.last;
                last.count += first.count;
                incoming.next();
            }
        }
        self.runs.extend(incoming.copied());
    }

    /// The runs, in time order.
    pub fn runs(&self) -> &[HeartbeatRun] {
        &self.runs
    }

    /// Total heartbeats received.
    pub fn total_heartbeats(&self) -> u64 {
        self.runs.iter().map(|r| r.count).sum()
    }

    /// Time of the first/last heartbeat ever received.
    pub fn extent(&self) -> Option<(SimTime, SimTime)> {
        match (self.runs.first(), self.runs.last()) {
            (Some(a), Some(b)) => Some((a.first, b.last)),
            _ => None,
        }
    }

    /// Gaps of at least `min_gap` between runs, within `[start, end)` —
    /// the paper's downtime events. The period before the first heartbeat
    /// and after the last one inside the window also counts when long
    /// enough (a router that never reports *is* down).
    pub fn downtimes(
        &self,
        start: SimTime,
        end: SimTime,
        min_gap: SimDuration,
    ) -> Vec<(SimTime, SimTime)> {
        let mut gaps = Vec::new();
        let mut cursor = start;
        for run in &self.runs {
            if run.last < start {
                cursor = cursor.max(run.last);
                continue;
            }
            if run.first >= end {
                break;
            }
            let gap_start = cursor;
            let gap_end = run.first.min(end);
            if gap_end > gap_start && gap_end.since(gap_start) >= min_gap {
                gaps.push((gap_start, gap_end));
            }
            cursor = cursor.max(run.last.min(end));
        }
        if end > cursor && end.since(cursor) >= min_gap {
            gaps.push((cursor, end));
        }
        gaps
    }

    /// Fraction of `[start, end)` covered by heartbeat runs — the §4.2
    /// "router on X% of the time" metric.
    pub fn coverage(&self, start: SimTime, end: SimTime) -> f64 {
        assert!(end > start);
        let mut covered = SimDuration::ZERO;
        for run in &self.runs {
            let s = run.first.max(start);
            let e = run.last.min(end);
            if e > s {
                covered += e.since(s);
            }
        }
        covered / end.since(start)
    }
}

/// Delivery accounting for the batch upload path, kept alongside the run
/// logs so an operator reading the collection run can tell a healthy fleet
/// ("everything accepted first try") from one limping through faults
/// ("retried-then-accepted"), and both from actual rejections.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UploadCounters {
    /// Batches accepted and applied (first appearance of their sequence
    /// number, whether in order or buffered ahead of the watermark).
    pub accepted: u64,
    /// Of `accepted`, how many arrived with a non-zero attempt counter —
    /// i.e. were retried at least once before getting through.
    pub retried_accepted: u64,
    /// Batches acknowledged but discarded because their sequence number
    /// was already known (replays after a lost ack).
    pub duplicates: u64,
    /// Upload attempts nacked because the collector was down. These are
    /// *rejections*, not losses: the router keeps the batch and retries.
    pub rejected: u64,
    /// Gap declarations accepted onto the ledger (declared-lost batch
    /// ranges — the only path by which records are ever truly lost).
    pub gap_declarations: u64,
    /// Per-router sequence watermark increments (a batch applied in order,
    /// a buffered batch drained contiguous, or a declared gap skipped).
    pub watermark_advances: u64,
}

impl UploadCounters {
    /// Fold another counter set into this one (per-shard → global).
    pub fn merge(&mut self, other: UploadCounters) {
        self.accepted += other.accepted;
        self.retried_accepted += other.retried_accepted;
        self.duplicates += other.duplicates;
        self.rejected += other.rejected;
        self.gap_declarations += other.gap_declarations;
        self.watermark_advances += other.watermark_advances;
    }

    /// Batches that went through on their first attempt.
    pub fn delivered_first_try(&self) -> u64 {
        self.accepted - self.retried_accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(mins: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_mins(mins)
    }

    #[test]
    fn upload_counters_merge_and_distinguish_retries() {
        let mut a = UploadCounters { accepted: 10, retried_accepted: 2, ..Default::default() };
        let b = UploadCounters {
            accepted: 5,
            retried_accepted: 5,
            duplicates: 3,
            rejected: 7,
            gap_declarations: 1,
            watermark_advances: 4,
        };
        a.merge(b);
        assert_eq!(a.accepted, 15);
        assert_eq!(a.retried_accepted, 7);
        assert_eq!(a.delivered_first_try(), 8);
        assert_eq!((a.duplicates, a.rejected, a.gap_declarations), (3, 7, 1));
        assert_eq!(a.watermark_advances, 4);
    }

    #[test]
    fn consecutive_minutes_form_one_run() {
        let mut log = RunLog::new();
        for i in 0..60 {
            log.push(m(i));
        }
        assert_eq!(log.runs().len(), 1);
        assert_eq!(log.total_heartbeats(), 60);
        assert_eq!(log.runs()[0].span(), SimDuration::from_mins(59));
    }

    #[test]
    fn single_loss_stays_inside_run() {
        let mut log = RunLog::new();
        for i in 0..10 {
            if i != 5 {
                log.push(m(i));
            }
        }
        assert_eq!(log.runs().len(), 1, "a 2-minute hole is within tolerance");
        assert_eq!(log.total_heartbeats(), 9);
    }

    #[test]
    fn long_silence_splits_runs() {
        let mut log = RunLog::new();
        log.push(m(0));
        log.push(m(1));
        log.push(m(30));
        log.push(m(31));
        assert_eq!(log.runs().len(), 2);
    }

    #[test]
    fn append_equals_continuous_push_at_every_split() {
        // Whatever minute a stream window boundary lands on — mid-run,
        // inside a short hole, across a real downtime — folding the two
        // halves back together must reproduce the continuously pushed log.
        let arrivals: Vec<u64> = (0..10).chain(15..20).chain(40..50).collect();
        let mut whole = RunLog::new();
        for &i in &arrivals {
            whole.push(m(i));
        }
        for split in 0..=arrivals.len() {
            let mut head = RunLog::new();
            for &i in &arrivals[..split] {
                head.push(m(i));
            }
            let mut tail = RunLog::new();
            for &i in &arrivals[split..] {
                tail.push(m(i));
            }
            head.append(&tail);
            assert_eq!(head, whole, "split at {split}");
        }
    }

    #[test]
    fn downtimes_respect_threshold() {
        let mut log = RunLog::new();
        for i in 0..10 {
            log.push(m(i));
        }
        for i in 15..20 {
            log.push(m(i)); // 6-minute gap: below threshold
        }
        for i in 40..50 {
            log.push(m(i)); // 21-minute gap: downtime
        }
        let gaps = log.downtimes(m(0), m(50), SimDuration::from_mins(10));
        assert_eq!(gaps, vec![(m(19), m(40))]);
    }

    #[test]
    fn leading_and_trailing_silence_count() {
        let mut log = RunLog::new();
        for i in 30..40 {
            log.push(m(i));
        }
        let gaps = log.downtimes(m(0), m(100), SimDuration::from_mins(10));
        assert_eq!(gaps, vec![(m(0), m(30)), (m(39), m(100))]);
    }

    #[test]
    fn empty_log_is_one_big_downtime() {
        let log = RunLog::new();
        let gaps = log.downtimes(m(0), m(100), SimDuration::from_mins(10));
        assert_eq!(gaps, vec![(m(0), m(100))]);
        assert_eq!(log.extent(), None);
    }

    #[test]
    fn coverage_fraction() {
        let mut log = RunLog::new();
        for i in 0..25 {
            log.push(m(i));
        }
        for i in 75..100 {
            log.push(m(i));
        }
        let cov = log.coverage(m(0), m(100));
        assert!((cov - 0.48).abs() < 0.01, "coverage {cov}");
    }

    #[test]
    fn downtimes_clipped_to_window() {
        let mut log = RunLog::new();
        log.push(m(0));
        log.push(m(100));
        let gaps = log.downtimes(m(20), m(80), SimDuration::from_mins(10));
        assert_eq!(gaps, vec![(m(20), m(80))]);
    }
}
