//! Columnar (struct-of-arrays) storage for the high-volume Traffic tables.
//!
//! The four Traffic tables — per-minute packet statistics, flows, DNS
//! samples, and MAC sightings — dominate a study's memory footprint: the
//! 197-day deployment materializes tens of millions of them, and scaling
//! the deployment to 10k+ homes multiplies that by two orders of
//! magnitude. Row-of-structs `Vec<Record>` storage pays padding and full
//! `u64` width for every field; this module stores each table as one
//! column per field, grouped per router, with narrow encodings:
//!
//! * **timestamps** ([`TimeCol`]) — delta-from-previous as `u32`
//!   microseconds, with a sentinel escape to a 64-bit side array for
//!   backward jumps or gaps over ~71 minutes. Per-router record streams
//!   are chronological, so escapes are rare;
//! * **counters** ([`NarrowCol`]) — `u32` fast lane with the same
//!   sentinel escape for values that need 64 bits;
//! * **domains** ([`DomainPool`]) — per-router interning of
//!   [`ReportedDomain`] values to `u32` ids (homes revisit the same
//!   handful of domains all study long);
//! * **everything small** (`AnonMac`, ports, protocols, flags) — plain
//!   dense vectors at natural width.
//!
//! The encodings are *pure functions of the pushed record sequence*, so
//! the derived `PartialEq` on a table equals record-sequence equality —
//! determinism tests can keep comparing snapshots directly. Iteration
//! rebuilds records by value in (router, arrival) order, which after a
//! snapshot merge is exactly the (router, time)-sorted global order the
//! legacy row vectors had; callers iterate (`for r in &data.flows`)
//! without caring that rows no longer exist in memory.

use firmware::anonymize::{AnonMac, ReportedDomain};
use firmware::records::{
    DnsSampleRecord, FlowRecord, MacSightingRecord, PacketStatsRecord, RouterId,
};
use simnet::packet::IpProtocol;
use simnet::time::SimTime;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

/// The escape marker in a narrow lane: the real value lives in the wide
/// side array. Chosen at the top of the `u32` range so every in-range
/// value encodes as itself.
const ESCAPE: u32 = u32::MAX;

/// A timestamp column: `u32` microsecond deltas from the previous entry,
/// escaping to an absolute 64-bit side array when a record jumps backward
/// or more than `u32::MAX - 1` microseconds (~71 minutes) forward.
/// Lossless for any input order; 4 bytes per record in the steady state.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeCol {
    enc: Vec<u32>,
    wide: Vec<u64>,
    /// Encoder state: absolute microseconds of the last appended entry.
    last: u64,
}

impl TimeCol {
    /// An empty column (`const`, so shared static empties are possible).
    pub const fn empty() -> TimeCol {
        TimeCol { enc: Vec::new(), wide: Vec::new(), last: 0 }
    }

    /// Append one timestamp.
    pub fn append(&mut self, t: SimTime) {
        let us = t.as_micros();
        let delta = us.wrapping_sub(self.last);
        if us >= self.last && delta < u64::from(ESCAPE) {
            self.enc.push(delta as u32);
        } else {
            self.enc.push(ESCAPE);
            self.wide.push(us);
        }
        self.last = us;
    }

    /// Entries appended so far.
    pub fn len(&self) -> usize {
        self.enc.len()
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.enc.is_empty()
    }

    /// Sequential decode of every timestamp, in append order.
    pub fn iter(&self) -> TimeColIter<'_> {
        TimeColIter { enc: self.enc.iter(), wide: self.wide.iter(), last: 0 }
    }

    /// Heap bytes held by the column.
    pub fn heap_bytes(&self) -> usize {
        self.enc.capacity() * 4 + self.wide.capacity() * 8
    }
}

impl Default for TimeCol {
    fn default() -> TimeCol {
        TimeCol::empty()
    }
}

/// Sequential decoder over a [`TimeCol`].
#[derive(Debug, Clone)]
pub struct TimeColIter<'a> {
    enc: std::slice::Iter<'a, u32>,
    wide: std::slice::Iter<'a, u64>,
    last: u64,
}

impl Iterator for TimeColIter<'_> {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        let &e = self.enc.next()?;
        self.last = if e == ESCAPE {
            self.wide.next().copied()?
        } else {
            self.last + u64::from(e)
        };
        Some(SimTime::from_micros(self.last))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.enc.size_hint()
    }
}

impl ExactSizeIterator for TimeColIter<'_> {}

/// A `u64` value column with a `u32` fast lane: values below the escape
/// threshold store in 4 bytes, the rest go to a 64-bit side array. Byte
/// and packet counts per one-minute window almost always fit.
#[derive(Debug, Clone, PartialEq)]
pub struct NarrowCol {
    enc: Vec<u32>,
    wide: Vec<u64>,
}

impl NarrowCol {
    /// An empty column.
    pub const fn empty() -> NarrowCol {
        NarrowCol { enc: Vec::new(), wide: Vec::new() }
    }

    /// Append one value.
    pub fn append(&mut self, v: u64) {
        if v < u64::from(ESCAPE) {
            self.enc.push(v as u32);
        } else {
            self.enc.push(ESCAPE);
            self.wide.push(v);
        }
    }

    /// Entries appended so far.
    pub fn len(&self) -> usize {
        self.enc.len()
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.enc.is_empty()
    }

    /// Sequential decode of every value, in append order.
    pub fn iter(&self) -> NarrowColIter<'_> {
        NarrowColIter { enc: self.enc.iter(), wide: self.wide.iter() }
    }

    /// Heap bytes held by the column.
    pub fn heap_bytes(&self) -> usize {
        self.enc.capacity() * 4 + self.wide.capacity() * 8
    }
}

impl Default for NarrowCol {
    fn default() -> NarrowCol {
        NarrowCol::empty()
    }
}

/// Sequential decoder over a [`NarrowCol`].
#[derive(Debug, Clone)]
pub struct NarrowColIter<'a> {
    enc: std::slice::Iter<'a, u32>,
    wide: std::slice::Iter<'a, u64>,
}

impl Iterator for NarrowColIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let &e = self.enc.next()?;
        if e == ESCAPE {
            self.wide.next().copied()
        } else {
            Some(u64::from(e))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.enc.size_hint()
    }
}

impl ExactSizeIterator for NarrowColIter<'_> {}

/// A per-router domain interner: each distinct [`ReportedDomain`] is
/// stored once and referenced by a dense `u32` id. Equality compares the
/// pool only — first-appearance order is a pure function of the pushed
/// sequence, and the lookup map is derivable from the pool.
#[derive(Debug, Clone)]
pub struct DomainPool {
    pool: Vec<ReportedDomain>,
    lookup: BTreeMap<ReportedDomain, u32>,
}

impl DomainPool {
    /// An empty pool.
    pub const fn empty() -> DomainPool {
        DomainPool { pool: Vec::new(), lookup: BTreeMap::new() }
    }

    /// The id for a domain, interning it on first sight.
    pub fn intern(&mut self, domain: &ReportedDomain) -> u32 {
        if let Some(&id) = self.lookup.get(domain) {
            return id;
        }
        let id = self.pool.len() as u32;
        self.pool.push(domain.clone());
        self.lookup.insert(domain.clone(), id);
        id
    }

    /// The domain behind an id issued by this pool.
    ///
    /// # Panics
    /// If the id was not issued by this pool (a column/pool pairing bug).
    pub fn get(&self, id: u32) -> &ReportedDomain {
        &self.pool[id as usize]
    }

    /// Distinct domains interned.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }
}

impl Default for DomainPool {
    fn default() -> DomainPool {
        DomainPool::empty()
    }
}

impl PartialEq for DomainPool {
    fn eq(&self, other: &DomainPool) -> bool {
        self.pool == other.pool
    }
}

/// Columns of one router's [`PacketStatsRecord`] stream.
#[derive(Debug, Clone, PartialEq)]
struct PacketStatsCols {
    at: TimeCol,
    bytes_down: NarrowCol,
    bytes_up: NarrowCol,
    pkts_down: NarrowCol,
    pkts_up: NarrowCol,
    peak_down_1s: NarrowCol,
    peak_up_1s: NarrowCol,
}

impl PacketStatsCols {
    const fn empty() -> PacketStatsCols {
        PacketStatsCols {
            at: TimeCol::empty(),
            bytes_down: NarrowCol::empty(),
            bytes_up: NarrowCol::empty(),
            pkts_down: NarrowCol::empty(),
            pkts_up: NarrowCol::empty(),
            peak_down_1s: NarrowCol::empty(),
            peak_up_1s: NarrowCol::empty(),
        }
    }

    fn append(&mut self, r: &PacketStatsRecord) {
        self.at.append(r.at);
        self.bytes_down.append(r.bytes_down);
        self.bytes_up.append(r.bytes_up);
        self.pkts_down.append(r.pkts_down);
        self.pkts_up.append(r.pkts_up);
        self.peak_down_1s.append(r.peak_down_1s);
        self.peak_up_1s.append(r.peak_up_1s);
    }

    fn len(&self) -> usize {
        self.at.len()
    }

    fn iter(&self, router: RouterId) -> RouterPacketStats<'_> {
        RouterPacketStats {
            router,
            at: self.at.iter(),
            bytes_down: self.bytes_down.iter(),
            bytes_up: self.bytes_up.iter(),
            pkts_down: self.pkts_down.iter(),
            pkts_up: self.pkts_up.iter(),
            peak_down_1s: self.peak_down_1s.iter(),
            peak_up_1s: self.peak_up_1s.iter(),
        }
    }

    fn heap_bytes(&self) -> usize {
        self.at.heap_bytes()
            + self.bytes_down.heap_bytes()
            + self.bytes_up.heap_bytes()
            + self.pkts_down.heap_bytes()
            + self.pkts_up.heap_bytes()
            + self.peak_down_1s.heap_bytes()
            + self.peak_up_1s.heap_bytes()
    }
}

impl Default for PacketStatsCols {
    fn default() -> PacketStatsCols {
        PacketStatsCols::empty()
    }
}

/// One router's packet statistics, rebuilt record-by-record from columns.
#[derive(Debug, Clone)]
pub struct RouterPacketStats<'a> {
    router: RouterId,
    at: TimeColIter<'a>,
    bytes_down: NarrowColIter<'a>,
    bytes_up: NarrowColIter<'a>,
    pkts_down: NarrowColIter<'a>,
    pkts_up: NarrowColIter<'a>,
    peak_down_1s: NarrowColIter<'a>,
    peak_up_1s: NarrowColIter<'a>,
}

impl Iterator for RouterPacketStats<'_> {
    type Item = PacketStatsRecord;

    fn next(&mut self) -> Option<PacketStatsRecord> {
        Some(PacketStatsRecord {
            router: self.router,
            at: self.at.next()?,
            bytes_down: self.bytes_down.next()?,
            bytes_up: self.bytes_up.next()?,
            pkts_down: self.pkts_down.next()?,
            pkts_up: self.pkts_up.next()?,
            peak_down_1s: self.peak_down_1s.next()?,
            peak_up_1s: self.peak_up_1s.next()?,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.at.size_hint()
    }
}

impl ExactSizeIterator for RouterPacketStats<'_> {}

/// Columns of one router's [`FlowRecord`] stream. `ended` is the
/// chronological axis (records are emitted at completion); `started`
/// stores as the flow duration relative to `ended`, which is small for
/// real flows and losslessly wrapping for arbitrary test input.
#[derive(Debug, Clone, PartialEq)]
struct FlowCols {
    ended: TimeCol,
    dur: NarrowCol,
    device: Vec<AnonMac>,
    remote_ip_hash: Vec<u64>,
    remote_port: Vec<u16>,
    proto: Vec<IpProtocol>,
    domain: Vec<u32>,
    domains: DomainPool,
    bytes_down: NarrowCol,
    bytes_up: NarrowCol,
}

impl FlowCols {
    const fn empty() -> FlowCols {
        FlowCols {
            ended: TimeCol::empty(),
            dur: NarrowCol::empty(),
            device: Vec::new(),
            remote_ip_hash: Vec::new(),
            remote_port: Vec::new(),
            proto: Vec::new(),
            domain: Vec::new(),
            domains: DomainPool::empty(),
            bytes_down: NarrowCol::empty(),
            bytes_up: NarrowCol::empty(),
        }
    }

    fn append(&mut self, r: &FlowRecord) {
        self.ended.append(r.ended);
        self.dur.append(r.ended.as_micros().wrapping_sub(r.started.as_micros()));
        self.device.push(r.device);
        self.remote_ip_hash.push(r.remote_ip_hash);
        self.remote_port.push(r.remote_port);
        self.proto.push(r.proto);
        let id = self.domains.intern(&r.domain);
        self.domain.push(id);
        self.bytes_down.append(r.bytes_down);
        self.bytes_up.append(r.bytes_up);
    }

    fn len(&self) -> usize {
        self.ended.len()
    }

    fn iter(&self, router: RouterId) -> RouterFlows<'_> {
        RouterFlows {
            router,
            ended: self.ended.iter(),
            dur: self.dur.iter(),
            device: self.device.iter(),
            remote_ip_hash: self.remote_ip_hash.iter(),
            remote_port: self.remote_port.iter(),
            proto: self.proto.iter(),
            domain: self.domain.iter(),
            domains: &self.domains,
            bytes_down: self.bytes_down.iter(),
            bytes_up: self.bytes_up.iter(),
        }
    }

    fn heap_bytes(&self) -> usize {
        self.ended.heap_bytes()
            + self.dur.heap_bytes()
            + self.device.capacity() * std::mem::size_of::<AnonMac>()
            + self.remote_ip_hash.capacity() * 8
            + self.remote_port.capacity() * 2
            + self.proto.capacity()
            + self.domain.capacity() * 4
            + self.bytes_down.heap_bytes()
            + self.bytes_up.heap_bytes()
    }
}

impl Default for FlowCols {
    fn default() -> FlowCols {
        FlowCols::empty()
    }
}

/// One router's flows, rebuilt record-by-record from columns.
#[derive(Debug, Clone)]
pub struct RouterFlows<'a> {
    router: RouterId,
    ended: TimeColIter<'a>,
    dur: NarrowColIter<'a>,
    device: std::slice::Iter<'a, AnonMac>,
    remote_ip_hash: std::slice::Iter<'a, u64>,
    remote_port: std::slice::Iter<'a, u16>,
    proto: std::slice::Iter<'a, IpProtocol>,
    domain: std::slice::Iter<'a, u32>,
    domains: &'a DomainPool,
    bytes_down: NarrowColIter<'a>,
    bytes_up: NarrowColIter<'a>,
}

impl Iterator for RouterFlows<'_> {
    type Item = FlowRecord;

    fn next(&mut self) -> Option<FlowRecord> {
        let ended = self.ended.next()?;
        let dur = self.dur.next()?;
        Some(FlowRecord {
            router: self.router,
            started: SimTime::from_micros(ended.as_micros().wrapping_sub(dur)),
            ended,
            device: self.device.next().copied()?,
            remote_ip_hash: self.remote_ip_hash.next().copied()?,
            remote_port: self.remote_port.next().copied()?,
            proto: self.proto.next().copied()?,
            domain: self.domains.get(*self.domain.next()?).clone(),
            bytes_down: self.bytes_down.next()?,
            bytes_up: self.bytes_up.next()?,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.ended.size_hint()
    }
}

impl ExactSizeIterator for RouterFlows<'_> {}

/// Columns of one router's [`DnsSampleRecord`] stream.
#[derive(Debug, Clone, PartialEq)]
struct DnsCols {
    at: TimeCol,
    device: Vec<AnonMac>,
    name: Vec<u32>,
    names: DomainPool,
    cname_links: Vec<u8>,
    resolved: Vec<bool>,
}

impl DnsCols {
    const fn empty() -> DnsCols {
        DnsCols {
            at: TimeCol::empty(),
            device: Vec::new(),
            name: Vec::new(),
            names: DomainPool::empty(),
            cname_links: Vec::new(),
            resolved: Vec::new(),
        }
    }

    fn append(&mut self, r: &DnsSampleRecord) {
        self.at.append(r.at);
        self.device.push(r.device);
        let id = self.names.intern(&r.name);
        self.name.push(id);
        self.cname_links.push(r.cname_links);
        self.resolved.push(r.resolved);
    }

    fn len(&self) -> usize {
        self.at.len()
    }

    fn iter(&self, router: RouterId) -> RouterDns<'_> {
        RouterDns {
            router,
            at: self.at.iter(),
            device: self.device.iter(),
            name: self.name.iter(),
            names: &self.names,
            cname_links: self.cname_links.iter(),
            resolved: self.resolved.iter(),
        }
    }

    fn heap_bytes(&self) -> usize {
        self.at.heap_bytes()
            + self.device.capacity() * std::mem::size_of::<AnonMac>()
            + self.name.capacity() * 4
            + self.cname_links.capacity()
            + self.resolved.capacity()
    }
}

impl Default for DnsCols {
    fn default() -> DnsCols {
        DnsCols::empty()
    }
}

/// One router's DNS samples, rebuilt record-by-record from columns.
#[derive(Debug, Clone)]
pub struct RouterDns<'a> {
    router: RouterId,
    at: TimeColIter<'a>,
    device: std::slice::Iter<'a, AnonMac>,
    name: std::slice::Iter<'a, u32>,
    names: &'a DomainPool,
    cname_links: std::slice::Iter<'a, u8>,
    resolved: std::slice::Iter<'a, bool>,
}

impl Iterator for RouterDns<'_> {
    type Item = DnsSampleRecord;

    fn next(&mut self) -> Option<DnsSampleRecord> {
        Some(DnsSampleRecord {
            router: self.router,
            at: self.at.next()?,
            device: self.device.next().copied()?,
            name: self.names.get(*self.name.next()?).clone(),
            cname_links: self.cname_links.next().copied()?,
            resolved: self.resolved.next().copied()?,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.at.size_hint()
    }
}

impl ExactSizeIterator for RouterDns<'_> {}

/// Columns of one router's [`MacSightingRecord`] stream.
#[derive(Debug, Clone, PartialEq)]
struct MacCols {
    first_seen: TimeCol,
    device: Vec<AnonMac>,
    bytes_total: NarrowCol,
}

impl MacCols {
    const fn empty() -> MacCols {
        MacCols {
            first_seen: TimeCol::empty(),
            device: Vec::new(),
            bytes_total: NarrowCol::empty(),
        }
    }

    fn append(&mut self, r: &MacSightingRecord) {
        self.first_seen.append(r.first_seen);
        self.device.push(r.device);
        self.bytes_total.append(r.bytes_total);
    }

    fn len(&self) -> usize {
        self.first_seen.len()
    }

    fn iter(&self, router: RouterId) -> RouterMacs<'_> {
        RouterMacs {
            router,
            first_seen: self.first_seen.iter(),
            device: self.device.iter(),
            bytes_total: self.bytes_total.iter(),
        }
    }

    fn heap_bytes(&self) -> usize {
        self.first_seen.heap_bytes()
            + self.device.capacity() * std::mem::size_of::<AnonMac>()
            + self.bytes_total.heap_bytes()
    }
}

impl Default for MacCols {
    fn default() -> MacCols {
        MacCols::empty()
    }
}

/// One router's MAC sightings, rebuilt record-by-record from columns.
#[derive(Debug, Clone)]
pub struct RouterMacs<'a> {
    router: RouterId,
    first_seen: TimeColIter<'a>,
    device: std::slice::Iter<'a, AnonMac>,
    bytes_total: NarrowColIter<'a>,
}

impl Iterator for RouterMacs<'_> {
    type Item = MacSightingRecord;

    fn next(&mut self) -> Option<MacSightingRecord> {
        Some(MacSightingRecord {
            router: self.router,
            first_seen: self.first_seen.next()?,
            device: self.device.next().copied()?,
            bytes_total: self.bytes_total.next()?,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.first_seen.size_hint()
    }
}

impl ExactSizeIterator for RouterMacs<'_> {}

/// Generates one public columnar table: per-router column groups keyed by
/// a `BTreeMap`, a flat record iterator in (router, arrival) order, and a
/// shard merge that reproduces the legacy row-table merge byte for byte.
macro_rules! columnar_table {
    (
        $(#[$tdoc:meta])*
        table $Table:ident;
        $(#[$idoc:meta])*
        iter $TableIter:ident;
        cols $Cols:ident;
        record $Record:ty;
        router_iter $RouterIter:ident;
        empty $EMPTY:ident;
        key |$r:ident| $key:expr;
    ) => {
        static $EMPTY: $Cols = $Cols::empty();

        $(#[$tdoc])*
        #[derive(Debug, Clone, Default, PartialEq)]
        pub struct $Table {
            by_router: BTreeMap<RouterId, $Cols>,
            len: usize,
        }

        impl $Table {
            /// Append one record to its router's column group.
            pub fn push(&mut self, record: $Record) {
                self.by_router.entry(record.router).or_default().append(&record);
                self.len += 1;
            }

            /// Total records across all routers.
            pub fn len(&self) -> usize {
                self.len
            }

            /// True when no record has been pushed.
            pub fn is_empty(&self) -> bool {
                self.len == 0
            }

            /// Iterate every record by value in (router, per-router
            /// arrival) order — after a snapshot merge, the same global
            /// (router, time)-sorted order the legacy row vector had.
            pub fn iter(&self) -> $TableIter<'_> {
                $TableIter { routers: self.by_router.iter(), current: None }
            }

            /// Iterate one router's records (empty if it never reported).
            pub fn router(&self, router: RouterId) -> $RouterIter<'_> {
                self.by_router.get(&router).unwrap_or(&$EMPTY).iter(router)
            }

            /// Records held for one router.
            pub fn router_len(&self, router: RouterId) -> usize {
                self.by_router.get(&router).map_or(0, $Cols::len)
            }

            /// Heap bytes held by all columns (diagnostic).
            pub fn heap_bytes(&self) -> usize {
                self.by_router.values().map($Cols::heap_bytes).sum()
            }

            /// Merge per-shard tables into one globally sorted table.
            ///
            /// Routers are partitioned across shards, so each router's
            /// column group normally arrives from exactly one chunk: the
            /// merge moves groups into the output map (router order) and
            /// then stable-sorts any router whose arrival order violates
            /// the table's time subkey — exactly the order the legacy
            /// row merge produced, whether it took its concatenation
            /// fast path (all runs sorted and disjoint) or its global
            /// stable-sort fallback. A router appearing in several
            /// chunks (hand-built tables only) concatenates in chunk
            /// order before the same normalize pass.
            pub fn merge(chunks: Vec<$Table>) -> $Table {
                let mut out = $Table::default();
                for chunk in chunks {
                    out.len += chunk.len;
                    for (router, cols) in chunk.by_router {
                        match out.by_router.entry(router) {
                            Entry::Vacant(slot) => {
                                slot.insert(cols);
                            }
                            Entry::Occupied(mut slot) => {
                                let mut rows: Vec<$Record> =
                                    slot.get().iter(router).collect();
                                rows.extend(cols.iter(router));
                                let mut rebuilt = $Cols::empty();
                                for row in &rows {
                                    rebuilt.append(row);
                                }
                                *slot.get_mut() = rebuilt;
                            }
                        }
                    }
                }
                for (router, cols) in out.by_router.iter_mut() {
                    let router = *router;
                    let mut prev = None;
                    let mut sorted = true;
                    for record in cols.iter(router) {
                        let $r = &record;
                        let k = $key;
                        if prev.as_ref() > Some(&k) {
                            sorted = false;
                            break;
                        }
                        prev = Some(k);
                    }
                    if !sorted {
                        let mut rows: Vec<$Record> = cols.iter(router).collect();
                        rows.sort_by(|a, b| {
                            let ka = {
                                let $r = a;
                                $key
                            };
                            let kb = {
                                let $r = b;
                                $key
                            };
                            ka.cmp(&kb)
                        });
                        let mut rebuilt = $Cols::empty();
                        for row in &rows {
                            rebuilt.append(row);
                        }
                        *cols = rebuilt;
                    }
                }
                out
            }
        }

        impl<'a> IntoIterator for &'a $Table {
            type Item = $Record;
            type IntoIter = $TableIter<'a>;

            fn into_iter(self) -> $TableIter<'a> {
                self.iter()
            }
        }

        $(#[$idoc])*
        #[derive(Debug, Clone)]
        pub struct $TableIter<'a> {
            routers: std::collections::btree_map::Iter<'a, RouterId, $Cols>,
            current: Option<$RouterIter<'a>>,
        }

        impl<'a> Iterator for $TableIter<'a> {
            type Item = $Record;

            fn next(&mut self) -> Option<$Record> {
                loop {
                    if let Some(current) = &mut self.current {
                        if let Some(record) = current.next() {
                            return Some(record);
                        }
                    }
                    let (&router, cols) = self.routers.next()?;
                    self.current = Some(cols.iter(router));
                }
            }
        }
    };
}

columnar_table! {
    /// The packet-statistics table (Traffic data set) in columnar form:
    /// per-minute windows, ~28 bytes/record instead of the 64-byte row.
    table PacketStatsTable;
    /// Flat record iterator over a [`PacketStatsTable`].
    iter PacketStatsIter;
    cols PacketStatsCols;
    record PacketStatsRecord;
    router_iter RouterPacketStats;
    empty EMPTY_PACKET_STATS;
    key |r| r.at;
}

columnar_table! {
    /// The flow table (Traffic data set) in columnar form: interned
    /// domains and delta-coded times, ~40 bytes/record instead of the
    /// 88-byte row.
    table FlowTable;
    /// Flat record iterator over a [`FlowTable`].
    iter FlowsIter;
    cols FlowCols;
    record FlowRecord;
    router_iter RouterFlows;
    empty EMPTY_FLOWS;
    key |r| (r.ended, r.started, r.device);
}

columnar_table! {
    /// The DNS-sample table (Traffic data set) in columnar form:
    /// interned names, ~18 bytes/record instead of the 56-byte row.
    table DnsTable;
    /// Flat record iterator over a [`DnsTable`].
    iter DnsIter;
    cols DnsCols;
    record DnsSampleRecord;
    router_iter RouterDns;
    empty EMPTY_DNS;
    key |r| (r.at, r.device);
}

columnar_table! {
    /// The MAC-sighting table (Traffic data set) in columnar form:
    /// ~16 bytes/record instead of the 32-byte row.
    table MacTable;
    /// Flat record iterator over a [`MacTable`].
    iter MacsIter;
    cols MacCols;
    record MacSightingRecord;
    router_iter RouterMacs;
    empty EMPTY_MACS;
    key |r| (r.first_seen, r.device);
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::dns::DomainName;
    use simnet::time::SimDuration;

    fn t(mins: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_mins(mins)
    }

    #[test]
    fn time_col_round_trips_monotone_jumpy_and_backward_sequences() {
        let inputs = vec![
            SimTime::from_micros(0),
            SimTime::from_micros(5),
            SimTime::from_micros(5),
            // Forward jump past the u32 delta range: escapes.
            SimTime::from_micros(6_000_000_000),
            // Backward jump: escapes.
            SimTime::from_micros(100),
            SimTime::from_micros(u64::MAX),
            SimTime::from_micros(u64::MAX),
        ];
        let mut col = TimeCol::empty();
        for &v in &inputs {
            col.append(v);
        }
        assert_eq!(col.iter().collect::<Vec<_>>(), inputs);
        assert_eq!(col.len(), 7);
        // Only the three non-delta-codable entries hit the wide lane.
        assert_eq!(col.wide.len(), 3);
    }

    #[test]
    fn narrow_col_round_trips_across_the_escape_threshold() {
        let inputs =
            vec![0, 1, u64::from(u32::MAX) - 1, u64::from(u32::MAX), u64::from(u32::MAX) + 1, u64::MAX];
        let mut col = NarrowCol::empty();
        for &v in &inputs {
            col.append(v);
        }
        assert_eq!(col.iter().collect::<Vec<_>>(), inputs);
        assert_eq!(col.wide.len(), 3);
    }

    #[test]
    fn domain_pool_interns_by_value_and_compares_by_pool() {
        let clear = ReportedDomain::Clear(DomainName::new("netflix.com").unwrap());
        let obf = ReportedDomain::Obfuscated(7);
        let mut a = DomainPool::empty();
        assert_eq!(a.intern(&clear), 0);
        assert_eq!(a.intern(&obf), 1);
        assert_eq!(a.intern(&clear), 0, "re-interning is id-stable");
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(1), &obf);
        let mut b = DomainPool::empty();
        b.intern(&clear);
        b.intern(&obf);
        assert_eq!(a, b);
        let mut c = DomainPool::empty();
        c.intern(&obf);
        c.intern(&clear);
        assert_ne!(a, c, "interning order is part of equality");
    }

    fn flow(router: u32, started: u64, ended: u64, suffix: u32, domain: u64) -> FlowRecord {
        FlowRecord {
            router: RouterId(router),
            started: t(started),
            ended: t(ended),
            device: AnonMac { oui: 0x0017F2, suffix_hash: suffix },
            remote_ip_hash: 99,
            remote_port: 443,
            proto: IpProtocol::Tcp,
            domain: ReportedDomain::Obfuscated(domain),
            bytes_down: 4096,
            bytes_up: 512,
        }
    }

    #[test]
    fn flow_table_round_trips_and_indexes_per_router() {
        let rows = vec![
            flow(2, 0, 5, 1, 10),
            flow(1, 3, 4, 2, 10),
            flow(2, 1, 6, 1, 11),
            // started after ended: wrapping duration still round-trips.
            flow(1, 9, 7, 3, 10),
        ];
        let mut table = FlowTable::default();
        for r in &rows {
            table.push(r.clone());
        }
        assert_eq!(table.len(), 4);
        assert_eq!(table.router_len(RouterId(1)), 2);
        assert_eq!(table.router(RouterId(3)).count(), 0);
        // Flat iteration groups by router, preserving arrival order within.
        let expect = vec![rows[1].clone(), rows[3].clone(), rows[0].clone(), rows[2].clone()];
        assert_eq!(table.iter().collect::<Vec<_>>(), expect);
        assert_eq!(table.router(RouterId(2)).collect::<Vec<_>>(), vec![rows[0].clone(), rows[2].clone()]);
    }

    #[test]
    fn table_equality_tracks_the_pushed_sequence() {
        let mut a = FlowTable::default();
        let mut b = FlowTable::default();
        for r in [flow(1, 0, 1, 1, 5), flow(1, 2, 3, 1, 6)] {
            a.push(r.clone());
            b.push(r);
        }
        assert_eq!(a, b);
        b.push(flow(1, 4, 5, 1, 5));
        assert_ne!(a, b);
    }

    #[test]
    fn merge_concatenates_disjoint_routers_and_sorts_unordered_ones() {
        // Shard A: router 1 in order; shard B: router 2 out of order.
        let mut a = FlowTable::default();
        a.push(flow(1, 0, 2, 1, 5));
        a.push(flow(1, 1, 3, 1, 5));
        let mut b = FlowTable::default();
        b.push(flow(2, 5, 9, 1, 6));
        b.push(flow(2, 2, 4, 1, 6));
        let merged = FlowTable::merge(vec![a, b]);
        assert_eq!(merged.len(), 4);
        let order: Vec<(u32, SimTime)> =
            merged.iter().map(|r| (r.router.0, r.ended)).collect();
        assert_eq!(order, vec![(1, t(2)), (1, t(3)), (2, t(4)), (2, t(9))]);
        // The unordered router was rebuilt; the ordered one kept its
        // original (already-sorted) encoding.
        let rebuilt: Vec<SimTime> =
            merged.router(RouterId(2)).map(|r| r.ended).collect();
        assert_eq!(rebuilt, vec![t(4), t(9)]);
    }

    #[test]
    fn merge_with_a_router_split_across_chunks_stays_stable() {
        // Ties on the full subkey must preserve chunk order (stable sort).
        let first = flow(7, 0, 5, 1, 10);
        let second = flow(7, 0, 5, 1, 11);
        let mut a = FlowTable::default();
        a.push(first.clone());
        let mut b = FlowTable::default();
        b.push(second.clone());
        let merged = FlowTable::merge(vec![a, b]);
        assert_eq!(merged.iter().collect::<Vec<_>>(), vec![first, second]);
    }

    #[test]
    fn packet_stats_dns_and_mac_tables_round_trip() {
        let ps = PacketStatsRecord {
            router: RouterId(3),
            at: t(1),
            bytes_down: u64::MAX,
            bytes_up: 1,
            pkts_down: 2,
            pkts_up: 3,
            peak_down_1s: 4,
            peak_up_1s: 5,
        };
        let mut pst = PacketStatsTable::default();
        pst.push(ps);
        assert_eq!(pst.iter().collect::<Vec<_>>(), vec![ps]);

        let dns = DnsSampleRecord {
            router: RouterId(3),
            at: t(2),
            device: AnonMac { oui: 1, suffix_hash: 2 },
            name: ReportedDomain::Clear(DomainName::new("netflix.com").unwrap()),
            cname_links: 2,
            resolved: true,
        };
        let mut dt = DnsTable::default();
        dt.push(dns.clone());
        dt.push(dns.clone());
        assert_eq!(dt.iter().collect::<Vec<_>>(), vec![dns.clone(), dns]);

        let mac = MacSightingRecord {
            router: RouterId(4),
            first_seen: t(3),
            device: AnonMac { oui: 5, suffix_hash: 6 },
            bytes_total: 1 << 40,
        };
        let mut mt = MacTable::default();
        mt.push(mac);
        assert_eq!(mt.iter().collect::<Vec<_>>(), vec![mac]);
        assert!(mt.heap_bytes() > 0);
    }
}
